"""Deterministic random-number utilities.

Everything in this library that needs randomness (trace synthesis, search
strategy tie-breaking, workload generation) derives its generator from an
explicit seed through :func:`derive_rng`, so whole experiments are
reproducible from a single integer and independent components do not
perturb each other's streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

Seedable = Union[int, str, bytes]


def _to_bytes(value: Seedable) -> bytes:
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    return value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)


def derive_seed(seed: Seedable, *labels: Seedable) -> int:
    """Derive a child seed from ``seed`` and a label path.

    The derivation hashes the seed and labels, so distinct label paths give
    statistically independent child seeds and the mapping is stable across
    runs and platforms.
    """
    digest = hashlib.sha256()
    digest.update(_to_bytes(seed))
    for label in labels:
        digest.update(b"\x00")
        digest.update(_to_bytes(label))
    return int.from_bytes(digest.digest()[:8], "big")


def derive_rng(seed: Seedable, *labels: Seedable) -> random.Random:
    """A fresh :class:`random.Random` seeded from ``seed`` and ``labels``.

    >>> derive_rng(7, "trace").random() == derive_rng(7, "trace").random()
    True
    >>> derive_rng(7, "trace").random() == derive_rng(7, "other").random()
    False
    """
    return random.Random(derive_seed(seed, *labels))
