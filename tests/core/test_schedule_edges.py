"""Edge-case tests for online scheduling and throughput measurement."""

import pytest

from repro.concolic.engine import ExplorationBudget
from repro.core.dice import DiCE
from repro.core.schedule import (
    OnlineScheduler,
    ScheduleConfig,
    ThroughputProbe,
    measure_throughput,
)
from repro.net.node import NodeHost


class _StubDice:
    """A DiCE stand-in that counts rounds and optionally returns None."""

    def __init__(self, has_seed=True):
        self.calls = 0
        self.has_seed = has_seed

    def run_round(self, peer=None, budget=None):
        self.calls += 1
        if not self.has_seed:
            return None
        return object()


class TestScheduler:
    def test_start_after_delays_first_round(self):
        host = NodeHost()
        dice = _StubDice()
        scheduler = OnlineScheduler(
            host, dice, ScheduleConfig(interval=100.0, start_after=5.0)
        )
        scheduler.start()
        host.run_until(4.0)
        assert dice.calls == 0
        host.run_until(6.0)
        assert dice.calls == 1
        scheduler.stop()

    def test_default_first_round_at_interval(self):
        host = NodeHost()
        dice = _StubDice()
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=30.0))
        scheduler.start()
        host.run_until(29.0)
        assert dice.calls == 0
        host.run_until(31.0)
        assert dice.calls == 1
        scheduler.stop()

    def test_rounds_without_seed_counted_skipped(self):
        host = NodeHost()
        dice = _StubDice(has_seed=False)
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=10.0))
        scheduler.start()
        host.run_until(35.0)
        scheduler.stop()
        assert scheduler.stats.rounds_skipped == 3
        assert scheduler.stats.rounds_fired == 0

    def test_max_rounds_stops(self):
        host = NodeHost()
        dice = _StubDice()
        scheduler = OnlineScheduler(
            host, dice, ScheduleConfig(interval=10.0, max_rounds=3)
        )
        scheduler.start()
        host.run_until(200.0)
        assert scheduler.stats.rounds_fired == 3
        assert not scheduler.running

    def test_restart_after_stop(self):
        host = NodeHost()
        dice = _StubDice()
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=10.0))
        scheduler.start()
        host.run_until(15.0)
        scheduler.stop()
        fired = scheduler.stats.rounds_fired
        scheduler.start()
        host.run_until(40.0)
        scheduler.stop()
        assert scheduler.stats.rounds_fired > fired

    def test_last_fired_at_tracks_sim_time(self):
        host = NodeHost()
        dice = _StubDice()
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=7.0))
        scheduler.start()
        host.run_until(8.0)
        scheduler.stop()
        assert scheduler.stats.last_fired_at == pytest.approx(7.0)


class TestThroughputProbe:
    def test_probe_measures(self):
        with ThroughputProbe() as probe:
            total = sum(range(10_000))
        probe.updates_processed = 100
        assert probe.wall_seconds > 0
        assert probe.updates_per_second > 0

    def test_zero_wall_time(self):
        probe = ThroughputProbe()
        assert probe.updates_per_second == 0.0

    def test_measure_throughput_counts_router_updates(self):
        from repro.core import ScenarioConfig, build_scenario

        scenario = build_scenario(
            ScenarioConfig(filter_mode="correct", prefix_count=200, update_count=20)
        )
        probe = measure_throughput(scenario.host, scenario.provider.counters)
        assert probe.updates_processed > 0
        assert probe.updates_per_second > 0
