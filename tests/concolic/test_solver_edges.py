"""Edge-case tests for solver internals: scaled narrowing, atom
decomposition, interval corner cases, and fallback ordering."""

import random

import pytest

from repro.concolic.expr import BinOp, Const, UnaryOp, Var, make_binary, negate
from repro.concolic.solver import ConstraintSolver, eval_interval, propagate
from repro.concolic.solver.intervals import BOOL, WIDE, narrow
from repro.concolic.solver.linear import _ceil_div, solve_atom
from repro.concolic.solver.solver import _atoms


def var(name="x", bits=32):
    return Var(name, bits)


class TestCeilDiv:
    @pytest.mark.parametrize(
        "n,d,expected",
        [(7, 2, 4), (8, 2, 4), (-7, 2, -3), (7, -2, -3), (-7, -2, 4), (0, 5, 0)],
    )
    def test_matches_math_ceil(self, n, d, expected):
        assert _ceil_div(n, d) == expected


class TestScaledNarrowing:
    def test_shl_equality(self):
        # (x << 4) == 48  ->  x == 3.
        constraint = BinOp("eq", BinOp("shl", var(), Const(4)), Const(48))
        domains = {"x": (0, 255)}
        assert narrow(constraint, domains) is True
        assert domains["x"] == (3, 3)

    def test_floordiv_equality(self):
        # (x // 10) == 5  ->  x in [50, 59].
        constraint = BinOp("eq", BinOp("floordiv", var(), Const(10)), Const(5))
        domains = {"x": (0, 255)}
        narrow(constraint, domains)
        assert domains["x"] == (50, 59)

    def test_mul_inequality(self):
        # (x * 3) <= 10  ->  x <= 3.
        constraint = BinOp("le", BinOp("mul", var(), Const(3)), Const(10))
        domains = {"x": (0, 255)}
        narrow(constraint, domains)
        assert domains["x"] == (0, 3)

    def test_shr_on_rhs(self):
        # 5 == (x >> 2)  ->  x in [20, 23].
        constraint = BinOp("eq", Const(5), BinOp("shr", var(), Const(2)))
        domains = {"x": (0, 255)}
        narrow(constraint, domains)
        assert domains["x"] == (20, 23)

    def test_contradictory_scaled_is_unsat(self):
        constraint = BinOp("eq", BinOp("shr", var(), Const(4)), Const(100))
        assert propagate([constraint], {"x": (0, 255)}) is None

    def test_strict_less_on_scaled(self):
        # (x >> 8) < 2  ->  x <= 511.
        constraint = BinOp("lt", BinOp("shr", var(), Const(8)), Const(2))
        domains = {"x": (0, 65535)}
        narrow(constraint, domains)
        assert domains["x"] == (0, 511)


class TestIntervalCorners:
    def test_lnot_interval(self):
        expr = UnaryOp("lnot", BinOp("lt", var(), Const(0)))
        assert eval_interval(expr, {"x": (0, 10)}) == (1, 1)

    def test_bool_interval(self):
        expr = UnaryOp("bool", var())
        assert eval_interval(expr, {"x": (5, 9)}) == (1, 1)
        assert eval_interval(expr, {"x": (0, 0)}) == (0, 0)
        assert eval_interval(expr, {"x": (0, 9)}) == BOOL

    def test_division_spanning_zero_is_wide(self):
        expr = BinOp("floordiv", Const(100), var())
        assert eval_interval(expr, {"x": (-5, 5)}) == WIDE

    def test_land_lor_decided(self):
        true_side = BinOp("ge", var(), Const(0))
        false_side = BinOp("lt", var(), Const(0))
        domains = {"x": (0, 10)}
        conj = make_binary("land", true_side, false_side)
        assert eval_interval(conj, domains) == (0, 0)
        disj = make_binary("lor", true_side, false_side)
        assert eval_interval(disj, domains) == (1, 1)

    def test_lor_narrowing_picks_live_side(self):
        # (x < 0) or (x == 7): left side impossible, so x must be 7.
        constraint = make_binary(
            "lor", BinOp("lt", var(), Const(0)), BinOp("eq", var(), Const(7))
        )
        domains = {"x": (0, 255)}
        assert narrow(constraint, domains) is True
        assert domains["x"] == (7, 7)

    def test_negative_ranges_conservative(self):
        expr = BinOp("and", var(), Const(0xFF))
        # Interval analysis must not claim tight bounds for negative inputs.
        lo, hi = eval_interval(expr, {"x": (-10, 10)})
        assert lo <= 0 and hi >= 10


class TestSolveAtomEdges:
    def test_negated_atom(self):
        atom = UnaryOp("lnot", BinOp("lt", var(), Const(100)))
        value = solve_atom(atom, "x", {}, (0, 255), prefer=0)
        assert value is not None and value >= 100

    def test_bool_wrapped_atom(self):
        atom = UnaryOp("bool", var())
        value = solve_atom(atom, "x", {}, (0, 255), prefer=0)
        assert value is not None and value != 0

    def test_scaled_ne(self):
        atom = BinOp("ne", BinOp("shr", var(), Const(4)), Const(0))
        value = solve_atom(atom, "x", {}, (0, 255), prefer=0)
        assert value is not None and (value >> 4) != 0

    def test_unsupported_atom_returns_none(self):
        atom = BinOp("eq", BinOp("mod", var(), var("y")), Const(1))
        assert solve_atom(atom, "x", {"y": 0}, (0, 255), prefer=0) is None

    def test_land_atom_not_handled_directly(self):
        atom = make_binary(
            "land", BinOp("gt", var(), Const(1)), BinOp("lt", var(), Const(5))
        )
        assert solve_atom(atom, "x", {}, (0, 255), prefer=0) is None


class TestAtomDecomposition:
    def test_conjunction_flattens(self):
        a = BinOp("gt", var(), Const(1))
        b = BinOp("lt", var(), Const(5))
        c = BinOp("ne", var(), Const(3))
        nested = make_binary("land", make_binary("land", a, b), c)
        assert set(map(repr, _atoms(nested))) == {repr(a), repr(b), repr(c)}

    def test_disjunction_flattens(self):
        a = BinOp("eq", var(), Const(1))
        b = BinOp("eq", var(), Const(2))
        assert len(_atoms(make_binary("lor", a, b))) == 2

    def test_negation_pushed_inward(self):
        inner = BinOp("lt", var(), Const(5))
        atoms = _atoms(UnaryOp("lnot", inner))
        assert len(atoms) == 1
        assert atoms[0].op == "ge"


class TestSolverFallbacks:
    def test_conjunction_query(self):
        solver = ConstraintSolver(rng=random.Random(1))
        constraint = make_binary(
            "land",
            BinOp("ge", var("len", 6), Const(16)),
            BinOp("le", var("len", 6), Const(24)),
        )
        model = solver.solve([constraint], {"len": (0, 63)}, {"len": 0})
        assert model is not None and 16 <= model["len"] <= 24

    def test_disjunction_query(self):
        solver = ConstraintSolver(rng=random.Random(2))
        constraint = make_binary(
            "lor",
            BinOp("eq", var(), Const(77)),
            BinOp("eq", var(), Const(200)),
        )
        model = solver.solve([constraint], {"x": (0, 255)}, {"x": 0})
        assert model is not None and model["x"] in (77, 200)

    def test_negated_prefix_match(self):
        """The classic leak query: inside length range, outside prefix set."""
        solver = ConstraintSolver(rng=random.Random(3))
        in_set = BinOp("eq", BinOp("shr", var("net"), Const(16)), Const(0x0A0A))
        constraints = [
            negate(in_set),
            BinOp("ge", var("len", 6), Const(16)),
            BinOp("le", var("len", 6), Const(24)),
        ]
        model = solver.solve(
            constraints, {"net": (0, 2**32 - 1), "len": (0, 63)},
            {"net": 0x0A0A0100, "len": 24},
        )
        assert model is not None
        assert (model["net"] >> 16) != 0x0A0A
        assert 16 <= model["len"] <= 24

    def test_mod_constraint_via_enumeration(self):
        solver = ConstraintSolver(rng=random.Random(4))
        constraint = BinOp(
            "eq", BinOp("mod", var("v", 8), Const(9)), Const(4)
        )
        model = solver.solve([constraint], {"v": (0, 255)}, {"v": 0})
        assert model is not None and model["v"] % 9 == 4

    def test_xor_constraint_via_search(self):
        solver = ConstraintSolver(rng=random.Random(5))
        constraint = BinOp(
            "eq", BinOp("xor", var("v", 16), Const(0x00FF)), Const(0x0F0F)
        )
        model = solver.solve([constraint], {"v": (0, 65535)}, {"v": 0})
        assert model is not None and model["v"] ^ 0x00FF == 0x0F0F

    def test_unknown_reported_not_crashed(self):
        # An over-constrained nonlinear system the heuristics may miss:
        # solver must return None (unknown or unsat), never raise.
        solver = ConstraintSolver(rng=random.Random(6), max_search_iters=50)
        x, y = var("x", 16), var("y", 16)
        constraints = [
            BinOp("eq", BinOp("mul", x, y), Const(999983 * 2)),  # semiprime-ish
            BinOp("gt", x, Const(1)),
            BinOp("gt", y, Const(1)),
        ]
        model = solver.solve(
            constraints, {"x": (0, 65535), "y": (0, 65535)}, {"x": 2, "y": 2}
        )
        if model is not None:
            assert model["x"] * model["y"] == 999983 * 2
