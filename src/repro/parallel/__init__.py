"""Parallel multi-seed exploration: DiCE off the critical path, at scale.

The paper's deployment model runs exploration on spare cores while the
live system keeps serving traffic (sections 3.2, 4.1).  This package
supplies the throughput half of that story, in two shapes:

* :class:`ParallelExplorer` fans a *batch* of observed seeds — all
  peers' ring buffers, not just the latest input — out to worker
  processes, each running a full checkpoint-clone-explore session;
* :class:`StreamingExplorer` (:mod:`repro.parallel.stream`) replaces
  the batch barrier with a pipeline: persistent workers pull jobs
  continuously, checkpoints ship once per epoch with only changed
  segments on re-checkpoint, and findings harvest asynchronously —
  exploration overlaps live traffic instead of pausing for rounds;
* a shared constraint-result cache (:mod:`repro.parallel.cache`) keyed
  by canonicalized path condition avoids re-solving identical negations
  across workers — single-manager for batches, sharded across manager
  processes for streams;
* a deterministic in-process :class:`SerialExecutor` (and the stream's
  inline worker) stands in for process pools in tests and on hosts
  where subprocesses are unavailable, producing bit-identical results.

Determinism is a design invariant, not an accident: worker sessions are
independent (private engine, solver, and strategy per job), the cache
key covers the *entire* solver query including the hint, and worker
solvers derive their search RNG from that key — so the deduped finding
set is the same with 1 worker, N workers, or the serial fallback, and
the same again whether the seeds arrived as a batch or a stream.
"""

from repro.parallel.cache import (
    ShardedConstraintCache,
    SharedConstraintCache,
    TenantCacheView,
    shared_cache,
    sharded_cache,
    shutdown_cache_managers,
    start_sharded_cache,
)
from repro.parallel.chaos import (
    CHAOS_PLANS,
    ChaosDirective,
    ChaosEvent,
    ChaosPlan,
    get_chaos_plan,
    list_chaos_plans,
)
from repro.parallel.executors import SerialExecutor, make_executor
from repro.parallel.explorer import (
    BatchReport,
    EngineBatch,
    EngineBatchRun,
    ParallelExplorer,
)
from repro.parallel.stream import (
    DEFAULT_TENANT,
    PoolAutoscaler,
    QuarantinedJob,
    StreamJob,
    StreamReport,
    StreamingExplorer,
    WorkerSupervisor,
    stream_worker_main,
)
from repro.parallel.worker import (
    EngineJob,
    ProgressBeacon,
    SessionJob,
    run_engine_job,
    run_session_job,
)

__all__ = [
    "BatchReport",
    "CHAOS_PLANS",
    "ChaosDirective",
    "ChaosEvent",
    "ChaosPlan",
    "DEFAULT_TENANT",
    "EngineBatch",
    "EngineBatchRun",
    "EngineJob",
    "ParallelExplorer",
    "PoolAutoscaler",
    "ProgressBeacon",
    "QuarantinedJob",
    "SerialExecutor",
    "SessionJob",
    "ShardedConstraintCache",
    "SharedConstraintCache",
    "StreamJob",
    "StreamReport",
    "StreamingExplorer",
    "TenantCacheView",
    "WorkerSupervisor",
    "get_chaos_plan",
    "list_chaos_plans",
    "make_executor",
    "run_engine_job",
    "run_session_job",
    "shared_cache",
    "sharded_cache",
    "shutdown_cache_managers",
    "start_sharded_cache",
    "stream_worker_main",
]
