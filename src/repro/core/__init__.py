"""DiCE: the paper's primary contribution, built on the substrates.

The typical entry points:

* ``get_scenario(name).build(seed=..., **overrides)`` — any registered
  testbed (``"fig2"`` is the paper's Figure 2), ready to converge and
  explore;
* :class:`DiCE` — attach online testing to a live router;
* :class:`DiceExplorer` — one-shot exploration sessions;
* :class:`OnlineScheduler` — periodic rounds alongside the live system;
* :class:`ScenarioMatrix` — sweep (topology × workload × checker) cells.
"""

from repro.core.checkers import (
    BOGON_PREFIXES,
    BogonChecker,
    CrashChecker,
    ExecutionContext,
    FaultChecker,
    HijackChecker,
    InvariantChecker,
    LeakRegionChecker,
    OriginBaseline,
    SessionResetChecker,
    WaveChecker,
    WaveContext,
    default_checkers,
    get_wave_checker,
    list_wave_checkers,
)
from repro.core.dice import DiCE, DiceEnabledRouter
from repro.core.explorer import DiceExplorer
from repro.core.federation import (
    FabricStats,
    FederatedExploration,
    FederatedReport,
    FederatedSeed,
    GlobalFinding,
    InjectionEvent,
    IsolatedFabric,
)
from repro.core.inputs import (
    InputModel,
    OpenMessageModel,
    SelectiveUpdateModel,
    WholeMessageModel,
    model_for,
)
from repro.core.isolation import ExplorationSandbox, InterceptedTraffic, restore_isolated
from repro.core.privacy import (
    OriginDigest,
    PrivacyGuard,
    digest_conflicts,
    origin_digest,
    prefix_digest,
    resolve_digest,
)
from repro.core.report import Finding, FindingKind, SessionReport, Severity
from repro.core.scenario import (
    CUSTOMER_AS,
    CUSTOMER_PREFIXES,
    BuiltScenario,
    Fig2Scenario,
    FILTER_MODES,
    INTERNET_AS,
    PROVIDER_AS,
    SCENARIOS,
    Scenario,
    ScenarioConfig,
    customer_config,
    fig2_graph,
    get_scenario,
    list_scenarios,
    provider_config,
    register_scenario,
    synthesize_hijack_corpus,
)
from repro.core.schedule import (
    OnlineScheduler,
    ScheduleConfig,
    ScheduleStats,
    ThroughputProbe,
    measure_throughput,
)
from repro.core.workload import (
    CellResult,
    MatrixCell,
    ScenarioMatrix,
    Workload,
    WorkloadPlan,
    get_workload,
    list_workloads,
    register_workload,
)

__all__ = [
    "CUSTOMER_AS",
    "CUSTOMER_PREFIXES",
    "BOGON_PREFIXES",
    "BogonChecker",
    "BuiltScenario",
    "SCENARIOS",
    "Scenario",
    "FederatedSeed",
    "fig2_graph",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "synthesize_hijack_corpus",
    "CrashChecker",
    "DiCE",
    "DiceEnabledRouter",
    "DiceExplorer",
    "ExecutionContext",
    "ExplorationSandbox",
    "FILTER_MODES",
    "FabricStats",
    "FaultChecker",
    "FederatedExploration",
    "FederatedReport",
    "Fig2Scenario",
    "Finding",
    "FindingKind",
    "GlobalFinding",
    "HijackChecker",
    "INTERNET_AS",
    "InputModel",
    "InterceptedTraffic",
    "InvariantChecker",
    "IsolatedFabric",
    "LeakRegionChecker",
    "OnlineScheduler",
    "OpenMessageModel",
    "OriginBaseline",
    "OriginDigest",
    "PROVIDER_AS",
    "PrivacyGuard",
    "ScenarioConfig",
    "ScheduleConfig",
    "ScheduleStats",
    "SelectiveUpdateModel",
    "SessionReport",
    "SessionResetChecker",
    "Severity",
    "ThroughputProbe",
    "WholeMessageModel",
    "CellResult",
    "InjectionEvent",
    "MatrixCell",
    "ScenarioMatrix",
    "WaveChecker",
    "WaveContext",
    "Workload",
    "WorkloadPlan",
    "customer_config",
    "default_checkers",
    "digest_conflicts",
    "get_wave_checker",
    "get_workload",
    "list_wave_checkers",
    "list_workloads",
    "register_workload",
    "measure_throughput",
    "model_for",
    "origin_digest",
    "prefix_digest",
    "provider_config",
    "resolve_digest",
    "restore_isolated",
]
