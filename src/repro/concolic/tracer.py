"""The active-trace hook connecting concolic values to the engine.

The paper's prototype compiles instrumented and native code into a single
executable and switches between them (section 3.2): the deployed system
runs native, and only exploration runs instrumented.  The Python analogue
is this module-level hook: when no recorder is installed, symbolic values
are never created in the first place (production code handles plain ints)
and a stray ``SymBool`` evaluates its concrete value with a single ``is
None`` check of overhead.  During exploration the DiCE explorer installs a
recorder here, and every branch on a symbolic value is reported to it.

The hook is deliberately a plain module global, not thread-local: the
discrete-event simulator is single-threaded, and one exploration runs at a
time per process.  :func:`install` returns a token so nested traces
restore correctly.
"""

from __future__ import annotations

import os.path
import sys
from dataclasses import dataclass
from typing import Optional, Protocol

from repro.concolic.expr import Expr


@dataclass(frozen=True)
class BranchSite:
    """The static program location of a branch (file basename + line)."""

    file: str
    line: int

    def __str__(self) -> str:
        return f"{self.file}:{self.line}"


class Recorder(Protocol):
    """What the engine's trace recorder must provide to symbolic values."""

    def record_branch(self, expr: Expr, outcome: bool, site: BranchSite) -> None:
        """A branch on boolean ``expr`` resolved to ``outcome`` at ``site``."""

    def record_concretization(self, expr: Expr, value: int) -> None:
        """``expr`` was forced to the concrete ``value`` (index/int context)."""


_active: Optional[Recorder] = None

#: Directory of the concolic package itself; frames inside it are skipped
#: when attributing a branch to a program location.
_PACKAGE_DIR = os.path.dirname(os.path.abspath(__file__))

#: (filename, lineno) -> BranchSite.  Branch attribution runs once per
#: recorded branch; reusing the site object skips the dataclass
#: construction and the per-call basename split, and downstream coverage
#: sets hash strings whose hash is already cached on the shared object.
#: Bounded in practice by the number of distinct branch sites in the
#: program under test.
_SITE_CACHE: dict = {}


def active_recorder() -> Optional[Recorder]:
    """The currently installed recorder, or None in production mode."""
    return _active


def install(recorder: Recorder) -> Optional[Recorder]:
    """Install ``recorder`` as active; returns the previous one (a token)."""
    global _active
    previous = _active
    _active = recorder
    return previous


def restore(token: Optional[Recorder]) -> None:
    """Restore the recorder saved by a matching :func:`install` call."""
    global _active
    _active = token


def caller_site() -> BranchSite:
    """Locate the branch site: the innermost frame outside this package."""
    frame = sys._getframe(2)  # skip caller_site and the dunder that called it
    while frame is not None:
        filename = frame.f_code.co_filename
        if not filename.startswith(_PACKAGE_DIR):
            key = (filename, frame.f_lineno)
            site = _SITE_CACHE.get(key)
            if site is None:
                site = BranchSite(os.path.basename(filename), frame.f_lineno)
                _SITE_CACHE[key] = site
            return site
        frame = frame.f_back
    return BranchSite("<unknown>", 0)
