"""Routing policy: filter ASTs and their interpreter.

The paper's key observation (section 3.2) is that exploration covers
*configuration* as well as code, "because the source code instrumentation
encompasses BIRD's configuration interpreter and so allows Oasis to
record constraints for the interpreted configuration".  This module is
that interpreter: filters are ASTs built by :mod:`repro.bgp.config`, and
evaluating a condition against a route whose fields are symbolic runs
plain Python ``if``s over :class:`SymInt` values — every configured
``if net in CUSTOMERS`` term becomes a recorded, negatable branch.

The language is a small BIRD-like policy core: prefix-set matching with
length bounds, AS-path and community tests, attribute comparisons and
modifications, and nested if/else.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.wire import as_concrete_int
from repro.concolic.symbolic import SymInt
from repro.util.errors import ConfigError
from repro.util.ip import ADDR_BITS, Prefix

IntLike = Union[int, SymInt]


# ---------------------------------------------------------------------------
# The route view: what filter conditions can observe and actions can modify.
# ---------------------------------------------------------------------------


@dataclass
class RouteView:
    """A mutable view of a route under policy evaluation.

    ``network``/``length`` may be symbolic during exploration; actions
    mutate the attribute fields in place and the interpreter copies the
    result back into a fresh :class:`PathAttributes`.
    """

    network: IntLike
    length: IntLike
    origin: IntLike
    as_path: AsPath
    next_hop: Optional[IntLike]
    med: Optional[IntLike]
    local_pref: Optional[IntLike]
    communities: List[IntLike]
    peer: Optional[str] = None

    @classmethod
    def of(
        cls,
        network: IntLike,
        length: IntLike,
        attributes: PathAttributes,
        peer: Optional[str] = None,
    ) -> "RouteView":
        return cls(
            network=network,
            length=length,
            origin=attributes.origin,
            as_path=attributes.as_path,
            next_hop=attributes.next_hop,
            med=attributes.med,
            local_pref=attributes.local_pref,
            communities=list(attributes.communities),
            peer=peer,
        )

    def to_attributes(self) -> PathAttributes:
        return PathAttributes(
            origin=self.origin,
            as_path=self.as_path,
            next_hop=self.next_hop,
            med=self.med,
            local_pref=self.local_pref,
            communities=tuple(self.communities),
        )

    def attribute(self, name: str) -> IntLike:
        """Read a numeric attribute by its config-language name."""
        if name == "net.len":
            return self.length
        if name == "local-pref":
            return self.local_pref if self.local_pref is not None else 100
        if name == "med":
            return self.med if self.med is not None else 0
        if name == "origin":
            return self.origin
        if name == "as-path.len":
            return self.as_path.hop_count()
        if name == "next-hop":
            return self.next_hop if self.next_hop is not None else 0
        raise ConfigError(f"unknown attribute {name!r}")

    def set_attribute(self, name: str, value: IntLike) -> None:
        """Write a numeric attribute by its config-language name."""
        if name == "local-pref":
            self.local_pref = value
        elif name == "med":
            self.med = value
        elif name == "origin":
            self.origin = value
        elif name == "next-hop":
            self.next_hop = value
        else:
            raise ConfigError(f"attribute {name!r} is not assignable")


# ---------------------------------------------------------------------------
# Prefix sets.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PrefixSpec:
    """One prefix-set member: a base prefix with an allowed length range.

    ``10.0.0.0/8 le 24`` matches any prefix inside 10.0.0.0/8 with mask
    length between 8 and 24; without modifiers only the exact prefix
    matches.
    """

    base: Prefix
    min_len: int = -1  # -1 means "the base prefix's own length"
    max_len: int = -1

    def __post_init__(self) -> None:
        min_len = self.base.length if self.min_len < 0 else self.min_len
        max_len = self.base.length if self.max_len < 0 else self.max_len
        if not self.base.length <= min_len <= max_len <= ADDR_BITS:
            raise ConfigError(
                f"invalid length bounds {{{min_len},{max_len}}} for {self.base}"
            )
        object.__setattr__(self, "min_len", min_len)
        object.__setattr__(self, "max_len", max_len)

    def matches(self, network: IntLike, length: IntLike):
        """Whether (network, length) falls in this spec; symbolic-aware.

        Each clause is evaluated as its own branch so the concolic engine
        can negate length bounds independently of the network match.
        """
        if length < self.min_len:
            return False
        if length > self.max_len:
            return False
        if self.base.length == 0:
            return True
        shift = ADDR_BITS - self.base.length
        return (network >> shift) == (self.base.network >> shift)

    def __str__(self) -> str:
        if (self.min_len, self.max_len) == (self.base.length, self.base.length):
            return str(self.base)
        return f"{self.base}{{{self.min_len},{self.max_len}}}"


@dataclass(frozen=True)
class PrefixSet:
    """A named collection of prefix specs; matches if any member matches."""

    name: str
    specs: Tuple[PrefixSpec, ...]

    def matches(self, network: IntLike, length: IntLike):
        for spec in self.specs:
            if spec.matches(network, length):
                return True
        return False


# ---------------------------------------------------------------------------
# Condition AST.
# ---------------------------------------------------------------------------


class Condition:
    """Base class for filter conditions."""

    def evaluate(self, view: RouteView, sets: Dict[str, PrefixSet]):
        raise NotImplementedError


@dataclass(frozen=True)
class BoolConst(Condition):
    value: bool

    def evaluate(self, view, sets):
        return self.value


@dataclass(frozen=True)
class PrefixIn(Condition):
    """``net in NAME`` or an inline prefix set."""

    set_name: Optional[str] = None
    inline: Optional[PrefixSet] = None

    def evaluate(self, view, sets):
        if self.inline is not None:
            prefix_set = self.inline
        else:
            if self.set_name not in sets:
                raise ConfigError(f"undefined prefix set {self.set_name!r}")
            prefix_set = sets[self.set_name]
        return prefix_set.matches(view.network, view.length)


@dataclass(frozen=True)
class AsPathContains(Condition):
    """``as-path contains 65001`` — loop/againt-policy tests."""

    asn: int

    def evaluate(self, view, sets):
        return view.as_path.contains(self.asn)


@dataclass(frozen=True)
class OriginAsCompare(Condition):
    """``origin-as == 65001`` / ``origin-as != 65001``."""

    asn: int
    negated: bool = False

    def evaluate(self, view, sets):
        origin = view.as_path.origin_as()
        if origin is None:
            return self.negated
        if self.negated:
            return origin != self.asn
        return origin == self.asn


@dataclass(frozen=True)
class CommunityHas(Condition):
    """``community has 0xFFFFFF01``."""

    value: int

    def evaluate(self, view, sets):
        for community in view.communities:
            if community == self.value:
                return True
        return False


@dataclass(frozen=True)
class AttrCompare(Condition):
    """Numeric attribute comparison, e.g. ``net.len > 24``."""

    attr: str
    op: str
    value: int

    _OPS = ("==", "!=", "<", "<=", ">", ">=")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ConfigError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, view, sets):
        lhs = view.attribute(self.attr)
        rhs = self.value
        if self.op == "==":
            return lhs == rhs
        if self.op == "!=":
            return lhs != rhs
        if self.op == "<":
            return lhs < rhs
        if self.op == "<=":
            return lhs <= rhs
        if self.op == ">":
            return lhs > rhs
        return lhs >= rhs


@dataclass(frozen=True)
class And(Condition):
    left: Condition
    right: Condition

    def evaluate(self, view, sets):
        # Short-circuit on purpose: evaluating the left operand's truth
        # records its branch; the right operand is only reached (and only
        # constrains the path) when the left held — concolic-faithful.
        return bool(self.left.evaluate(view, sets)) and bool(
            self.right.evaluate(view, sets)
        )


@dataclass(frozen=True)
class Or(Condition):
    left: Condition
    right: Condition

    def evaluate(self, view, sets):
        return bool(self.left.evaluate(view, sets)) or bool(
            self.right.evaluate(view, sets)
        )


@dataclass(frozen=True)
class Not(Condition):
    inner: Condition

    def evaluate(self, view, sets):
        return not bool(self.inner.evaluate(view, sets))


# ---------------------------------------------------------------------------
# Statement AST.
# ---------------------------------------------------------------------------


class FilterAction(enum.Enum):
    ACCEPT = "accept"
    REJECT = "reject"


class Statement:
    """Base class for filter statements."""


@dataclass(frozen=True)
class Terminal(Statement):
    """``accept;`` / ``reject;``."""

    action: FilterAction


@dataclass(frozen=True)
class SetAttr(Statement):
    """``set local-pref 200;``."""

    attr: str
    value: int


@dataclass(frozen=True)
class AddCommunity(Statement):
    value: int


@dataclass(frozen=True)
class RemoveCommunity(Statement):
    value: int


@dataclass(frozen=True)
class Prepend(Statement):
    """``prepend 65000 3;`` — AS-path prepending."""

    asn: int
    count: int = 1


@dataclass(frozen=True)
class If(Statement):
    condition: Condition
    then_branch: Tuple[Statement, ...]
    else_branch: Tuple[Statement, ...] = ()


@dataclass(frozen=True)
class FilterProgram:
    """A named filter: an ordered statement list.

    Falling off the end without hitting ``accept``/``reject`` rejects the
    route (fail-closed), and :attr:`fallthrough_count` in the result marks
    it so tests can flag unterminated filters.
    """

    name: str
    statements: Tuple[Statement, ...]


@dataclass
class FilterResult:
    """Outcome of running one filter over one route."""

    action: FilterAction
    attributes: PathAttributes
    fell_through: bool = False

    @property
    def accepted(self) -> bool:
        return self.action == FilterAction.ACCEPT


class _Verdict(Exception):
    """Internal control flow: a terminal statement was executed."""

    def __init__(self, action: FilterAction):
        self.action = action


class FilterInterpreter:
    """Evaluates filter programs against route views."""

    def __init__(self, prefix_sets: Optional[Dict[str, PrefixSet]] = None):
        self.prefix_sets = dict(prefix_sets or {})

    def run(self, program: FilterProgram, view: RouteView) -> FilterResult:
        """Execute ``program`` on ``view``; the view is mutated by actions."""
        try:
            self._run_block(program.statements, view)
        except _Verdict as verdict:
            return FilterResult(verdict.action, view.to_attributes())
        return FilterResult(FilterAction.REJECT, view.to_attributes(), fell_through=True)

    def _run_block(self, statements: Tuple[Statement, ...], view: RouteView) -> None:
        for statement in statements:
            self._run_statement(statement, view)

    def _run_statement(self, statement: Statement, view: RouteView) -> None:
        if isinstance(statement, Terminal):
            raise _Verdict(statement.action)
        if isinstance(statement, If):
            if bool(statement.condition.evaluate(view, self.prefix_sets)):
                self._run_block(statement.then_branch, view)
            else:
                self._run_block(statement.else_branch, view)
            return
        if isinstance(statement, SetAttr):
            view.set_attribute(statement.attr, statement.value)
            return
        if isinstance(statement, AddCommunity):
            if statement.value not in [as_concrete_int(c) for c in view.communities]:
                view.communities.append(statement.value)
            return
        if isinstance(statement, RemoveCommunity):
            view.communities = [
                c for c in view.communities if as_concrete_int(c) != statement.value
            ]
            return
        if isinstance(statement, Prepend):
            path = view.as_path
            for _ in range(statement.count):
                path = path.prepend(statement.asn)
            view.as_path = path
            return
        raise ConfigError(f"unknown statement {type(statement).__name__}")


#: A filter that accepts everything — the "no policy" default.
ACCEPT_ALL = FilterProgram("accept-all", (Terminal(FilterAction.ACCEPT),))

#: A filter that rejects everything.
REJECT_ALL = FilterProgram("reject-all", (Terminal(FilterAction.REJECT),))
