"""Tests for environment models and exploration isolation."""

import pytest

from repro.concolic.coverage import BranchCoverage
from repro.concolic.engine import trace
from repro.concolic.env import (
    ExplorationEnvironment,
    RecordingEnvironment,
    SealedEnvironment,
)
from repro.concolic.expr import BinOp, Const, Var
from repro.concolic.path import PathCondition
from repro.concolic.symbolic import SymInt
from repro.concolic.tracer import BranchSite
from repro.util.errors import IsolationViolation


class TestExplorationEnvironment:
    def test_sends_are_captured_not_delivered(self):
        env = ExplorationEnvironment(checkpoint_time=12.5)
        env.send("peer", b"hello")
        env.send("other", b"world")
        captured = env.drain_captured()
        assert [(m.destination, m.payload) for m in captured] == [
            ("peer", b"hello"), ("other", b"world")
        ]
        assert captured[0].virtual_time == 12.5
        assert env.drain_captured() == []

    def test_clock_frozen_at_checkpoint(self):
        env = ExplorationEnvironment(checkpoint_time=100.0)
        assert env.now() == 100.0
        env.advance(5.0)
        assert env.now() == 105.0
        with pytest.raises(ValueError):
            env.advance(-1.0)

    def test_files_snapshot_isolated(self):
        env = ExplorationEnvironment(files={"config": b"v1"})
        assert env.read_file("config") == b"v1"
        env.write_file("config", b"v2")
        assert env.read_file("config") == b"v2"
        with pytest.raises(FileNotFoundError):
            env.read_file("missing")

    def test_write_protection(self):
        env = ExplorationEnvironment(allow_writes=False)
        with pytest.raises(IsolationViolation):
            env.write_file("x", b"data")

    def test_is_isolated(self):
        assert ExplorationEnvironment().is_isolated


class TestSealedEnvironment:
    def test_everything_violates(self):
        env = SealedEnvironment("testing")
        with pytest.raises(IsolationViolation):
            env.send("a", b"x")
        with pytest.raises(IsolationViolation):
            env.now()
        with pytest.raises(IsolationViolation):
            env.read_file("f")
        with pytest.raises(IsolationViolation):
            env.write_file("f", b"")


class TestRecordingEnvironment:
    def test_records_sends(self):
        env = RecordingEnvironment(clock=3.0)
        env.send("peer", b"payload")
        assert env.sent[0].destination == "peer"
        assert env.sent[0].virtual_time == 3.0
        assert not env.is_isolated

    def test_files(self):
        env = RecordingEnvironment()
        env.write_file("a", b"1")
        assert env.read_file("a") == b"1"
        with pytest.raises(FileNotFoundError):
            env.read_file("b")


class TestBranchCoverage:
    def make_path(self, outcomes):
        path = PathCondition()
        for line, taken in outcomes:
            path.append(
                BranchSite("m.py", line), BinOp("lt", Var("x"), Const(line)), taken
            )
        return path

    def test_observe_counts_new_outcomes(self):
        cov = BranchCoverage()
        assert cov.observe(self.make_path([(1, True), (2, False)])) == 2
        assert cov.observe(self.make_path([(1, True)])) == 0
        assert cov.observe(self.make_path([(1, False)])) == 1
        assert cov.covered_outcomes == 3
        assert cov.covered_sites == 2

    def test_fully_covered_sites(self):
        cov = BranchCoverage()
        cov.observe(self.make_path([(1, True), (1, False), (2, True)]))
        assert cov.fully_covered_sites == 1

    def test_path_count(self):
        cov = BranchCoverage()
        cov.observe(self.make_path([(1, True)]))
        cov.observe(self.make_path([(1, True)]))  # same path
        cov.observe(self.make_path([(1, False)]))
        assert cov.path_count == 2

    def test_would_be_new(self):
        cov = BranchCoverage()
        path = self.make_path([(1, True)])
        assert cov.would_be_new(path) == 1
        cov.observe(path)
        assert cov.would_be_new(path) == 0

    def test_site_summary_sorted(self):
        cov = BranchCoverage()
        cov.observe(self.make_path([(5, True), (1, True)]))
        keys = list(cov.site_summary())
        assert keys == ["m.py:1", "m.py:5"]


class TestTraceIsolationInteraction:
    def test_no_recorder_outside_trace(self):
        """Branches on symbolic values outside a trace are silently concrete."""
        x = SymInt.variable("x", 10)
        assert bool(x > 5) is True  # no recorder installed; no error

    def test_nested_traces_restore(self):
        x = SymInt.variable("x", 10)
        with trace() as outer:
            bool(x > 1)
            with trace() as inner:
                bool(x > 2)
                bool(x > 3)
            bool(x > 4)
        assert len(inner.path) == 2
        assert len(outer.path) == 2
