"""A deterministic discrete-event simulator.

The paper's testbed runs three BIRD instances over virtual interfaces on
one machine; our equivalent executes router nodes inside a single-threaded
event loop with explicit simulated time.  Determinism matters more than
wall-clock fidelity here — every experiment must replay identically from a
seed — so events at equal timestamps are ordered by insertion sequence,
and nothing ever reads the host clock.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.util.errors import SimulationError

EventCallback = Callable[[], None]


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """Single-threaded priority-queue event loop with simulated time."""

    def __init__(self) -> None:
        self._queue: List[_Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._running = False
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: EventCallback) -> EventHandle:
        """Run ``callback`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        event = _Event(self._now + delay, next(self._sequence), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, when: float, callback: EventCallback) -> EventHandle:
        """Run ``callback`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(f"cannot schedule at {when} < now {self._now}")
        event = _Event(when, next(self._sequence), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_repeating(
        self, start: float, interval: float, count: int, callback: Callable[[int], None]
    ) -> List[EventHandle]:
        """Schedule ``count`` firings of ``callback(i)`` every ``interval``s.

        All occurrences are enqueued up front (not re-armed from the
        callback), so cancelling the returned handles reliably stops the
        train — the shape fault workloads (flap storms, rolling
        reconfigurations) need.
        """
        if interval <= 0:
            raise SimulationError(f"repeating interval must be > 0, got {interval}")
        if count < 0:
            raise SimulationError(f"repeat count must be >= 0, got {count}")
        return [
            self.schedule_at(
                start + i * interval, (lambda i=i: callback(i))
            )
            for i in range(count)
        ]

    def step(self) -> bool:
        """Execute the next pending event; False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_executed += 1
            event.callback()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue (up to ``max_events``); returns events executed."""
        if self._running:
            raise SimulationError("simulator re-entered from within an event")
        self._running = True
        executed = 0
        try:
            while self._queue if max_events is None else (
                self._queue and executed < max_events
            ):
                if self.step():
                    executed += 1
                else:
                    break
        finally:
            self._running = False
        return executed

    def run_until(self, deadline: float) -> int:
        """Execute events with time <= ``deadline``; clock ends at deadline."""
        if deadline < self._now:
            raise SimulationError(f"deadline {deadline} is in the past")
        executed = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > deadline:
                break
            self.step()
            executed += 1
        self._now = max(self._now, deadline)
        return executed

    @property
    def pending(self) -> int:
        """Events waiting (including cancelled tombstones)."""
        return sum(1 for event in self._queue if not event.cancelled)

    def idle(self) -> bool:
        return self.pending == 0
