"""Findings and exploration-session reports.

A *finding* is DiCE's output: a concrete input (derived by the concolic
engine) that drives the node into behavior a checker flags — a potential
prefix hijack, a handler crash, a violated invariant.  The paper stresses
actionability: "DiCE clearly states which prefix ranges can be leaked",
so findings carry the offending prefix and enough context for an operator
to write the missing filter.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.concolic.engine import ExplorationReport
from repro.util.ip import Prefix


class FindingKind(enum.Enum):
    PREFIX_HIJACK = "prefix-hijack"
    HANDLER_CRASH = "handler-crash"
    INVARIANT_VIOLATION = "invariant-violation"
    SESSION_RESET = "session-reset"
    # Wave-level pathologies detected over the whole clone ensemble
    # (the workload subsystem's paired invariant checkers).
    STUCK_ROUTE = "stuck-route"
    BLACKHOLE = "blackhole"
    CONVERGENCE_TIMEOUT = "convergence-timeout"
    ORIGIN_CONFLICT = "origin-conflict"


class Severity(enum.IntEnum):
    INFO = 0
    WARNING = 1
    CRITICAL = 2


@dataclass(frozen=True)
class Finding:
    """One fault DiCE detected during exploration."""

    kind: FindingKind
    severity: Severity
    summary: str
    prefix: Optional[Prefix] = None
    peer: Optional[str] = None
    expected_origin: Optional[int] = None
    observed_origin: Optional[int] = None
    assignment: Tuple[Tuple[str, int], ...] = ()
    details: str = ""
    #: Federation node the finding is about ("" for single-node sessions,
    #: where the session itself carries the node identity).
    node: str = ""
    #: Name of the checker that produced the finding ("" for the classic
    #: per-execution checkers, which predate checker attribution).
    checker: str = ""

    def dedup_key(self) -> tuple:
        """Findings agreeing on this key are the same underlying fault."""
        return (
            self.kind,
            self.prefix,
            self.peer,
            self.expected_origin,
            self.observed_origin,
            self.summary if self.kind == FindingKind.HANDLER_CRASH else "",
            self.node,
            self.checker,
        )

    def describe(self) -> str:
        parts = [f"[{self.severity.name}] {self.kind.value}: {self.summary}"]
        if self.checker:
            parts.append(f"checker={self.checker}")
        if self.node:
            parts.append(f"node={self.node}")
        if self.prefix is not None:
            parts.append(f"prefix={self.prefix}")
        if self.peer is not None:
            parts.append(f"via peer={self.peer}")
        if self.expected_origin is not None or self.observed_origin is not None:
            parts.append(
                f"origin AS{self.expected_origin} -> AS{self.observed_origin}"
            )
        if self.assignment:
            rendered = ", ".join(f"{k}={v}" for k, v in self.assignment)
            parts.append(f"input({rendered})")
        return " ".join(parts)


@dataclass
class SessionReport:
    """Everything one DiCE exploration session produced.

    ``solver_stats`` is populated by parallel workers (each worker owns a
    private solver, so its counters — including constraint-cache hits —
    would otherwise be lost when the worker process exits).
    """

    peer: str
    model_name: str
    exploration: ExplorationReport
    findings: List[Finding] = field(default_factory=list)
    checkpoint_pages: int = 0
    checkpoint_seconds: float = 0.0
    clone_count: int = 0
    solver_stats: Dict[str, float] = field(default_factory=dict)
    #: Federation node the session explored ("" outside federated runs):
    #: lets a shared-pool harvest attribute each report to its AS.
    node: str = ""

    def compact(self) -> "SessionReport":
        """A transport-safe copy for crossing process boundaries."""
        return dataclasses.replace(self, exploration=self.exploration.compact())

    def unique_findings(self) -> List[Finding]:
        seen: Dict[tuple, Finding] = {}
        for finding in self.findings:
            seen.setdefault(finding.dedup_key(), finding)
        return list(seen.values())

    def hijack_findings(self) -> List[Finding]:
        return [
            f for f in self.unique_findings() if f.kind == FindingKind.PREFIX_HIJACK
        ]

    def leaked_prefixes(self) -> List[Prefix]:
        """The actionable output: which prefix ranges can be leaked."""
        return sorted(
            {f.prefix for f in self.hijack_findings() if f.prefix is not None}
        )

    def summary(self) -> Dict[str, object]:
        return {
            "peer": self.peer,
            "model": self.model_name,
            "executions": self.exploration.executions,
            "unique_paths": self.exploration.unique_paths,
            "findings": len(self.unique_findings()),
            "hijacks": len(self.hijack_findings()),
            "clone_count": self.clone_count,
            "stop_reason": self.exploration.stop_reason,
            "wall_seconds": round(self.exploration.wall_seconds, 4),
        }
