"""FIG1 — concolic predicate negation systematically enumerates code paths.

Figure 1 of the paper illustrates the mechanism DiCE builds on: run on a
concrete input, then negate recorded predicates one at a time to reach
the other side of every branch.  This benchmark drives the engine over a
BGP-shaped handler with a known path count and verifies the engine
discovers *all* of them, reporting executions, solver queries, and time
per path; an aggregate-set variant shows that constraints discovered in
later runs (the paper's section 2.3 requirement) are indeed negated.
"""

import pytest

from repro.concolic import (
    ConcolicEngine,
    ExplorationBudget,
    InputSpec,
    VarSpec,
    make_strategy,
)

#: A handler with 8 distinct outcomes over two fields, including nested
#: branches only reachable after a first negation (aggregate-set test).
def graded_handler(inputs):
    masklen = inputs.masklen
    network = inputs.network
    if masklen > 32:
        return "invalid-length"
    if masklen < 8:
        return "too-coarse"
    if (network >> 24) == 10:
        if masklen >= 24:
            return "private-specific"
        return "private-coarse"
    if (network >> 16) == 0xC0A8:
        return "rfc1918-192"
    if masklen == 32:
        return "host-route"
    if (network & 0xFF) != 0:
        return "unaligned"
    return "accepted"


ALL_OUTCOMES = {
    "invalid-length", "too-coarse", "private-specific", "private-coarse",
    "rfc1918-192", "host-route", "unaligned", "accepted",
}


def make_spec():
    return InputSpec([
        VarSpec("network", bits=32, initial=0x0A0A0100),
        VarSpec("masklen", bits=6, initial=24),
    ])


def run_exploration(strategy_name="generational"):
    engine = ConcolicEngine()
    report = engine.explore(
        graded_handler,
        make_spec(),
        strategy=make_strategy(strategy_name),
        budget=ExplorationBudget(max_executions=128),
    )
    outcomes = {r.value for r in report.results if isinstance(r.value, str)}
    return engine, report, outcomes


@pytest.mark.benchmark(group="fig1")
def test_fig1_systematic_negation(benchmark, paper_rows):
    engine, report, outcomes = benchmark.pedantic(
        run_exploration, rounds=3, iterations=1
    )
    assert outcomes == ALL_OUTCOMES, f"missed outcomes: {ALL_OUTCOMES - outcomes}"
    paper_rows.add(
        "FIG1", "all reachable paths found by negation",
        "yes (illustrated mechanism)",
        f"yes: {len(ALL_OUTCOMES)}/8 outcomes in {report.executions} executions",
    )
    paper_rows.add(
        "FIG1", "solver queries per discovered path",
        "1 per negated branch",
        f"{report.solver_queries / max(report.unique_paths, 1):.1f}",
    )
    paper_rows.add(
        "FIG1", "aggregate constraint set grows across runs",
        "required for full coverage (sec 2.3)",
        f"nested outcomes reached: "
        f"{'private-specific' in outcomes and 'private-coarse' in outcomes}",
    )


@pytest.mark.benchmark(group="fig1")
@pytest.mark.parametrize("strategy", ["generational", "dfs", "bfs", "random"])
def test_fig1_strategies_reach_full_coverage(benchmark, strategy, paper_rows):
    """Oasis 'has multiple search strategies' — all must converge here."""
    engine, report, outcomes = benchmark.pedantic(
        run_exploration, args=(strategy,), rounds=1, iterations=1
    )
    assert outcomes == ALL_OUTCOMES
    paper_rows.add(
        "FIG1", f"strategy={strategy}: executions to full coverage",
        "n/a (multiple strategies supported)",
        report.executions,
    )


@pytest.mark.benchmark(group="fig1")
def test_fig1_duplicate_paths_suppressed(benchmark, paper_rows):
    """Negation dedup keeps re-exploration bounded."""
    def run():
        engine = ConcolicEngine()
        return engine.explore(
            graded_handler, make_spec(),
            budget=ExplorationBudget(max_executions=256),
        )

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    ratio = report.duplicate_paths / max(report.executions, 1)
    assert ratio < 0.5
    paper_rows.add(
        "FIG1", "duplicate-path executions",
        "n/a",
        f"{report.duplicate_paths}/{report.executions} ({ratio:.0%})",
    )
