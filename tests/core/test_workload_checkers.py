"""Unit tests for the wave-level invariant checkers.

Each checker is driven directly against a hand-built violating state —
no scenario build, no propagation — so a failure localizes to the
checker's own judgement, not to the workload machinery.  The states are
minimal duck-typed stand-ins exposing exactly the surface the checkers
read (``adj_rib_in.peers()/peer_prefixes()``, ``sessions``, ``loc_rib``,
``static_routes``, ``config.asn``).
"""

import pytest

from repro.core.checkers import (
    ConvergenceDeadlineChecker,
    NoBlackholeChecker,
    NoStuckRoutesChecker,
    WAVE_CHECKERS,
    WaveContext,
    get_wave_checker,
    list_wave_checkers,
)
from repro.core.report import FindingKind, Severity
from repro.util.ip import Prefix

P = Prefix.parse


class FakeStats:
    def __init__(self, converged=True, sim_seconds=0.0):
        self.converged = converged
        self.sim_seconds = sim_seconds


class FakeSession:
    def __init__(self, established=True):
        self.established = established


class FakeAdjRibIn:
    """node -> peer -> [prefixes] in the shape the checker walks."""

    def __init__(self, by_peer=None):
        self.by_peer = by_peer or {}

    def peers(self):
        return sorted(self.by_peer)

    def peer_prefixes(self, peer_id):
        return list(self.by_peer.get(peer_id, ()))


class FakeLocRib:
    def __init__(self, prefixes=()):
        self.prefixes = set(prefixes)

    def get(self, prefix):
        return object() if prefix in self.prefixes else None


class FakeConfig:
    def __init__(self, asn):
        self.asn = asn


class FakeRouter:
    def __init__(self, asn, adj_rib_in=None, sessions=None, loc_rib=(),
                 static_routes=()):
        self.config = FakeConfig(asn)
        self.adj_rib_in = adj_rib_in or FakeAdjRibIn()
        self.sessions = sessions or {}
        self.loc_rib = FakeLocRib(loc_rib)
        self.static_routes = set(static_routes)


def ctx(clones, stats=None, **kwargs):
    return WaveContext(clones=clones, stats=stats or FakeStats(), **kwargs)


class TestConvergenceDeadline:
    def test_silent_on_timely_convergence(self):
        findings = ConvergenceDeadlineChecker().check(
            ctx({}, FakeStats(converged=True, sim_seconds=1.0), deadline=5.0)
        )
        assert findings == []

    def test_cut_off_wave_is_critical(self):
        findings = ConvergenceDeadlineChecker().check(
            ctx({}, FakeStats(converged=False, sim_seconds=9.9))
        )
        assert [f.kind for f in findings] == [FindingKind.CONVERGENCE_TIMEOUT]
        assert findings[0].severity == Severity.CRITICAL
        assert findings[0].checker == "convergence-deadline"

    def test_late_convergence_is_warning(self):
        findings = ConvergenceDeadlineChecker().check(
            ctx({}, FakeStats(converged=True, sim_seconds=6.0), deadline=5.0)
        )
        assert [f.severity for f in findings] == [Severity.WARNING]
        assert "deadline" in findings[0].summary


class TestNoStuckRoutes:
    def test_silent_when_neighbor_still_carries_prefix(self):
        prefix = P("10.1.0.0/16")
        holder = FakeRouter(
            65001,
            adj_rib_in=FakeAdjRibIn({"origin": [prefix]}),
            sessions={"origin": FakeSession(established=True)},
        )
        origin = FakeRouter(65002, loc_rib=[prefix], static_routes=[prefix])
        findings = NoStuckRoutesChecker().check(
            ctx({"holder": holder, "origin": origin})
        )
        assert findings == []

    def test_route_stuck_after_lost_withdrawal(self):
        # The injected pathology: 'origin' dropped the prefix entirely,
        # but 'holder' never saw the withdrawal (silently failed link).
        prefix = P("10.1.0.0/16")
        holder = FakeRouter(
            65001,
            adj_rib_in=FakeAdjRibIn({"origin": [prefix]}),
            sessions={"origin": FakeSession(established=True)},
        )
        origin = FakeRouter(65002)  # empty Loc-RIB, nothing static
        findings = NoStuckRoutesChecker().check(
            ctx({"holder": holder, "origin": origin})
        )
        assert len(findings) == 1
        finding = findings[0]
        assert finding.kind == FindingKind.STUCK_ROUTE
        assert finding.node == "holder"
        assert finding.peer == "origin"
        assert finding.prefix == prefix
        assert "withdrawal lost" in finding.summary

    def test_route_surviving_a_down_session(self):
        prefix = P("10.2.0.0/16")
        holder = FakeRouter(
            65001,
            adj_rib_in=FakeAdjRibIn({"origin": [prefix]}),
            sessions={"origin": FakeSession(established=False)},
        )
        findings = NoStuckRoutesChecker().check(ctx({"holder": holder}))
        assert len(findings) == 1
        assert findings[0].severity == Severity.CRITICAL
        assert "session" in findings[0].summary

    def test_out_of_federation_peer_not_judged(self):
        prefix = P("10.3.0.0/16")
        holder = FakeRouter(
            65001,
            adj_rib_in=FakeAdjRibIn({"outsider": [prefix]}),
            sessions={"outsider": FakeSession(established=True)},
        )
        assert NoStuckRoutesChecker().check(ctx({"holder": holder})) == []


class TestNoBlackhole:
    def test_silent_when_route_still_present(self):
        prefix = P("10.1.0.0/16")
        node = FakeRouter(65001, loc_rib=[prefix])
        origin = FakeRouter(65002, loc_rib=[prefix], static_routes=[prefix])
        findings = NoBlackholeChecker().check(ctx(
            {"node": node, "origin": origin},
            baseline={"node": {prefix: 65002}},
        ))
        assert findings == []

    def test_blackholed_prefix_fires(self):
        # Baseline says 'node' could reach the prefix; post-wave its
        # table is empty while the origin clone still originates it.
        prefix = P("10.1.0.0/16")
        node = FakeRouter(65001)
        origin = FakeRouter(65002, loc_rib=[prefix], static_routes=[prefix])
        findings = NoBlackholeChecker().check(ctx(
            {"node": node, "origin": origin},
            baseline={"node": {prefix: 65002}},
        ))
        assert len(findings) == 1
        finding = findings[0]
        assert finding.kind == FindingKind.BLACKHOLE
        assert finding.node == "node"
        assert finding.expected_origin == 65002
        assert finding.checker == "no-blackhole"

    def test_genuinely_withdrawn_origination_is_exempt(self):
        prefix = P("10.1.0.0/16")
        node = FakeRouter(65001)
        origin = FakeRouter(65002)  # origination withdrawn during the wave
        findings = NoBlackholeChecker().check(ctx(
            {"node": node, "origin": origin},
            baseline={"node": {prefix: 65002}},
        ))
        assert findings == []

    def test_self_originated_prefix_is_exempt(self):
        prefix = P("10.1.0.0/16")
        node = FakeRouter(65001, static_routes=[prefix])  # own prefix
        origin = FakeRouter(65002, loc_rib=[prefix], static_routes=[prefix])
        findings = NoBlackholeChecker().check(ctx(
            {"node": node, "origin": origin},
            baseline={"node": {prefix: 65002}},
        ))
        assert findings == []


class TestRegistry:
    def test_every_checker_is_listed_with_a_description(self):
        rows = list_wave_checkers()
        assert sorted(name for name, _ in rows) == sorted(WAVE_CHECKERS)
        assert all(description for _, description in rows)

    def test_get_wave_checker_returns_fresh_instances(self):
        a = get_wave_checker("no-blackhole")
        b = get_wave_checker("no-blackhole")
        assert a is not b

    def test_unknown_checker_names_the_known_ones(self):
        with pytest.raises(KeyError, match="no-blackhole"):
            get_wave_checker("definitely-not-a-checker")
