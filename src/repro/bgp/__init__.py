"""A from-scratch BGP-4 substrate (the paper's BIRD role).

Wire codecs, RIBs, the decision process, a BIRD-like policy/config
language with interpreter, the session FSM, and the router node.
"""

from repro.bgp.attributes import (
    AsPath,
    AsPathSegment,
    ORIGIN_EGP,
    ORIGIN_IGP,
    ORIGIN_INCOMPLETE,
    PathAttributes,
    decode_attributes,
    encode_attributes,
)
from repro.bgp.config import NeighborConfig, RouterConfig, parse_config
from repro.bgp.decision import DEFAULT_LOCAL_PREF, best_route, prefer, routes_equal
from repro.bgp.fsm import Session, SessionFsm, SessionState
from repro.bgp.messages import (
    KeepaliveMessage,
    Message,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
    decode_message,
)
from repro.bgp.nlri import NlriEntry, decode_nlri, encode_nlri
from repro.bgp.policy import (
    ACCEPT_ALL,
    FilterAction,
    FilterInterpreter,
    FilterProgram,
    FilterResult,
    PrefixSet,
    PrefixSpec,
    REJECT_ALL,
    RouteView,
)
from repro.bgp.rib import (
    AdjRibIn,
    AdjRibOut,
    ChangeKind,
    LocRib,
    RibChange,
    Route,
    RouteSource,
)
from repro.bgp.router import BgpRouter, STATIC_LOCAL_PREF

__all__ = [
    "ACCEPT_ALL",
    "AdjRibIn",
    "AdjRibOut",
    "AsPath",
    "AsPathSegment",
    "BgpRouter",
    "ChangeKind",
    "DEFAULT_LOCAL_PREF",
    "FilterAction",
    "FilterInterpreter",
    "FilterProgram",
    "FilterResult",
    "KeepaliveMessage",
    "LocRib",
    "Message",
    "NeighborConfig",
    "NlriEntry",
    "NotificationMessage",
    "ORIGIN_EGP",
    "ORIGIN_IGP",
    "ORIGIN_INCOMPLETE",
    "OpenMessage",
    "PathAttributes",
    "PrefixSet",
    "PrefixSpec",
    "REJECT_ALL",
    "RibChange",
    "Route",
    "RouteSource",
    "RouterConfig",
    "RouteView",
    "STATIC_LOCAL_PREF",
    "Session",
    "SessionFsm",
    "SessionState",
    "UpdateMessage",
    "best_route",
    "decode_attributes",
    "decode_message",
    "decode_nlri",
    "encode_attributes",
    "encode_nlri",
    "parse_config",
    "prefer",
    "routes_equal",
]
