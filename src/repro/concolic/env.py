"""Environment models: how explored code interacts with the outside world.

The paper modifies Oasis's filesystem/network model "to control the
interactions of the program under test with the environment and ensure
isolation from the running system" (section 3.2).  Here the node code is
written against the small :class:`Environment` interface; the network
simulator provides the live implementation, and exploration clones get an
:class:`ExplorationEnvironment` that

* **captures** outbound messages instead of delivering them (DiCE
  "intercepts the messages generated during exploration", section 2.3),
* serves a frozen virtual clock so explored code cannot observe live time,
* backs file operations with an in-memory snapshot filesystem,
* raises :class:`IsolationViolation` on anything that would escape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.util.errors import IsolationViolation


@dataclass(frozen=True)
class CapturedMessage:
    """An outbound message intercepted during exploration."""

    destination: str
    payload: bytes
    virtual_time: float


class Environment:
    """The world as seen by node code: network, clock, and files.

    Node implementations must route *all* external interaction through
    this interface; that single choke point is what makes checkpoint
    clones safely explorable.
    """

    def send(self, destination: str, payload: bytes) -> None:
        """Transmit ``payload`` to the named peer."""
        raise NotImplementedError

    def now(self) -> float:
        """Current time in seconds (simulated or virtual)."""
        raise NotImplementedError

    def read_file(self, path: str) -> bytes:
        """Read a configuration or state file."""
        raise NotImplementedError

    def write_file(self, path: str, data: bytes) -> None:
        """Persist a state file."""
        raise NotImplementedError

    @property
    def is_isolated(self) -> bool:
        """True when running inside an exploration sandbox."""
        return False


class ExplorationEnvironment(Environment):
    """The sandbox given to checkpoint clones during exploration.

    Construction snapshots the file map; sends are captured in order; the
    clock is frozen at the checkpoint instant (explored code observing
    time sees the moment the checkpoint was taken, keeping exploration
    deterministic).
    """

    def __init__(
        self,
        checkpoint_time: float = 0.0,
        files: Optional[Dict[str, bytes]] = None,
        allow_writes: bool = True,
    ):
        self._time = checkpoint_time
        self._files: Dict[str, bytes] = dict(files or {})
        self._allow_writes = allow_writes
        self.captured: List[CapturedMessage] = []

    def send(self, destination: str, payload: bytes) -> None:
        self.captured.append(CapturedMessage(destination, bytes(payload), self._time))

    def now(self) -> float:
        return self._time

    def advance(self, seconds: float) -> None:
        """Advance the virtual clock (used by federated exploration)."""
        if seconds < 0:
            raise ValueError("cannot rewind the virtual clock")
        self._time += seconds

    def read_file(self, path: str) -> bytes:
        if path not in self._files:
            raise FileNotFoundError(path)
        return self._files[path]

    def write_file(self, path: str, data: bytes) -> None:
        if not self._allow_writes:
            raise IsolationViolation(
                f"exploration clone attempted to write {path!r} with writes disabled"
            )
        self._files[path] = bytes(data)

    def drain_captured(self) -> List[CapturedMessage]:
        """Return and clear the captured outbound messages."""
        captured, self.captured = self.captured, []
        return captured

    @property
    def is_isolated(self) -> bool:
        return True


class SealedEnvironment(Environment):
    """An environment where *every* interaction is an isolation violation.

    Installed on clones outside their explicit exploration windows, so a
    stray callback firing at the wrong moment is caught immediately.
    """

    def __init__(self, reason: str = "clone is sealed"):
        self._reason = reason

    def _violate(self, action: str) -> Tuple[()]:
        raise IsolationViolation(f"{action}: {self._reason}")

    def send(self, destination: str, payload: bytes) -> None:
        self._violate(f"send to {destination!r}")

    def now(self) -> float:
        self._violate("clock read")
        raise AssertionError("unreachable")

    def read_file(self, path: str) -> bytes:
        self._violate(f"read of {path!r}")
        raise AssertionError("unreachable")

    def write_file(self, path: str, data: bytes) -> None:
        self._violate(f"write of {path!r}")

    @property
    def is_isolated(self) -> bool:
        return True


@dataclass
class RecordingEnvironment(Environment):
    """A live-side environment that records sends for assertions in tests."""

    clock: float = 0.0
    files: Dict[str, bytes] = field(default_factory=dict)
    sent: List[CapturedMessage] = field(default_factory=list)

    def send(self, destination: str, payload: bytes) -> None:
        self.sent.append(CapturedMessage(destination, bytes(payload), self.clock))

    def now(self) -> float:
        return self.clock

    def read_file(self, path: str) -> bytes:
        if path not in self.files:
            raise FileNotFoundError(path)
        return self.files[path]

    def write_file(self, path: str, data: bytes) -> None:
        self.files[path] = bytes(data)
