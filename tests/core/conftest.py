"""Shared fixtures for DiCE core tests.

Scenario construction (trace generation + convergence) dominates test
time, so converged scenarios are module-scoped; tests must not mutate the
live routers (exploration via checkpoints never does).
"""

import pytest

from repro.core import get_scenario


def small_scenario(filter_mode, prefix_count=400, update_count=40):
    scenario = get_scenario("fig2").build(
        filter_mode=filter_mode,
        prefix_count=prefix_count,
        update_count=update_count,
    )
    scenario.converge()
    return scenario


@pytest.fixture(scope="module")
def correct_scenario():
    return small_scenario("correct")


@pytest.fixture(scope="module")
def erroneous_scenario():
    return small_scenario("erroneous")


@pytest.fixture(scope="module")
def missing_scenario():
    return small_scenario("missing")
