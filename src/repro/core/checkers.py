"""Fault checkers: deciding whether an explored action is a potential fault.

The paper's route-leak experiment (section 4.2) defines the check this
reproduction centers on: "For each exploratory message, we check whether
the announced route ... is accepted, and in this case we detect a
potential hijack if that route overrides the origin AS of a route already
in the routing table prior to starting exploration."  The footnote adds
the trust assumption (existing routes are trustworthy) and the text the
false-positive handling (anycast prefixes are legitimately multi-origin
and are whitelisted).

Checkers receive an :class:`ExecutionContext` — the exploratory input,
the post-execution clone, the intercepted traffic, and the pre-exploration
:class:`OriginBaseline` — and return findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bgp.messages import NotificationMessage, UpdateMessage
from repro.bgp.router import BgpRouter
from repro.bgp.wire import as_concrete_int
from repro.concolic.path import PathCondition
from repro.core.isolation import InterceptedTraffic
from repro.core.report import Finding, FindingKind, Severity
from repro.util.errors import WireFormatError
from repro.util.ip import Prefix, PrefixTrie


class OriginBaseline:
    """Trusted prefix -> origin-AS map captured before exploration.

    Built from the live router's Loc-RIB at checkpoint time (the paper's
    "routing table prior to starting exploration"); locally originated
    routes map to the router's own AS.
    """

    def __init__(self, local_asn: int):
        self.local_asn = local_asn
        self._trie = PrefixTrie()
        self.size = 0

    @classmethod
    def from_router(cls, router: BgpRouter) -> "OriginBaseline":
        baseline = cls(router.config.asn)
        for prefix, route in router.loc_rib.items():
            origin = route.origin_as()
            origin_asn = (
                baseline.local_asn if origin is None else as_concrete_int(origin)
            )
            baseline.add(prefix, origin_asn)
        return baseline

    def add(self, prefix: Prefix, origin_asn: int) -> None:
        self._trie.insert(prefix, origin_asn)
        self.size += 1

    def origin_for(self, prefix: Prefix) -> Optional[Tuple[Prefix, int]]:
        """The most specific baseline entry covering ``prefix``.

        Covering (not just exact) matters: announcing a *more specific*
        of an installed prefix with a different origin is precisely the
        YouTube-style sub-prefix hijack.
        """
        best: Optional[Tuple[Prefix, int]] = None
        for covering_prefix, origin in self._trie.covering(prefix):
            best = (covering_prefix, origin)  # iteration is shortest-first
        return best

    def items(self):
        """All (prefix, origin AS) baseline entries."""
        return self._trie.items()


@dataclass
class ExecutionContext:
    """Everything a checker may inspect about one exploratory execution."""

    peer: str
    assignment: dict
    baseline: OriginBaseline
    update: Optional[UpdateMessage] = None
    clone: Optional[BgpRouter] = None
    traffic: InterceptedTraffic = field(default_factory=InterceptedTraffic)
    exception: Optional[BaseException] = None
    #: The recorded path condition of this execution (set by the explorer);
    #: region-based checkers derive the accepted input region from it.
    path: Optional["PathCondition"] = None
    #: Variable domains of the input spec, for interval propagation.
    domains: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: False when this execution repeated an already-seen path; per-path
    #: analyses (leak regions) skip repeats.
    is_new_path: bool = True
    #: Which NLRI entry of the update carries the symbolic fields; the
    #: observed message may announce several prefixes, and only this
    #: entry's acceptance reflects the explored path.
    nlri_index: int = 0

    def assignment_items(self) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted(self.assignment.items()))


class FaultChecker:
    """Base class for checkers."""

    name = "base"

    def check(self, ctx: ExecutionContext) -> List[Finding]:
        raise NotImplementedError


class HijackChecker(FaultChecker):
    """Detects origin-misconfiguration route leaks (paper section 4.2).

    ``anycast_whitelist`` holds prefixes that are legitimately
    multi-origin ("certain prefixes are hijackable by nature, e.g., those
    used for IP anycast ... DiCE can simply filter these out"); findings
    inside whitelisted space are suppressed.
    """

    name = "hijack"

    def __init__(self, anycast_whitelist: Optional[List[Prefix]] = None):
        self._whitelist = PrefixTrie()
        for prefix in anycast_whitelist or ():
            self._whitelist.insert(prefix, True)

    def whitelisted(self, prefix: Prefix) -> bool:
        for _ in self._whitelist.covering(prefix):
            return True
        return False

    def check(self, ctx: ExecutionContext) -> List[Finding]:
        findings: List[Finding] = []
        if ctx.update is None or ctx.clone is None:
            return findings
        session = ctx.clone.sessions.get(ctx.peer)
        peer_asn = session.peer.remote_as if session is not None else 0
        for entry in ctx.update.nlri:
            try:
                prefix = entry.to_prefix()
            except Exception:
                continue
            route = ctx.clone.adj_rib_in.get(ctx.peer, prefix)
            if route is None:
                continue  # the import filter rejected this announcement
            if abs(route.learned_at - ctx.clone.now) > 1e-9:
                continue  # pre-existing route, not accepted by this run
            origin = route.origin_as()
            observed_origin = peer_asn if origin is None else as_concrete_int(origin)
            base = ctx.baseline.origin_for(prefix)
            if base is None:
                continue  # nothing installed is overridden
            base_prefix, base_origin = base
            if observed_origin == base_origin:
                continue
            if self.whitelisted(prefix):
                continue
            exact = "exact" if base_prefix == prefix else f"more specific of {base_prefix}"
            findings.append(
                Finding(
                    kind=FindingKind.PREFIX_HIJACK,
                    severity=Severity.CRITICAL,
                    summary=(
                        f"peer {ctx.peer!r} can leak {prefix} ({exact}), "
                        f"overriding origin AS{base_origin} with AS{observed_origin}"
                    ),
                    prefix=prefix,
                    peer=ctx.peer,
                    expected_origin=base_origin,
                    observed_origin=observed_origin,
                    assignment=ctx.assignment_items(),
                    details=f"accepted route: {route.describe()}",
                )
            )
        return findings


class CrashChecker(FaultChecker):
    """Flags handler exceptions that are not wire-validity rejections.

    A :class:`WireFormatError` is the handler's *intended* response to a
    malformed input (it maps to a NOTIFICATION), so only other exception
    types count as crashes.
    """

    name = "crash"

    def check(self, ctx: ExecutionContext) -> List[Finding]:
        from repro.concolic.engine import PathBudgetExceeded

        if ctx.exception is None or isinstance(
            ctx.exception, (WireFormatError, PathBudgetExceeded)
        ):
            return []
        return [
            Finding(
                kind=FindingKind.HANDLER_CRASH,
                severity=Severity.CRITICAL,
                summary=(
                    f"handler raised {type(ctx.exception).__name__}: {ctx.exception}"
                ),
                peer=ctx.peer,
                assignment=ctx.assignment_items(),
            )
        ]


class SessionResetChecker(FaultChecker):
    """Flags exploratory inputs that make the node reset a session.

    An input whose processing emits a NOTIFICATION would, on the live
    node, tear down a peering — worth surfacing to an operator even
    though it is protocol-correct behavior.
    """

    name = "session-reset"

    def check(self, ctx: ExecutionContext) -> List[Finding]:
        findings: List[Finding] = []
        for destination, message in ctx.traffic.decoded():
            if isinstance(message, NotificationMessage):
                findings.append(
                    Finding(
                        kind=FindingKind.SESSION_RESET,
                        severity=Severity.WARNING,
                        summary=(
                            f"input makes node send NOTIFICATION "
                            f"code={as_concrete_int(message.code)} "
                            f"subcode={as_concrete_int(message.subcode)} to {destination!r}"
                        ),
                        peer=ctx.peer,
                        assignment=ctx.assignment_items(),
                    )
                )
        return findings


class InvariantChecker(FaultChecker):
    """Wraps a user-supplied invariant over the clone's state.

    The callable returns None when the invariant holds, or a description
    of the violation.  This is the extension point the paper's "notion of
    desired system behavior" (section 2.4) maps to.
    """

    name = "invariant"

    def __init__(self, invariant: Callable[[BgpRouter], Optional[str]], name: str = "invariant"):
        self._invariant = invariant
        self.name = name

    def check(self, ctx: ExecutionContext) -> List[Finding]:
        if ctx.clone is None:
            return []
        violation = self._invariant(ctx.clone)
        if violation is None:
            return []
        return [
            Finding(
                kind=FindingKind.INVARIANT_VIOLATION,
                severity=Severity.WARNING,
                summary=f"{self.name}: {violation}",
                peer=ctx.peer,
                assignment=ctx.assignment_items(),
            )
        ]


class LeakRegionChecker(FaultChecker):
    """Derives *which prefix ranges can be leaked* from accepted paths.

    The paper's operator-facing claim is that "DiCE clearly states which
    prefix ranges can be leaked".  A single accepted execution pins one
    concrete NLRI, but its *path condition* describes the whole input
    region that takes the same accepted path through the (mis)configured
    filter.  This checker propagates intervals over the held constraints
    to bound that region, then scans the trusted baseline for installed
    prefixes inside it whose origin differs from the exploratory
    announcement's origin — every such prefix is hijackable through the
    filter hole, whether or not the solver's concrete pick happened to
    collide with it.
    """

    name = "leak-region"

    def __init__(
        self,
        network_var: str = "nlri_network",
        masklen_var: str = "nlri_masklen",
        anycast_whitelist: Optional[List[Prefix]] = None,
        max_report: int = 10_000,
    ):
        self.network_var = network_var
        self.masklen_var = masklen_var
        self.max_report = max_report
        self._whitelist = PrefixTrie()
        for prefix in anycast_whitelist or ():
            self._whitelist.insert(prefix, True)

    def _accepted(self, ctx: ExecutionContext) -> Optional[int]:
        """Origin AS if this run accepted its *symbolic* NLRI, else None.

        Only the entry carrying the symbolic fields counts: the observed
        message may announce other (concrete) prefixes whose acceptance
        says nothing about the explored path.
        """
        if ctx.update is None or ctx.clone is None:
            return None
        if not 0 <= ctx.nlri_index < len(ctx.update.nlri):
            return None
        session = ctx.clone.sessions.get(ctx.peer)
        peer_asn = session.peer.remote_as if session is not None else 0
        entry = ctx.update.nlri[ctx.nlri_index]
        try:
            prefix = entry.to_prefix()
        except Exception:
            return None
        route = ctx.clone.adj_rib_in.get(ctx.peer, prefix)
        if route is None or abs(route.learned_at - ctx.clone.now) > 1e-9:
            return None
        origin = route.origin_as()
        return peer_asn if origin is None else as_concrete_int(origin)

    def check(self, ctx: ExecutionContext) -> List[Finding]:
        from repro.concolic.expr import EvalError
        from repro.concolic.solver.intervals import propagate

        findings: List[Finding] = []
        if not ctx.is_new_path:
            return findings  # region analysis is per-path, not per-run
        observed_origin = self._accepted(ctx)
        if observed_origin is None or ctx.path is None:
            return findings
        if self.network_var not in ctx.domains:
            return findings
        # Concretization records (symbolic values pinned by index/int
        # contexts) are data-structure artifacts, not filter decisions;
        # keeping them would collapse the region to the single explored
        # point.  Decision-relevant branches are comparison constraints.
        held = [
            branch.held_constraint()
            for branch in ctx.path
            if not branch.is_concretization
        ]
        narrowed = propagate(held, dict(ctx.domains))
        if narrowed is None:
            return findings  # inconsistent recording; nothing to report
        net_lo, net_hi = narrowed.get(self.network_var, ctx.domains[self.network_var])
        mask_lo, mask_hi = narrowed.get(self.masklen_var, (0, 32))
        mask_hi = min(mask_hi, 32)

        reported = 0
        for prefix, base_origin in ctx.baseline.items():
            if reported >= self.max_report:
                break
            origin_asn = int(base_origin)  # type: ignore[arg-type]
            if origin_asn == observed_origin:
                continue
            # Fast interval screen: an exact-prefix announcement must fall
            # inside the accepted region's bounding box...
            if not (mask_lo <= prefix.length <= mask_hi):
                continue
            if not (net_lo <= prefix.network <= net_hi):
                continue
            if self._whitelisted(prefix):
                continue
            # ...then verify exactly: announcing (prefix.network,
            # prefix.length) must satisfy every held constraint of this
            # accepted path, i.e. it follows the same accepted filter path.
            candidate = dict(ctx.assignment)
            candidate[self.network_var] = prefix.network
            if self.masklen_var in ctx.domains:
                candidate[self.masklen_var] = prefix.length
            try:
                if not all(bool(c.evaluate(candidate)) for c in held):
                    continue
            except EvalError:
                continue
            findings.append(
                Finding(
                    kind=FindingKind.PREFIX_HIJACK,
                    severity=Severity.CRITICAL,
                    summary=(
                        f"filter hole: peer {ctx.peer!r} can leak {prefix} "
                        f"(origin AS{origin_asn} -> AS{observed_origin}); accepted "
                        f"region network=[{net_lo:#010x},{net_hi:#010x}] "
                        f"masklen=[{mask_lo},{mask_hi}]"
                    ),
                    prefix=prefix,
                    peer=ctx.peer,
                    expected_origin=origin_asn,
                    observed_origin=observed_origin,
                    assignment=ctx.assignment_items(),
                )
            )
            reported += 1
        return findings

    def _whitelisted(self, prefix: Prefix) -> bool:
        for _ in self._whitelist.covering(prefix):
            return True
        return False


#: Address blocks that must never be accepted from an eBGP peer
#: (RFC 1918 private space, loopback, link-local, documentation, etc.).
BOGON_PREFIXES = tuple(
    Prefix.parse(text)
    for text in (
        "0.0.0.0/8", "10.0.0.0/8", "127.0.0.0/8", "169.254.0.0/16",
        "172.16.0.0/12", "192.0.2.0/24", "192.168.0.0/16",
        "198.18.0.0/15", "198.51.100.0/24", "203.0.113.0/24",
        "224.0.0.0/3",
    )
)


class BogonChecker(FaultChecker):
    """Flags exploratory bogon announcements that the filters accepted.

    A complementary operational invariant: even when no installed route
    is overridden, accepting RFC 1918 / reserved space from a peer means
    the import policy lacks standard bogon filtering.  Exercises the
    same accepted-or-not machinery as the hijack check.
    """

    name = "bogon"

    def __init__(self, bogons: Optional[List[Prefix]] = None):
        self._bogons = PrefixTrie()
        for prefix in bogons if bogons is not None else BOGON_PREFIXES:
            self._bogons.insert(prefix, True)

    def _is_bogon(self, prefix: Prefix) -> bool:
        for _ in self._bogons.covering(prefix):
            return True
        return False

    def check(self, ctx: ExecutionContext) -> List[Finding]:
        findings: List[Finding] = []
        if ctx.update is None or ctx.clone is None:
            return findings
        for entry in ctx.update.nlri:
            try:
                prefix = entry.to_prefix()
            except Exception:
                continue
            if not self._is_bogon(prefix):
                continue
            route = ctx.clone.adj_rib_in.get(ctx.peer, prefix)
            if route is None or abs(route.learned_at - ctx.clone.now) > 1e-9:
                continue
            findings.append(
                Finding(
                    kind=FindingKind.INVARIANT_VIOLATION,
                    severity=Severity.WARNING,
                    summary=(
                        f"import policy accepted bogon prefix {prefix} "
                        f"from peer {ctx.peer!r}"
                    ),
                    prefix=prefix,
                    peer=ctx.peer,
                    assignment=ctx.assignment_items(),
                )
            )
        return findings


def default_checkers(anycast_whitelist: Optional[List[Prefix]] = None) -> List[FaultChecker]:
    """The checker suite the paper's evaluation runs."""
    return [
        HijackChecker(anycast_whitelist),
        LeakRegionChecker(anycast_whitelist=anycast_whitelist),
        CrashChecker(),
        SessionResetChecker(),
    ]


# ---------------------------------------------------------------------------
# Wave-level checkers: invariants over the whole clone ensemble
# ---------------------------------------------------------------------------
#
# The per-execution checkers above judge one exploratory input at one
# clone.  Fault *workloads* (repro.core.workload) instead perturb a whole
# federation — cut links, flap prefixes, reset sessions mid-convergence —
# and the question becomes system-wide: did the ensemble reconverge, is
# anyone holding a route its neighbor no longer advertises, did a prefix
# that is still originated vanish somewhere?  These checkers receive a
# :class:`WaveContext` (the post-wave clone ensemble plus the wave's
# stats and the pre-wave baseline) and return :class:`Finding` objects
# attributed to a node and to the checker by name.


@dataclass
class WaveContext:
    """Everything a wave-level checker may inspect after a workload wave.

    ``stats`` is duck-typed (``.converged`` / ``.sim_seconds``) rather
    than the concrete ``FabricStats`` so this module stays importable
    from :mod:`repro.core.federation` without a cycle.  ``baseline``
    maps node -> prefix -> origin AS as captured from each clone's
    Loc-RIB *before* the wave ran.
    """

    clones: Dict[str, BgpRouter]
    stats: object
    baseline: Dict[str, Dict[Prefix, int]] = field(default_factory=dict)
    graph: Optional[object] = None
    deadline: float = 5.0
    failed_links: set = field(default_factory=set)
    workload: str = ""


class WaveChecker:
    """Base class for ensemble-wide invariant checkers."""

    name = "wave-base"
    description = ""

    def check(self, ctx: WaveContext) -> List[Finding]:
        raise NotImplementedError


class ConvergenceDeadlineChecker(WaveChecker):
    """The federation must quiesce, and do so before the deadline.

    Fires when the wave was cut off by its hop/event budget (messages
    still in flight) or when quiescence arrived later than the plan's
    ``deadline`` of simulated seconds — the churn analogue of a routing
    system that technically converges but only after the outage window
    has already done its damage.
    """

    name = "convergence-deadline"
    description = "federation quiesces within the plan's simulated deadline"

    def check(self, ctx: WaveContext) -> List[Finding]:
        findings: List[Finding] = []
        converged = bool(getattr(ctx.stats, "converged", True))
        sim_seconds = float(getattr(ctx.stats, "sim_seconds", 0.0))
        if not converged:
            findings.append(
                Finding(
                    kind=FindingKind.CONVERGENCE_TIMEOUT,
                    severity=Severity.CRITICAL,
                    summary=(
                        f"wave cut off with messages still in flight after "
                        f"{sim_seconds:.3f}s simulated (hop/event budget)"
                    ),
                    checker=self.name,
                )
            )
        elif sim_seconds > ctx.deadline:
            findings.append(
                Finding(
                    kind=FindingKind.CONVERGENCE_TIMEOUT,
                    severity=Severity.WARNING,
                    summary=(
                        f"federation converged in {sim_seconds:.3f}s simulated, "
                        f"past the {ctx.deadline:.3f}s deadline"
                    ),
                    checker=self.name,
                )
            )
        return findings


class NoStuckRoutesChecker(WaveChecker):
    """No clone may hold a route its in-federation neighbor has dropped.

    Two ways a route gets stuck: the session it was learned over is down
    (teardown should have flushed it), or the neighboring clone no
    longer carries the prefix at all (its withdrawal never arrived —
    the signature of a silently failed link).  Routes learned from peers
    outside the federation (exploration stand-ins) are not judged; we
    cannot see their tables.
    """

    name = "no-stuck-routes"
    description = "no clone holds a route its neighbor has withdrawn"

    def check(self, ctx: WaveContext) -> List[Finding]:
        findings: List[Finding] = []
        for node_id in sorted(ctx.clones):
            clone = ctx.clones[node_id]
            for peer_id in clone.adj_rib_in.peers():
                session = clone.sessions.get(peer_id)
                session_down = session is not None and not session.established
                neighbor = ctx.clones.get(peer_id)
                for prefix in clone.adj_rib_in.peer_prefixes(peer_id):
                    if session_down:
                        findings.append(
                            Finding(
                                kind=FindingKind.STUCK_ROUTE,
                                severity=Severity.CRITICAL,
                                summary=(
                                    f"route survives its session: {prefix} "
                                    f"learned from {peer_id!r} whose session "
                                    f"is down"
                                ),
                                prefix=prefix,
                                peer=peer_id,
                                node=node_id,
                                checker=self.name,
                            )
                        )
                        continue
                    if neighbor is None:
                        continue  # out-of-federation peer: unjudgeable
                    if (
                        neighbor.loc_rib.get(prefix) is None
                        and prefix not in neighbor.static_routes
                    ):
                        findings.append(
                            Finding(
                                kind=FindingKind.STUCK_ROUTE,
                                severity=Severity.CRITICAL,
                                summary=(
                                    f"stale route: {prefix} still held from "
                                    f"{peer_id!r}, but that node no longer "
                                    f"carries the prefix (withdrawal lost)"
                                ),
                                prefix=prefix,
                                peer=peer_id,
                                node=node_id,
                                checker=self.name,
                            )
                        )
        return findings


class NoBlackholeChecker(WaveChecker):
    """A prefix that is still originated must not vanish from a table.

    For every baseline (node, prefix) pair: if the prefix's origin clone
    still originates it (it sits in that clone's static routes) but the
    node's post-wave Loc-RIB has no route, traffic the node attracts for
    the prefix is blackholed.  Prefixes whose origination was genuinely
    withdrawn during the wave are exempt — losing those is convergence,
    not blackholing.
    """

    name = "no-blackhole"
    description = "still-originated prefixes never vanish from a Loc-RIB"

    def check(self, ctx: WaveContext) -> List[Finding]:
        findings: List[Finding] = []
        # Map origin ASN -> clone once; baselines store concrete ASNs.
        by_asn: Dict[int, BgpRouter] = {}
        names_by_asn: Dict[int, str] = {}
        for node_id in sorted(ctx.clones):
            clone = ctx.clones[node_id]
            asn = as_concrete_int(clone.config.asn)
            by_asn.setdefault(asn, clone)
            names_by_asn.setdefault(asn, node_id)
        for node_id in sorted(ctx.baseline):
            clone = ctx.clones.get(node_id)
            if clone is None:
                continue
            for prefix, origin_asn in ctx.baseline[node_id].items():
                if clone.loc_rib.get(prefix) is not None:
                    continue
                origin_clone = by_asn.get(origin_asn)
                if origin_clone is None or prefix not in origin_clone.static_routes:
                    continue  # origination withdrawn or origin unknown
                if prefix in clone.static_routes:
                    continue  # the node itself originates it; not blackholed
                findings.append(
                    Finding(
                        kind=FindingKind.BLACKHOLE,
                        severity=Severity.CRITICAL,
                        summary=(
                            f"blackhole: {prefix} vanished from this node's "
                            f"table while {names_by_asn[origin_asn]!r} "
                            f"(AS{origin_asn}) still originates it"
                        ),
                        prefix=prefix,
                        node=node_id,
                        expected_origin=origin_asn,
                        checker=self.name,
                    )
                )
        return findings


class OriginAgreementChecker(WaveChecker):
    """No two domains may disagree about a prefix's origin AS.

    The wave-level edition of the federation origin check: pairwise
    privacy-preserving digest comparison (:mod:`repro.core.privacy`)
    over the post-wave ensemble.  A conflict after a workload wave means
    the injected pathology (route leak, MOAS origination, stale policy)
    left the federation in standing disagreement.
    """

    name = "origin-agreement"
    description = "no standing cross-domain origin disagreement"

    def __init__(self, salt: bytes = b"dice-wave-checker"):
        self.salt = salt

    def check(self, ctx: WaveContext) -> List[Finding]:
        from repro.core.privacy import OriginDigest, conflict_pairs

        findings: List[Finding] = []
        digests = {
            node_id: OriginDigest.from_router(clone, self.salt)
            for node_id, clone in ctx.clones.items()
        }
        for (a, b), conflicts in conflict_pairs(digests).items():
            for conflict in conflicts:
                findings.append(
                    Finding(
                        kind=FindingKind.ORIGIN_CONFLICT,
                        severity=Severity.CRITICAL,
                        summary=(
                            f"domains {a!r} and {b!r} disagree on the "
                            f"origin of a prefix "
                            f"(digest {conflict.hex()[:12]}...)"
                        ),
                        peer=b,
                        node=a,
                        checker=self.name,
                    )
                )
        return findings


#: Registry of wave-level checkers by name — the ``--checker`` axis of
#: the scenario matrix.  Entries are factories so each run gets a fresh
#: instance.
WAVE_CHECKERS: Dict[str, Callable[[], WaveChecker]] = {
    ConvergenceDeadlineChecker.name: ConvergenceDeadlineChecker,
    NoStuckRoutesChecker.name: NoStuckRoutesChecker,
    NoBlackholeChecker.name: NoBlackholeChecker,
    OriginAgreementChecker.name: OriginAgreementChecker,
}


def get_wave_checker(name: str) -> WaveChecker:
    """Instantiate the wave checker registered under ``name``."""
    try:
        factory = WAVE_CHECKERS[name]
    except KeyError:
        known = ", ".join(sorted(WAVE_CHECKERS))
        raise KeyError(f"unknown wave checker {name!r} (known: {known})") from None
    return factory()


def list_wave_checkers() -> List[Tuple[str, str]]:
    """(name, description) rows for every registered wave checker."""
    return [
        (name, WAVE_CHECKERS[name]().description)
        for name in sorted(WAVE_CHECKERS)
    ]
