"""Service-mode tests: elastic pool, churn-driven epochs, tenancy, harvest.

The acceptance shape mirrors the resilience suite's: every elastic
transition (grow, graceful shrink, chaos kill racing a shrink-drain)
must leave the finding set byte-identical to a serial run of the same
seeds, and every tenant of a shared pool must see exactly the findings
it would see running the pool alone.
"""

import time

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.messages import UpdateMessage
from repro.bgp.nlri import NlriEntry
from repro.concolic.engine import ExplorationBudget
from repro.core import get_scenario
from repro.parallel import StreamingExplorer
from repro.parallel.cache import TenantCacheView
from repro.parallel.chaos import get_chaos_plan
from repro.parallel.stream import (
    PoolAutoscaler,
    TENANT_SEP,
    WorkerSupervisor,
)
from repro.util.errors import ExplorationError
from repro.util.ip import Prefix, ip_to_int

P = Prefix.parse

BUDGET = ExplorationBudget(max_executions=10)


def seed_update(prefix="10.10.1.0/24", asn=65020):
    return UpdateMessage(
        attributes=PathAttributes(
            as_path=AsPath.sequence([asn]), next_hop=ip_to_int("10.0.0.2")
        ),
        nlri=[NlriEntry.from_prefix(P(prefix))],
    )


def finding_keys(report):
    return frozenset(f.dedup_key() for f in report.findings())


def run_stream(router, seeds, workers, force_serial, **kwargs):
    stream = StreamingExplorer(
        workers=workers,
        force_serial=force_serial,
        budget=BUDGET,
        queue_capacity=max(16, len(seeds)),
        **kwargs,
    )
    stream.start(router)
    for peer, observed in seeds:
        stream.submit(peer, observed)
    return stream.close()


class TestPoolAutoscaler:
    """The resize policy as a pure function of the observation series."""

    def test_validation(self):
        with pytest.raises(ValueError, match="min_workers"):
            PoolAutoscaler(min_workers=0, max_workers=2)
        with pytest.raises(ValueError, match="min_workers <= max_workers"):
            PoolAutoscaler(min_workers=3, max_workers=2)
        with pytest.raises(ValueError, match="interval"):
            PoolAutoscaler(max_workers=2, interval=0.0)
        with pytest.raises(ValueError, match="shrink_threshold"):
            PoolAutoscaler(max_workers=2, grow_threshold=0.5,
                           shrink_threshold=0.5)
        with pytest.raises(ValueError, match="hysteresis"):
            PoolAutoscaler(max_workers=2, hysteresis=0)
        with pytest.raises(ValueError, match="decay"):
            PoolAutoscaler(max_workers=2, decay=0.0)

    def test_first_observation_only_baselines(self):
        scaler = PoolAutoscaler(min_workers=1, max_workers=4)
        assert scaler.next_tick() is None
        assert scaler.observe(0.0, pending=100, inflight=2,
                              completed=0, alive=1) is None
        assert scaler.next_tick() is not None

    def test_hysteresis_gates_growth(self):
        scaler = PoolAutoscaler(min_workers=1, max_workers=4, interval=0.05,
                                hysteresis=2)
        scaler.observe(0.0, pending=50, inflight=2, completed=0, alive=1)
        # One high tick is not enough; the second consecutive one grows.
        assert scaler.observe(1.0, pending=50, inflight=2,
                              completed=1, alive=1) is None
        assert scaler.observe(2.0, pending=50, inflight=2,
                              completed=2, alive=1) == "grow"
        # The decision resets the streak: the next tick starts over.
        assert scaler.observe(3.0, pending=50, inflight=2,
                              completed=3, alive=2) is None

    def test_bounds_respected(self):
        scaler = PoolAutoscaler(min_workers=1, max_workers=2, interval=0.05)
        scaler.observe(0.0, pending=50, inflight=2, completed=0, alive=2)
        for tick in range(1, 6):
            # Saturated load, but the pool is already at max.
            assert scaler.observe(float(tick), pending=50, inflight=2,
                                  completed=tick, alive=2) is None
        scaler = PoolAutoscaler(min_workers=1, max_workers=2, interval=0.05)
        scaler.observe(0.0, pending=0, inflight=0, completed=0, alive=1)
        for tick in range(1, 6):
            # Fully drained, but the pool is already at min.
            assert scaler.observe(float(tick), pending=0, inflight=0,
                                  completed=0, alive=1) is None

    def test_shrink_when_drained(self):
        scaler = PoolAutoscaler(min_workers=1, max_workers=4, interval=0.05,
                                hysteresis=2)
        scaler.observe(0.0, pending=0, inflight=0, completed=0, alive=3)
        assert scaler.observe(1.0, pending=0, inflight=0,
                              completed=0, alive=3) is None
        assert scaler.observe(2.0, pending=0, inflight=0,
                              completed=0, alive=3) == "shrink"

    def test_tick_jitter_is_deterministic_per_seed(self):
        a = PoolAutoscaler(min_workers=1, max_workers=4, seed=7)
        b = PoolAutoscaler(min_workers=1, max_workers=4, seed=7)
        ticks_a, ticks_b = [], []
        for t, (scaler, ticks) in enumerate(
            [(a, ticks_a), (b, ticks_b)] * 4
        ):
            scaler.observe(float(t // 2), pending=10, inflight=1,
                           completed=t, alive=1)
            ticks.append(scaler.next_tick())
        assert ticks_a == ticks_b

    def test_drain_rate_tracks_completions(self):
        scaler = PoolAutoscaler(min_workers=1, max_workers=4, interval=0.05,
                                decay=1.0)
        scaler.observe(0.0, pending=5, inflight=1, completed=0, alive=1)
        scaler.observe(1.0, pending=5, inflight=1, completed=8, alive=1)
        assert scaler.drain_rate == pytest.approx(8.0)


class TestSupervisorSlotReset:
    """S2: a slot names a position, not a worker — retire clears history."""

    def test_reset_restores_the_full_restart_budget(self):
        supervisor = WorkerSupervisor(max_restarts=1, backoff=0.01)
        assert supervisor.note_death(0, now=0.0)
        supervisor.respawned(0)
        # Budget burned: the next death exhausts the slot.
        assert not supervisor.note_death(0, now=1.0)
        assert 0 in supervisor.exhausted
        # Retire/re-create boundary: the replacement is a new logical
        # worker and must not inherit its predecessor's attempts.
        supervisor.reset_slot(0)
        assert 0 not in supervisor.exhausted
        assert supervisor.note_death(0, now=2.0)
        assert supervisor.pending

    def test_reset_cancels_a_pending_respawn(self):
        supervisor = WorkerSupervisor(max_restarts=3, backoff=0.05)
        supervisor.note_death(2, now=0.0)
        assert supervisor.pending
        supervisor.reset_slot(2)
        assert not supervisor.pending
        assert supervisor.next_due() is None


class _FakeCache:
    def __init__(self):
        self.data = {}
        self.semantic = {}
        self.hits = 41

    def get(self, key):
        return self.data.get(key)

    def put(self, key, entry):
        self.data[key] = entry

    def get_semantic(self, key):
        return self.semantic.get(key, [])

    def put_semantic(self, key, domains, entry):
        self.semantic.setdefault(key, []).append((domains, entry))


class TestTenantCacheView:
    def test_tenants_see_disjoint_slices(self):
        cache = _FakeCache()
        alpha = TenantCacheView(cache, "alpha")
        beta = TenantCacheView(cache, "beta")
        alpha.put(b"k", "alpha-entry")
        assert alpha.get(b"k") == "alpha-entry"
        assert beta.get(b"k") is None
        beta.put(b"k", "beta-entry")
        assert alpha.get(b"k") == "alpha-entry"
        assert beta.get(b"k") == "beta-entry"
        # Both live in the one underlying store, under scoped keys.
        assert len(cache.data) == 2

    def test_scope_is_a_suffix_to_preserve_shard_balance(self):
        cache = _FakeCache()
        view = TenantCacheView(cache, "alpha")
        view.put(b"\x07key", "entry")
        (stored,) = cache.data
        assert stored.startswith(b"\x07key")
        assert len(stored) > len(b"\x07key")

    def test_unkeyed_attributes_pass_through(self):
        cache = _FakeCache()
        view = TenantCacheView(cache, "alpha")
        assert view.hits == 41
        assert view.tenant == "alpha"

    def test_dunder_lookups_never_delegate(self):
        # Protocol probes (__fspath__, __getstate__, ...) must resolve on
        # the view itself, never the wrapped cache — a delegate that
        # happens to define one would silently hijack the protocol.
        cache = _FakeCache()
        cache.__fspath__ = lambda: "bogus"
        view = TenantCacheView(cache, "alpha")
        with pytest.raises(AttributeError):
            view.__fspath__  # noqa: B018

    def test_empty_tenant_rejected(self):
        with pytest.raises(ValueError, match="tenant"):
            TenantCacheView(_FakeCache(), "")


class TestElasticPool:
    """Grow/shrink against a live process pool, with findings parity."""

    def _elastic(self, seeds, **kwargs):
        stream = StreamingExplorer(
            workers=2,
            budget=BUDGET,
            queue_capacity=max(16, len(seeds)),
            autoscale=True,
            restart_backoff=0.01,
            **kwargs,
        )
        return stream

    def _drain_until(self, stream, predicate, timeout=20.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            stream.poll()
            if predicate():
                return True
            time.sleep(0.01)
        return False

    def test_grow_then_shrink_roundtrip(self, erroneous_scenario):
        seeds = erroneous_scenario.dice.batch_seeds(all_seeds=True)[:4]
        baseline = run_stream(erroneous_scenario.provider, seeds, 1, True)

        stream = self._elastic(seeds)
        stream.start(erroneous_scenario.provider)
        if stream.report.fallback_reason:
            stream.close()
            pytest.skip("process pool unavailable on this host")
        # Autoscaled pools start at min_workers, not workers.
        assert stream.report.pool_size == 1
        grown = stream._grow_one(time.monotonic())
        assert grown
        assert stream.report.pool_size == 2
        assert stream.report.pool_high_water == 2
        assert any("grow" in event for event in stream.report.resize_events)

        for peer, observed in seeds:
            stream.submit(peer, observed)
        stream.drain()

        # Graceful shrink: STOP queues behind the FIFO, the worker exits,
        # the reaper prunes the slot.
        assert stream._shrink_one(time.monotonic())
        assert self._drain_until(
            stream, lambda: stream.report.workers_retired == 1
        ), stream.report.resize_events
        assert stream.report.pool_size == 1
        report = stream.close()
        assert not report.errors, report.errors
        assert report.jobs_completed == len(seeds)
        assert finding_keys(report) == finding_keys(baseline)
        kinds = [event.split(" ", 1)[1].split("(")[0]
                 for event in report.resize_events]
        assert kinds == ["grow", "shrink", "retired"]
        assert report.worker_seconds > 0.0

    def test_chaos_kill_during_grown_pool(self, erroneous_scenario):
        """kill-elastic-worker: the freshest (highest) slot dies mid-run."""
        seeds = erroneous_scenario.dice.batch_seeds(all_seeds=True)[:4]
        baseline = run_stream(erroneous_scenario.provider, seeds, 1, True)
        stream = self._elastic(
            seeds,
            min_workers=2,  # both slots up: the plan targets the highest
            chaos=get_chaos_plan("kill-elastic-worker"),
        )
        stream.start(erroneous_scenario.provider)
        if stream.report.fallback_reason:
            stream.close()
            pytest.skip("process pool unavailable on this host")
        for peer, observed in seeds:
            stream.submit(peer, observed)
        report = stream.close()
        assert not report.errors, report.errors
        assert report.chaos_events
        assert report.jobs_completed == len(seeds)
        assert report.workers_restarted >= 1 or report.jobs_recovered >= 0
        assert finding_keys(report) == finding_keys(baseline)

    def test_kill_racing_a_shrink_drain_salvages(self, erroneous_scenario):
        """A retiring worker killed before its STOP drains: salvage, not
        respawn — the shrink decision stands and no job is lost."""
        seeds = erroneous_scenario.dice.batch_seeds(all_seeds=True)[:4]
        baseline = run_stream(erroneous_scenario.provider, seeds, 1, True)
        stream = self._elastic(seeds)
        stream.start(erroneous_scenario.provider)
        if stream.report.fallback_reason:
            stream.close()
            pytest.skip("process pool unavailable on this host")
        # Grow above min so a shrink is legal, then load both workers.
        assert stream._grow_one(time.monotonic())
        for peer, observed in seeds:
            stream.submit(peer, observed)
        # Retire the highest slot while its jobs are still queued, then
        # kill it before the STOP message can drain.
        victim = max(
            (w for w in stream._workers if getattr(w, "process", None)),
            key=lambda w: w.slot,
        )
        assert stream._shrink_one(time.monotonic())
        assert victim.retiring
        victim.process.kill()
        report = stream.close()
        assert not report.errors, report.errors
        assert report.workers_retired == 1
        # Retired is retired: the supervisor never respawned the slot.
        assert report.workers_restarted == 0
        assert report.jobs_completed == len(seeds)
        assert finding_keys(report) == finding_keys(baseline)


class TestChurnEpochs:
    def test_quiet_boundary_skips_the_ship(self, mutable_scenario):
        scenario = mutable_scenario
        seeds = scenario.dice.batch_seeds(all_seeds=True)[:2]
        stream = StreamingExplorer(workers=1, force_serial=True, budget=BUDGET)
        stream.start(scenario.provider)
        for peer, observed in seeds:
            stream.submit(peer, observed)
        stream.drain()
        info = stream.advance_epoch(churn_threshold=1)
        assert info["skipped"] is True
        assert info["epoch"] == 0
        assert info["dirty_segments"] == 0
        assert info["segments_shipped"] == 0
        report = stream.close()
        assert report.epochs == 0
        assert report.epochs_skipped_quiet == 1

    def test_churn_past_threshold_ships(self, mutable_scenario):
        scenario = mutable_scenario
        stream = StreamingExplorer(workers=1, force_serial=True, budget=BUDGET)
        stream.start(scenario.provider)
        scenario.provider.handle_update("customer", seed_update("99.1.0.0/16"))
        info = stream.advance_epoch(churn_threshold=1)
        assert info["skipped"] is False
        assert info["epoch"] == 1
        assert info["dirty_segments"] >= 1
        report = stream.close()
        assert report.epochs == 1
        assert report.epochs_skipped_quiet == 0

    def test_churn_accumulates_across_skipped_boundaries(
        self, mutable_scenario
    ):
        scenario = mutable_scenario
        stream = StreamingExplorer(workers=1, force_serial=True, budget=BUDGET)
        stream.start(scenario.provider)
        scenario.provider.handle_update("customer", seed_update("97.1.0.0/16"))
        quiet = stream.advance_epoch(churn_threshold=10_000)
        assert quiet["skipped"] is True
        first_dirty = quiet["dirty_segments"]
        # The base image did not move, so the next boundary sees the
        # earlier churn *plus* the new mutation.
        scenario.provider.handle_update("customer", seed_update("98.1.0.0/16"))
        shipped = stream.advance_epoch(churn_threshold=1)
        assert shipped["skipped"] is False
        assert shipped["dirty_segments"] >= first_dirty
        assert shipped["epoch"] == 1
        stream.close()

    def test_churn_epoch_parity_serial_vs_autoscaled(self):
        """Serial inline and autoscaled process runs of the same churned
        stream produce the same finding set (S3 parity)."""

        def run(**kwargs):
            scenario = get_scenario("fig2").build(
                filter_mode="erroneous", prefix_count=200, update_count=20
            )
            scenario.converge()
            seeds = scenario.dice.batch_seeds(all_seeds=True)[:2]
            stream = StreamingExplorer(
                budget=BUDGET, queue_capacity=16, **kwargs
            )
            stream.start(scenario.provider)
            for peer, observed in seeds:
                stream.submit(peer, observed)
            stream.drain()
            scenario.provider.handle_update(
                "customer", seed_update("99.5.0.0/16")
            )
            stream.advance_epoch(churn_threshold=1)
            stream.submit("customer", seed_update("99.5.4.0/24"))
            report = stream.close()
            assert not report.errors, report.errors
            return report

        serial = run(workers=1, force_serial=True)
        elastic = run(
            workers=2, autoscale=True, autoscale_interval=0.005,
            restart_backoff=0.01,
        )
        assert serial.epochs == elastic.epochs == 1
        assert finding_keys(serial) == finding_keys(elastic)
        assert serial.jobs_completed == elastic.jobs_completed


class TestTenancy:
    @staticmethod
    def _tenant_seeds(scenario):
        alpha = scenario.dice.batch_seeds(all_seeds=True)[:2]
        beta = [
            ("provider", seed_update("44.1.0.0/16", asn=65010)),
            ("provider", seed_update("44.2.0.0/16", asn=65010)),
        ]
        return alpha, beta

    def _run_shared(self, scenario, alpha, beta, **kwargs):
        stream = StreamingExplorer(
            budget=BUDGET, queue_capacity=16, **kwargs
        )
        stream.start_nodes({"prov": scenario.provider}, tenant="alpha")
        stream.add_tenant("beta", {"cust": scenario.customer})
        # Interleave the tenants so fair dispatch has contention.
        for (peer_a, seed_a), (peer_b, seed_b) in zip(alpha, beta):
            stream.submit(peer_a, seed_a, node="prov", tenant="alpha")
            stream.submit(peer_b, seed_b, node="cust", tenant="beta")
        return stream

    @pytest.mark.parametrize("mode", ["inline", "process"])
    def test_two_tenants_match_their_solo_runs(self, erroneous_scenario, mode):
        alpha, beta = self._tenant_seeds(erroneous_scenario)
        solo_alpha = run_stream(erroneous_scenario.provider, alpha, 1, True)
        solo_beta = run_stream(erroneous_scenario.customer, beta, 1, True)

        kwargs = (
            {"workers": 1, "force_serial": True} if mode == "inline"
            else {"workers": 2, "autoscale": True,
                  "autoscale_interval": 0.005, "restart_backoff": 0.01}
        )
        stream = self._run_shared(erroneous_scenario, alpha, beta, **kwargs)
        report = stream.close()
        assert not report.errors, report.errors
        assert stream.tenants == ["alpha", "beta"]
        report_a = stream.tenant_report("alpha")
        report_b = stream.tenant_report("beta")
        # Isolation: each tenant harvested exactly its solo finding set.
        assert finding_keys(report_a) == finding_keys(solo_alpha)
        assert finding_keys(report_b) == finding_keys(solo_beta)
        assert report_a.jobs_completed == len(alpha)
        assert report_b.jobs_completed == len(beta)
        # Tenant reports carry plain node keys, like a solo run's.
        assert {key[0] for key in report_a.indices} == {"prov"}
        assert {key[0] for key in report_b.indices} == {"cust"}
        # The pool-wide report accounts for everyone.
        assert report.jobs_completed == len(alpha) + len(beta)
        assert report.jobs_by_tenant == {
            "alpha": len(alpha), "beta": len(beta),
        }

    def test_tenant_yields_and_scoped_federation_yields(
        self, erroneous_scenario
    ):
        alpha, beta = self._tenant_seeds(erroneous_scenario)
        stream = self._run_shared(
            erroneous_scenario, alpha, beta, workers=1, force_serial=True
        )
        stream.drain()
        assert set(stream.tenant_yields()) <= {"alpha", "beta"}
        assert set(stream.federation_yields(tenant="alpha")) <= {"prov"}
        assert set(stream.federation_yields(tenant="beta")) <= {"cust"}
        stream.close()

    def test_tenant_validation(self, erroneous_scenario):
        stream = StreamingExplorer(workers=1, force_serial=True, budget=BUDGET)
        with pytest.raises(ExplorationError):
            stream.add_tenant("alpha", {"prov": erroneous_scenario.provider})
        stream.start_nodes(
            {"prov": erroneous_scenario.provider}, tenant="alpha"
        )
        with pytest.raises(ExplorationError):
            stream.add_tenant("", {"cust": erroneous_scenario.customer})
        with pytest.raises(ExplorationError):
            stream.add_tenant(
                f"bad{TENANT_SEP}name",
                {"cust": erroneous_scenario.customer},
            )
        with pytest.raises(ExplorationError):
            stream.add_tenant(
                "alpha", {"cust": erroneous_scenario.customer}
            )
        with pytest.raises(ExplorationError):
            stream.tenant_report("nobody")
        stream.close()


class TestHarvest:
    def test_harvest_returns_only_new_reports(self, erroneous_scenario):
        seeds = erroneous_scenario.dice.batch_seeds(all_seeds=True)[:3]
        stream = StreamingExplorer(workers=1, force_serial=True, budget=BUDGET)
        stream.start(erroneous_scenario.provider)
        for peer, observed in seeds[:2]:
            stream.submit(peer, observed)
        first = stream.harvest()
        assert len(first) == 2
        stream.submit(*seeds[2])
        second = stream.harvest()
        assert len(second) == 1
        # Idle harvest returns immediately with nothing.
        assert stream.harvest(timeout=0.05) == []
        report = stream.close()
        assert report.jobs_completed == 3

    def test_harvest_blocks_on_results_not_a_sleep(self, erroneous_scenario):
        seeds = erroneous_scenario.dice.batch_seeds(all_seeds=True)[:2]
        stream = StreamingExplorer(
            workers=1, budget=BUDGET, queue_capacity=16
        )
        stream.start(erroneous_scenario.provider)
        if stream.report.fallback_reason:
            stream.close()
            pytest.skip("process pool unavailable on this host")
        for peer, observed in seeds:
            stream.submit(peer, observed)
        harvested = []
        deadline = time.monotonic() + 30.0
        while len(harvested) < len(seeds) and time.monotonic() < deadline:
            harvested.extend(stream.harvest(timeout=5.0))
        report = stream.close()
        assert len(harvested) == len(seeds)
        assert report.harvest_latency_count == len(seeds)
        assert report.harvest_latency_max >= report.harvest_latency_mean > 0.0

    def test_summary_carries_the_service_counters(self, erroneous_scenario):
        seeds = erroneous_scenario.dice.batch_seeds(all_seeds=True)[:1]
        report = run_stream(erroneous_scenario.provider, seeds, 1, True)
        summary = report.summary()
        for key in (
            "pool_size", "pool_high_water", "pool_low_water",
            "resize_events", "workers_retired", "worker_seconds",
            "epochs_skipped_quiet", "harvest_latency_mean",
            "harvest_latency_max", "jobs_by_tenant",
        ):
            assert key in summary, key
