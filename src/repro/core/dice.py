"""The DiCE facade: online testing attached to a live router.

"DiCE runs in the Provider's router" (section 4): a
:class:`DiceEnabledRouter` is a stock :class:`BgpRouter` with the
integration hook the paper added to BIRD — every UPDATE the live node
processes is also *observed* by DiCE as a seed input for exploration.

:class:`DiCE` owns the observed-input buffer, the explorer, and the
accumulated findings, and exposes :meth:`run_round` — one checkpoint +
exploration session — which the online scheduler fires periodically
while the deployed system keeps running.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.bgp.messages import UpdateMessage
from repro.bgp.router import BgpRouter
from repro.concolic.engine import ConcolicEngine, ExplorationBudget
from repro.concolic.strategies import SearchStrategy
from repro.core.checkers import FaultChecker, default_checkers
from repro.core.explorer import DiceExplorer
from repro.core.inputs import InputModel, model_for
from repro.core.report import Finding, SessionReport
from repro.util.ip import Prefix

ObserverHook = Callable[[str, UpdateMessage], None]


class DiceEnabledRouter(BgpRouter):
    """A BGP router with the DiCE observation hook compiled in.

    The hook is runtime-only state: it is intentionally *not* part of
    ``checkpoint_state()``, so clones restored from checkpoints never
    re-enter DiCE (the class attribute default applies to them).
    """

    observer: Optional[ObserverHook] = None

    def handle_update(self, peer_id: str, update: UpdateMessage) -> None:
        if self.observer is not None:
            self.observer(peer_id, update)
        super().handle_update(peer_id, update)


class DiCE:
    """Continuous, automatic exploration of a live node's behavior."""

    def __init__(
        self,
        router: BgpRouter,
        checkers: Optional[Sequence[FaultChecker]] = None,
        policy: str = "selective",
        model_kwargs: Optional[dict] = None,
        engine: Optional[ConcolicEngine] = None,
        observed_capacity: int = 64,
        anycast_whitelist: Optional[List[Prefix]] = None,
    ):
        self.router = router
        if checkers is None:
            checkers = default_checkers(anycast_whitelist)
        self.explorer = DiceExplorer(engine=engine, checkers=checkers)
        self.policy = policy
        self.model_kwargs = dict(model_kwargs or {})
        # Per-peer ring buffers: a chatty peer (a full-table dump) must not
        # evict the seeds observed from a quiet one.
        self._observed_capacity = observed_capacity
        self._observed: Dict[str, Deque[UpdateMessage]] = {}
        self.rounds: List[SessionReport] = []
        self.exploration_wall_seconds = 0.0
        if isinstance(router, DiceEnabledRouter):
            router.observer = self.observe

    # -- input observation ---------------------------------------------------

    def observe(self, peer_id: str, update: UpdateMessage) -> None:
        """Record a live input as a future exploration seed.

        Only announcements are useful seeds (the marking policies derive
        symbolic inputs from NLRI), matching the paper's focus on UPDATE
        messages as "the main drivers for state change".
        """
        if update.nlri:
            buffer = self._observed.setdefault(
                peer_id, deque(maxlen=self._observed_capacity)
            )
            buffer.append(update)

    @property
    def observed(self) -> List[Tuple[str, UpdateMessage]]:
        """All buffered (peer, update) seeds, oldest first per peer."""
        return [
            (peer_id, update)
            for peer_id, buffer in self._observed.items()
            for update in buffer
        ]

    def clear_observed(self) -> None:
        self._observed.clear()

    def pick_seed(
        self, peer: Optional[str] = None
    ) -> Optional[Tuple[str, UpdateMessage]]:
        """The most recent observed input, optionally from a given peer."""
        if peer is not None:
            buffer = self._observed.get(peer)
            if not buffer:
                return None
            return (peer, buffer[-1])
        for peer_id in reversed(list(self._observed)):
            buffer = self._observed[peer_id]
            if buffer:
                return (peer_id, buffer[-1])
        return None

    # -- exploration rounds -----------------------------------------------------

    def run_round(
        self,
        peer: Optional[str] = None,
        budget: Optional[ExplorationBudget] = None,
        strategy: Optional[SearchStrategy] = None,
        model: Optional[InputModel] = None,
    ) -> Optional[SessionReport]:
        """One checkpoint + exploration session from the latest seed.

        Returns None when no input has been observed yet (nothing to
        explore).  Wall-clock time spent is accumulated for the overhead
        accounting in the CPU benchmark.
        """
        seed = self.pick_seed(peer)
        if seed is None:
            return None
        peer_id, observed = seed
        if model is None:
            model = model_for(observed, self.policy, **self.model_kwargs)
        started = time.perf_counter()
        report = self.explorer.explore_update(
            self.router, peer_id, observed, model=model, budget=budget, strategy=strategy
        )
        self.exploration_wall_seconds += time.perf_counter() - started
        self.rounds.append(report)
        return report

    # -- aggregation ----------------------------------------------------------------

    def findings(self) -> List[Finding]:
        """Unique findings across all rounds so far."""
        seen: Dict[tuple, Finding] = {}
        for round_report in self.rounds:
            for finding in round_report.findings:
                seen.setdefault(finding.dedup_key(), finding)
        return list(seen.values())

    def leaked_prefixes(self) -> List[Prefix]:
        """All prefix ranges any round found leakable — the operator output."""
        prefixes = set()
        for round_report in self.rounds:
            prefixes.update(round_report.leaked_prefixes())
        return sorted(prefixes)

    def summary(self) -> Dict[str, object]:
        return {
            "rounds": len(self.rounds),
            "observed_inputs": len(self.observed),
            "total_executions": sum(r.exploration.executions for r in self.rounds),
            "total_findings": len(self.findings()),
            "leaked_prefixes": [str(p) for p in self.leaked_prefixes()],
            "exploration_wall_seconds": round(self.exploration_wall_seconds, 4),
        }
