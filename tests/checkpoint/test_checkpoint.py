"""Tests for fork-style checkpoints and the checkpoint manager."""

import pickle

import pytest

from repro.checkpoint.manager import CheckpointManager
from repro.checkpoint.snapshot import Checkpoint, default_segments, snapshot_pages
from repro.concolic.env import Environment, ExplorationEnvironment
from repro.util.errors import CheckpointError
from repro.util.pages import PAGE_SIZE


class ToyNode:
    """A minimal Checkpointable node with two state segments."""

    def __init__(self, counter=0, table=None, env=None):
        self.counter = counter
        self.table = dict(table or {})
        self.env = env
        self.now = 0.0

    def checkpoint_state(self):
        return {"counter": self.counter, "table": self.table, "now": self.now}

    def snapshot_segments(self):
        return {
            "counter": pickle.dumps(self.counter),
            "table": pickle.dumps(sorted(self.table.items())),
        }

    @classmethod
    def restore_from_state(cls, state, env):
        node = cls(state["counter"], state["table"], env)
        node.now = state["now"]
        return node


class Unpicklable:
    def checkpoint_state(self):
        return lambda: None  # lambdas cannot pickle

    def snapshot_segments(self):
        return {}


class TestCheckpoint:
    def test_capture_restore_roundtrip(self):
        node = ToyNode(counter=7, table={"a": 1})
        checkpoint = Checkpoint.capture(node, "test")
        clone = checkpoint.restore(ExplorationEnvironment())
        assert clone.counter == 7
        assert clone.table == {"a": 1}
        assert clone is not node

    def test_clone_mutations_do_not_touch_parent(self):
        node = ToyNode(counter=1, table={"k": "v"})
        checkpoint = Checkpoint.capture(node, "test")
        clone = checkpoint.restore(ExplorationEnvironment())
        clone.counter = 999
        clone.table["k"] = "changed"
        assert node.counter == 1
        assert node.table["k"] == "v"

    def test_checkpoint_is_point_in_time(self):
        node = ToyNode(counter=1)
        checkpoint = Checkpoint.capture(node, "t")
        node.counter = 2  # parent keeps running after the fork
        clone = checkpoint.restore(ExplorationEnvironment())
        assert clone.counter == 1

    def test_node_time_captured(self):
        node = ToyNode()
        node.now = 42.5
        checkpoint = Checkpoint.capture(node, "t")
        assert checkpoint.node_time == 42.5

    def test_unpicklable_state_rejected(self):
        with pytest.raises(CheckpointError):
            Checkpoint.capture(Unpicklable(), "bad")

    def test_page_count_positive(self):
        checkpoint = Checkpoint.capture(ToyNode(table={i: i for i in range(100)}), "t")
        assert checkpoint.page_count >= 1
        assert checkpoint.size_bytes > 0

    def test_default_segments_helper(self):
        segments = default_segments({"a": 1})
        assert set(segments) == {"state"}
        assert pickle.loads(segments["state"]) == {"a": 1}

    def test_snapshot_pages(self):
        node = ToyNode(table={i: "x" * 50 for i in range(200)})
        pages = snapshot_pages(node)
        assert len(pages) >= 2


class TestCheckpointManager:
    def test_checkpoint_registers_pages(self):
        manager = CheckpointManager()
        node = ToyNode(table={i: i for i in range(50)})
        manager.checkpoint(node, "c1")
        assert "c1" in manager.checkpoints
        assert manager.store.resident_pages > 0

    def test_duplicate_name_rejected(self):
        manager = CheckpointManager()
        node = ToyNode()
        manager.checkpoint(node, "c1")
        with pytest.raises(CheckpointError):
            manager.checkpoint(node, "c1")

    def test_clone_lifecycle(self):
        manager = CheckpointManager()
        node = ToyNode(counter=3)
        checkpoint = manager.checkpoint(node)
        record = manager.clone(checkpoint)
        assert record.node.counter == 3
        assert record.env.is_isolated
        manager.release(record.name)
        assert record.name not in manager.clones

    def test_clone_of_foreign_checkpoint_rejected(self):
        manager = CheckpointManager()
        foreign = Checkpoint.capture(ToyNode(), "foreign")
        with pytest.raises(CheckpointError):
            manager.clone(foreign)

    def test_release_unknown_clone(self):
        with pytest.raises(CheckpointError):
            CheckpointManager().release("ghost")

    def test_refresh_tracks_dirty_pages(self):
        manager = CheckpointManager()
        node = ToyNode(table={i: "data" * 100 for i in range(200)})
        checkpoint = manager.checkpoint(node)
        record = manager.clone(checkpoint)
        # Fresh clone shares everything with the checkpoint.
        assert record.pages.unique_fraction(checkpoint.pages) == pytest.approx(0.0)
        # Dirty a chunk of the clone's table, then re-measure.
        for i in range(50):
            record.node.table[i] = "mutated" * 100
        manager.refresh(record.name)
        assert manager.clones[record.name].pages.unique_fraction(checkpoint.pages) > 0

    def test_memory_report_shape(self):
        manager = CheckpointManager()
        node = ToyNode(table={i: "v" * 64 for i in range(300)})
        checkpoint = manager.checkpoint(node)
        for _ in range(3):
            manager.clone(checkpoint)
        report = manager.memory_report()
        assert report.clone_count == 3
        assert report.live_pages > 0
        assert report.checkpoint_unique_fraction == pytest.approx(0.0)
        assert report.sharing_ratio > 1.0  # clones share pages
        assert set(report.as_dict()) >= {
            "live_pages", "checkpoint_unique_fraction", "clone_growth_mean"
        }

    def test_memory_report_requires_live(self):
        with pytest.raises(CheckpointError):
            CheckpointManager().memory_report()

    def test_release_all_clones(self):
        manager = CheckpointManager()
        checkpoint = manager.checkpoint(ToyNode())
        for _ in range(4):
            manager.clone(checkpoint)
        manager.release_all_clones()
        assert not manager.clones

    def test_clone_pages_measured_lazily(self):
        # Hashing a clone's image is the dominant clone cost; callers
        # that only need the node (streaming clone churn) must not pay it.
        manager = CheckpointManager()
        checkpoint = manager.checkpoint(ToyNode(table={i: "x" * 80 for i in range(100)}))
        record = manager.clone(checkpoint)
        assert not record.pages_measured
        assert record.name not in manager.store.images  # nothing registered yet
        pages = record.pages  # first access measures + registers
        assert record.pages_measured
        assert len(pages) >= 1
        assert record.name in manager.store.images

    def test_unmeasured_clone_releases_cleanly(self):
        manager = CheckpointManager()
        checkpoint = manager.checkpoint(ToyNode())
        record = manager.clone(checkpoint)
        manager.release(record.name)  # never measured: nothing to unregister
        assert record.name not in manager.clones

    def test_memory_report_forces_measurement(self):
        manager = CheckpointManager()
        checkpoint = manager.checkpoint(ToyNode(table={i: i for i in range(50)}))
        records = [manager.clone(checkpoint) for _ in range(2)]
        assert not any(r.pages_measured for r in records)
        report = manager.memory_report()
        assert report.clone_count == 2
        assert all(r.pages_measured for r in records)

    def test_checkpoint_unique_fraction_grows_as_parent_diverges(self):
        manager = CheckpointManager()
        node = ToyNode(table={i: "v" * 64 for i in range(300)})
        manager.checkpoint(node)
        # Parent keeps processing after the fork: its image diverges.
        for i in range(150):
            node.table[i] = "post-fork" * 32
        manager.register_live(node)
        report = manager.memory_report()
        assert 0.0 < report.checkpoint_unique_fraction <= 1.0
