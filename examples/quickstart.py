#!/usr/bin/env python3
"""Quickstart: DiCE finds a route leak in a misconfigured provider.

Builds the paper's Figure 2 testbed (Customer - Provider - Internet),
loads a synthetic RouteViews table, runs one DiCE exploration round over
the provider's UPDATE handler, and prints the prefixes the customer
could hijack through the provider's broken filter.

Run:  python examples/quickstart.py
"""

from repro.concolic import ExplorationBudget
from repro.core import get_scenario


def main() -> None:
    print("Building the Figure 2 testbed (erroneous customer filter)...")
    scenario = get_scenario("fig2").build(
        filter_mode="erroneous",   # the misconfiguration under test
        prefix_count=2_000,        # scaled-down "rest of the Internet"
        update_count=200,
    )
    scenario.converge()
    print(f"  provider table: {scenario.provider_table_size} prefixes")
    print(f"  established peers: {scenario.provider.established_peers()}")
    print(f"  observed live inputs: {len(scenario.dice.observed)}")

    print("\nRunning one DiCE exploration round on the customer session...")
    report = scenario.dice.run_round(
        peer="customer", budget=ExplorationBudget(max_executions=32)
    )
    assert report is not None
    print(f"  executions: {report.exploration.executions}")
    print(f"  unique paths: {report.exploration.unique_paths}")
    print(f"  solver queries: {report.exploration.solver_queries}")
    print(f"  wall time: {report.exploration.wall_seconds:.2f}s")

    leaked = report.leaked_prefixes()
    print(f"\nDiCE found {len(leaked)} hijackable prefixes. Examples:")
    for finding in report.hijack_findings()[:5]:
        print(f"  - {finding.describe()}")
    if leaked:
        print(
            "\nOperator takeaway: the customer import filter accepts "
            "foreign prefixes of length /16../24 — install a prefix-set "
            "filter for the customer's address space."
        )


if __name__ == "__main__":
    main()
