"""Tests for the policy interpreter and the configuration language."""

import pytest

from repro.bgp.attributes import AsPath, NO_EXPORT, ORIGIN_IGP, PathAttributes
from repro.bgp.config import parse_config, tokenize
from repro.bgp.policy import (
    ACCEPT_ALL,
    AttrCompare,
    FilterAction,
    FilterInterpreter,
    FilterProgram,
    PrefixIn,
    PrefixSet,
    PrefixSpec,
    REJECT_ALL,
    RouteView,
    Terminal,
)
from repro.concolic.engine import trace
from repro.concolic.symbolic import SymInt
from repro.util.errors import ConfigError
from repro.util.ip import Prefix, ip_to_int

P = Prefix.parse


def view(network="10.10.1.0", length=24, path=(65020,), **kwargs):
    attrs = PathAttributes(
        origin=kwargs.get("origin", ORIGIN_IGP),
        as_path=AsPath.sequence(list(path)),
        next_hop=kwargs.get("next_hop", 1),
        med=kwargs.get("med"),
        local_pref=kwargs.get("local_pref"),
        communities=tuple(kwargs.get("communities", ())),
    )
    return RouteView.of(ip_to_int(network), length, attrs, peer=kwargs.get("peer"))


class TestPrefixSpec:
    def test_exact_match_only_by_default(self):
        spec = PrefixSpec(P("10.0.0.0/8"))
        assert spec.matches(ip_to_int("10.0.0.0"), 8)
        assert not spec.matches(ip_to_int("10.0.0.0"), 9)
        assert not spec.matches(ip_to_int("11.0.0.0"), 8)

    def test_le_range(self):
        spec = PrefixSpec(P("10.0.0.0/8"), min_len=8, max_len=24)
        assert spec.matches(ip_to_int("10.5.0.0"), 16)
        assert spec.matches(ip_to_int("10.5.5.0"), 24)
        assert not spec.matches(ip_to_int("10.5.5.5"), 32)

    def test_zero_length_base_matches_everything_in_range(self):
        spec = PrefixSpec(P("0.0.0.0/0"), min_len=0, max_len=32)
        assert spec.matches(ip_to_int("200.1.2.3"), 32)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ConfigError):
            PrefixSpec(P("10.0.0.0/8"), min_len=24, max_len=16)
        with pytest.raises(ConfigError):
            PrefixSpec(P("10.0.0.0/8"), min_len=4, max_len=8)

    def test_str(self):
        assert str(PrefixSpec(P("10.0.0.0/8"))) == "10.0.0.0/8"
        assert str(PrefixSpec(P("10.0.0.0/8"), 8, 24)) == "10.0.0.0/8{8,24}"

    def test_symbolic_match_records_constraints(self):
        spec = PrefixSpec(P("10.10.0.0/16"), 16, 24)
        network = SymInt.variable("net", ip_to_int("10.10.3.0"))
        length = SymInt.variable("len", 24, bits=6)
        with trace() as recorder:
            assert bool(spec.matches(network, length))
        # Length-low, length-high, and network-shift comparisons recorded.
        assert len(recorder.path) == 3


class TestInterpreter:
    def run(self, source, route_view, filter_name=None):
        config = parse_config(source)
        name = filter_name or next(
            n for n in config.filters if n not in ("accept-all", "reject-all")
        )
        interpreter = FilterInterpreter(config.prefix_sets)
        return interpreter.run(config.filters[name], route_view)

    BASE = """
router bgp 65010;
prefix-set CUSTOMERS { 10.10.0.0/16 le 24; 10.20.0.0/16; }
"""

    def test_prefix_set_accept(self):
        source = self.BASE + """
filter f { if net in CUSTOMERS then accept; reject; }
"""
        assert self.run(source, view("10.10.1.0", 24)).accepted
        assert not self.run(source, view("99.0.0.0", 24)).accepted
        assert self.run(source, view("10.20.0.0", 16)).accepted
        assert not self.run(source, view("10.20.1.0", 24)).accepted  # exact only

    def test_fallthrough_rejects(self):
        source = self.BASE + """
filter f { if net in CUSTOMERS then accept; }
"""
        result = self.run(source, view("99.0.0.0", 24))
        assert not result.accepted
        assert result.fell_through

    def test_set_local_pref(self):
        source = self.BASE + """
filter f { if net in CUSTOMERS then { set local-pref 200; accept; } reject; }
"""
        result = self.run(source, view("10.10.1.0", 24))
        assert result.accepted
        assert result.attributes.local_pref == 200

    def test_else_branch(self):
        source = self.BASE + """
filter f {
    if net.len > 24 then reject;
    else { set med 77; accept; }
}
"""
        result = self.run(source, view("10.10.1.0", 24))
        assert result.accepted and result.attributes.med == 77
        assert not self.run(source, view("10.10.1.0", 25)).accepted

    def test_as_path_and_origin_conditions(self):
        source = self.BASE + """
filter f {
    if as-path contains 666 then reject;
    if origin-as == 65020 then accept;
    reject;
}
"""
        assert self.run(source, view(path=(65020,))).accepted
        assert not self.run(source, view(path=(65021,))).accepted
        assert not self.run(source, view(path=(666, 65020))).accepted

    def test_origin_as_negated(self):
        source = self.BASE + """
filter f { if origin-as != 65020 then reject; accept; }
"""
        assert self.run(source, view(path=(65020,))).accepted
        assert not self.run(source, view(path=(1,))).accepted

    def test_community_condition_and_actions(self):
        source = self.BASE + """
filter f {
    if community has no-export then reject;
    add-community 999;
    accept;
}
"""
        result = self.run(source, view())
        assert result.accepted and 999 in result.attributes.communities
        rejected = self.run(source, view(communities=[NO_EXPORT]))
        assert not rejected.accepted

    def test_remove_community(self):
        source = self.BASE + """
filter f { remove-community 7; accept; }
"""
        result = self.run(source, view(communities=[7, 8]))
        assert result.attributes.communities == (8,)

    def test_prepend(self):
        source = self.BASE + """
filter f { prepend 65010 3; accept; }
"""
        result = self.run(source, view(path=(65020,)))
        assert result.attributes.as_path.as_list() == [65010, 65010, 65010, 65020]

    def test_boolean_connectives(self):
        source = self.BASE + """
filter f {
    if net in CUSTOMERS and net.len <= 20 then accept;
    if not (net.len >= 8) or false then accept;
    reject;
}
"""
        assert self.run(source, view("10.10.0.0", 16)).accepted       # first if
        assert not self.run(source, view("10.10.1.0", 24)).accepted   # len > 20
        assert self.run(source, view("1.0.0.0", 4)).accepted          # second if

    def test_inline_prefix_set(self):
        source = self.BASE + """
filter f { if net in { 192.168.0.0/16 le 32; } then accept; reject; }
"""
        assert self.run(source, view("192.168.3.4", 32)).accepted
        assert not self.run(source, view("10.10.1.0", 24)).accepted

    def test_attr_compare_all_operators(self):
        for op, length, expected in [
            ("==", 24, True), ("!=", 24, False), ("<", 23, True),
            ("<=", 24, True), (">", 25, True), (">=", 24, True),
        ]:
            source = self.BASE + f"""
filter f {{ if net.len {op} 24 then accept; reject; }}
"""
            assert self.run(source, view(length=length)).accepted is expected

    def test_builtin_filters(self):
        interpreter = FilterInterpreter()
        assert interpreter.run(ACCEPT_ALL, view()).accepted
        assert not interpreter.run(REJECT_ALL, view()).accepted

    def test_undefined_prefix_set_in_interpreter(self):
        interpreter = FilterInterpreter({})
        program = FilterProgram(
            "f",
            (Terminal(FilterAction.ACCEPT),),
        )
        # Direct AST with a dangling reference fails at evaluation time.
        from repro.bgp.policy import If

        bad = FilterProgram("bad", (If(PrefixIn(set_name="GHOST"), (Terminal(FilterAction.ACCEPT),)),))
        with pytest.raises(ConfigError):
            interpreter.run(bad, view())
        assert interpreter.run(program, view()).accepted

    def test_symbolic_filter_evaluation_records_config_branches(self):
        """The paper's claim: configuration becomes explorable branches."""
        source = self.BASE + """
filter f { if net in CUSTOMERS then accept; reject; }
"""
        config = parse_config(source)
        interpreter = FilterInterpreter(config.prefix_sets)
        symbolic_view = RouteView.of(
            SymInt.variable("net", ip_to_int("10.10.1.0")),
            SymInt.variable("len", 24, bits=6),
            PathAttributes(as_path=AsPath.sequence([65020]), next_hop=1),
        )
        with trace() as recorder:
            result = interpreter.run(config.filters["f"], symbolic_view)
        assert result.accepted
        assert len(recorder.path) >= 3  # the configured conditions left constraints
        variables = set()
        for branch in recorder.path:
            variables |= branch.constraint.variables()
        assert variables == {"net", "len"}


class TestConfigParser:
    def test_full_config(self):
        config = parse_config("""
# A realistic provider config.
router bgp 65010;
router-id 10.0.0.1;
network 203.0.113.0/24;

prefix-set CUSTOMERS {
    10.10.0.0/16 le 24;
    10.20.0.0/16 ge 16 le 28;
}

filter customer-in {
    if net in CUSTOMERS then accept;
    reject;
}

neighbor customer1 {
    remote-as 65020;
    import filter customer-in;
    export filter accept-all;
    hold-time 180;
}

neighbor transit {
    remote-as 64999;
    passive;
}
""")
        assert config.asn == 65010
        assert config.router_id == ip_to_int("10.0.0.1")
        assert config.networks == [P("203.0.113.0/24")]
        specs = config.prefix_sets["CUSTOMERS"].specs
        assert (specs[0].min_len, specs[0].max_len) == (16, 24)
        assert (specs[1].min_len, specs[1].max_len) == (16, 28)
        assert config.neighbors["customer1"].remote_as == 65020
        assert config.neighbors["customer1"].hold_time == 180
        assert config.neighbors["transit"].passive
        assert "customer-in" in config.filters
        assert "accept-all" in config.filters  # builtin

    def test_comments_and_blank_lines(self):
        config = parse_config("""
# comment line
router bgp 1;   # trailing comment

""")
        assert config.asn == 1

    @pytest.mark.parametrize(
        "source,fragment",
        [
            ("router bgp zero;", "number"),
            ("router bgp 1; bogus;", "unknown top-level"),
            ("router bgp 1; neighbor x { import filter f; }", "remote-as"),
            ("router bgp 1; neighbor x { remote-as 2; import filter nope; }",
             "undefined filter"),
            ("router bgp 1; filter f { accept; } filter f2 { if net in GHOST then accept; }",
             "undefined prefix set"),
            ("router bgp 1; filter accept-all { accept; }", "reserved"),
            ("router bgp 1; filter f { banana; }", "unknown statement"),
            ("router bgp 1; filter f { set banana 1; }", "unknown attribute"),
            ("router bgp 1; router-id not-an-ip;", "router-id"),
            ("filter f { accept; }", "router bgp"),
            ("router bgp 1; filter f { if net.len ~ 3 then accept; }", "operator"),
            ("router bgp 1; filter f { if origin-as > 5 then accept; }", "origin-as"),
            ("router bgp 1; filter f { accept;", "end of configuration"),
        ],
    )
    def test_errors_are_reported(self, source, fragment):
        with pytest.raises(ConfigError) as excinfo:
            parse_config(source)
        assert fragment.lower() in str(excinfo.value).lower()

    def test_error_carries_location(self):
        with pytest.raises(ConfigError) as excinfo:
            parse_config("router bgp 1;\nbroken;")
        assert "line 2" in str(excinfo.value)

    def test_tokenizer_operators(self):
        tokens = [t.text for t in tokenize("a == b != c <= d >= e < f > g")]
        assert tokens == ["a", "==", "b", "!=", "c", "<=", "d", ">=", "e",
                          "<", "f", ">", "g"]

    def test_tokenizer_punctuation(self):
        tokens = [t.text for t in tokenize("x{y;z}(w)")]
        assert tokens == ["x", "{", "y", ";", "z", "}", "(", "w", ")"]

    def test_community_aliases(self):
        config = parse_config("""
router bgp 1;
filter f { if community has no-export then reject; add-community no-advertise; accept; }
""")
        assert config.asn == 1

    def test_hex_numbers(self):
        config = parse_config("""
router bgp 1;
filter f { add-community 0xFFFFFF01; accept; }
""")
        assert config.asn == 1

    def test_prepend_default_count(self):
        config = parse_config("""
router bgp 1;
filter f { prepend 65000; accept; }
""")
        statement = config.filters["f"].statements[0]
        assert statement.count == 1
