"""Federated exploration: extending DiCE's horizon across the network.

Section 2.4 sketches how single-node exploration becomes system-wide:
"we could intercept all messages and let them go through isolated
communication channels.  In addition, we would enable remote nodes to
checkpoint their state and process these messages in isolation over
their checkpointed states.  Effectively, this would extend the scope of
the concolic execution engine to reach across the network."

This module implements that sketch on our substrates:

* every participating node (across administrative domains) is
  checkpointed and cloned onto an isolated environment;
* an :class:`IsolatedFabric` shuttles the messages clones generate to
  the destination *clones* — never to live nodes — until the exploratory
  wave quiesces or a hop budget runs out;
* system-wide checks then run over the clone ensemble, using only the
  privacy-preserving digests of :mod:`repro.core.privacy` for
  cross-domain comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bgp.messages import UpdateMessage
from repro.bgp.router import BgpRouter
from repro.checkpoint.snapshot import Checkpoint
from repro.concolic.env import ExplorationEnvironment
from repro.core.privacy import OriginDigest, digest_conflicts
from repro.util.errors import ExplorationError, IsolationViolation


@dataclass
class FabricStats:
    """Message propagation counters for one exploratory wave."""

    delivered: int = 0
    rounds: int = 0
    dropped_no_target: int = 0


class IsolatedFabric:
    """Clones of many nodes plus the isolated channels between them.

    Construction checkpoints and clones every node.  ``inject`` runs an
    exploratory input at one clone, then :meth:`propagate` repeatedly
    drains each clone's captured outbound messages and delivers them to
    the destination clone, simulating the isolated communication channels
    of section 2.4.
    """

    def __init__(self, routers: Dict[str, BgpRouter], max_rounds: int = 16):
        self.max_rounds = max_rounds
        self.checkpoints: Dict[str, Checkpoint] = {}
        self.clones: Dict[str, BgpRouter] = {}
        self.envs: Dict[str, ExplorationEnvironment] = {}
        self.stats = FabricStats()
        for node_id, router in routers.items():
            checkpoint = Checkpoint.capture(router, f"fed-{node_id}")
            self.checkpoints[node_id] = checkpoint
            env = ExplorationEnvironment(checkpoint_time=checkpoint.node_time)
            clone = checkpoint.restore(env)
            if not isinstance(clone, BgpRouter):
                raise IsolationViolation(
                    f"federated clone of {node_id!r} is not a BgpRouter"
                )
            self.clones[node_id] = clone
            self.envs[node_id] = env

    def inject(self, node_id: str, peer_id: str, update: UpdateMessage) -> None:
        """Run an exploratory UPDATE at one clone's handler."""
        if node_id not in self.clones:
            raise ExplorationError(f"no clone for node {node_id!r}")
        self.clones[node_id].handle_update(peer_id, update)

    def propagate(self) -> FabricStats:
        """Shuttle captured messages between clones until quiescence."""
        for round_index in range(self.max_rounds):
            moved = 0
            for source_id, env in self.envs.items():
                for captured in env.drain_captured():
                    target = self.clones.get(captured.destination)
                    if target is None:
                        self.stats.dropped_no_target += 1
                        continue
                    target.on_message(source_id, captured.payload)
                    moved += 1
            self.stats.delivered += moved
            self.stats.rounds = round_index + 1
            if moved == 0:
                break
        return self.stats

    def clone_of(self, node_id: str) -> BgpRouter:
        return self.clones[node_id]


@dataclass
class GlobalFinding:
    """A cross-domain inconsistency detected over digests.

    ``stage`` records when the disagreement was visible: right after the
    exploratory injection (``"pre-propagation"`` — the inconsistency
    window a hijack opens) or after the wave quiesced
    (``"post-propagation"`` — a standing disagreement like a MOAS
    conflict).
    """

    prefix_digest: bytes
    nodes: Tuple[str, str]
    summary: str
    stage: str = "post-propagation"


@dataclass
class FederatedReport:
    """Outcome of one federated exploratory wave."""

    stats: FabricStats
    global_findings: List[GlobalFinding] = field(default_factory=list)
    per_node_table_delta: Dict[str, int] = field(default_factory=dict)


class FederatedExploration:
    """One cross-network exploratory wave plus system-wide checking.

    The check implemented is the federation-wide version of the origin
    check: after the wave, every pair of domains compares *origin
    digests* (salted hashes; see :mod:`repro.core.privacy`) and any
    prefix on which two domains' views disagree about the origin AS is
    reported — without either domain revealing its table or config.
    """

    def __init__(self, routers: Dict[str, BgpRouter], salt: bytes = b"dice-federation"):
        self.routers = routers
        self.salt = salt

    def run(
        self,
        inject_at: str,
        peer_id: str,
        update: UpdateMessage,
        max_rounds: int = 16,
    ) -> FederatedReport:
        fabric = IsolatedFabric(self.routers, max_rounds=max_rounds)
        baseline_sizes = {
            node_id: clone.table_size() for node_id, clone in fabric.clones.items()
        }
        fabric.inject(inject_at, peer_id, update)
        # Check twice: right after the injection (the inconsistency window
        # the exploratory action opens) and again after the wave quiesces
        # (standing disagreements that propagation does not resolve).
        findings = self._compare_digests(fabric, stage="pre-propagation")
        stats = fabric.propagate()
        post = self._compare_digests(fabric, stage="post-propagation")
        seen = {(f.prefix_digest, f.nodes) for f in findings}
        findings.extend(
            f for f in post if (f.prefix_digest, f.nodes) not in seen
        )
        deltas = {
            node_id: fabric.clones[node_id].table_size() - baseline_sizes[node_id]
            for node_id in fabric.clones
        }
        return FederatedReport(stats, findings, deltas)

    def _compare_digests(
        self, fabric: IsolatedFabric, stage: str
    ) -> List[GlobalFinding]:
        digests = {
            node_id: OriginDigest.from_router(clone, self.salt)
            for node_id, clone in fabric.clones.items()
        }
        findings: List[GlobalFinding] = []
        node_ids = sorted(digests)
        for i, a in enumerate(node_ids):
            for b in node_ids[i + 1:]:
                for conflict in digest_conflicts(digests[a], digests[b]):
                    findings.append(
                        GlobalFinding(
                            prefix_digest=conflict,
                            nodes=(a, b),
                            summary=(
                                f"domains {a!r} and {b!r} disagree on the origin "
                                f"of a prefix (digest {conflict.hex()[:12]}..., "
                                f"{stage})"
                            ),
                            stage=stage,
                        )
                    )
        return findings
