"""AS-level topology model with Gao–Rexford policy synthesis.

The paper's subject is a *federation*: many autonomous systems, each with
private policy, jointly producing global behavior.  The seed reproduction
hardcoded exactly one such federation (the Figure 2
customer/provider/internet triangle); this module is the declarative
replacement — an :class:`AsGraph` describes ASes (nodes with roles and
originated address space) and their business relationships
(provider→customer transit edges and settlement-free peering), and
:func:`render_config` synthesizes each AS's full router configuration
from the graph:

* **import policy** tags every learned route with the relationship it
  arrived over (customer/peer/provider communities) and sets the
  conventional local-pref ladder (customer > peer > provider), so the
  decision process prefers routes that earn money;
* **export policy** implements the Gao–Rexford stability conditions:
  routes learned from a peer or provider are never re-exported to
  another peer or provider (no valleys), everything goes to customers;
* **customer filtering** is a per-node knob replaying the paper's route
  leak study: ``correct`` accepts exactly the customer's cone,
  ``erroneous`` adds the sloppy length-based disjunct of section 4.2,
  ``missing`` accepts anything (the PCCW/YouTube misconfiguration).

:func:`build_routers` materializes the graph onto the simulated network:
one :class:`~repro.bgp.router.BgpRouter` per AS, one latency-annotated
link per edge, sessions established by running the event loop.  Every
scenario in :mod:`repro.core.scenario` is one of these graphs plus a
seed corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.util.errors import TopologyError
from repro.util.ip import Prefix, int_to_ip

#: Business relationships an edge can encode.
TRANSIT = "transit"      # edge.a sells transit to edge.b (a = provider)
PEER = "peer"            # settlement-free peering

#: Customer-import filtering modes (the paper's route-leak knob).
FILTER_MODES = ("correct", "missing", "erroneous")

#: Local-pref ladder: prefer customer routes over peers over providers,
#: all strictly below locally originated routes (STATIC_LOCAL_PREF=200).
LOCAL_PREF = {"customer": 120, "peer": 110, "provider": 100}

#: Internal provenance communities ("from a customer/peer/provider"),
#: allocated from the private-AS tail so they cannot collide with the
#: synthetic traces' transit-AS communities.
TAG_BASE = 65500 << 16
TAG = {"customer": TAG_BASE | 1, "peer": TAG_BASE | 2, "provider": TAG_BASE | 3}


@dataclass
class AsNode:
    """One autonomous system: identity, role, and originated space."""

    name: str
    asn: int
    role: str = "stub"                     # tier1 | tier2 | stub | ...
    networks: Tuple[Prefix, ...] = ()
    router_id: int = 0
    #: Customer-import filtering applied by *this* AS on its customers.
    filter_mode: str = "missing"
    #: Raw config snippets (prefix-sets, extra filters) appended verbatim;
    #: the Figure 2 scenario injects its hand-tuned customer filter here.
    extra_config: str = ""

    def __post_init__(self) -> None:
        if self.filter_mode not in FILTER_MODES:
            raise TopologyError(
                f"AS {self.name!r}: unknown filter mode {self.filter_mode!r}; "
                f"use one of {FILTER_MODES}"
            )


@dataclass
class AsEdge:
    """A business relationship between two ASes (one simulated link).

    For ``kind=TRANSIT``, ``a`` is the provider and ``b`` the customer.
    ``passive`` names the side that waits for the OPEN (defaults to the
    customer, or the lexicographically larger peer); per-direction filter
    overrides let a scenario splice in a hand-written policy while the
    rest of the graph keeps the synthesized one.
    """

    a: str
    b: str
    kind: str = TRANSIT
    latency: float = 0.001
    passive: Optional[str] = None
    #: Explicit filter names per direction; None = synthesize.
    a_import: Optional[str] = None
    a_export: Optional[str] = None
    b_import: Optional[str] = None
    b_export: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in (TRANSIT, PEER):
            raise TopologyError(f"unknown edge kind {self.kind!r}")
        if self.a == self.b:
            raise TopologyError(f"self-edge on {self.a!r}")
        if self.passive is None:
            self.passive = self.b if self.kind == TRANSIT else max(self.a, self.b)

    def endpoints(self) -> Tuple[str, str]:
        return (self.a, self.b)

    def relation_of(self, node: str) -> str:
        """What the *other* endpoint is, from ``node``'s point of view."""
        if self.kind == PEER:
            return "peer"
        if node == self.a:
            return "customer"     # a is the provider, so b is its customer
        return "provider"

    def other(self, node: str) -> str:
        return self.b if node == self.a else self.a


class AsGraph:
    """The AS-level topology: nodes, relationship edges, and validation."""

    def __init__(self, name: str = "topology"):
        self.name = name
        self.nodes: Dict[str, AsNode] = {}
        self.edges: List[AsEdge] = []
        self._by_pair: Dict[frozenset, AsEdge] = {}

    # -- construction --------------------------------------------------------

    def add_as(
        self,
        name: str,
        asn: Optional[int] = None,
        role: str = "stub",
        networks: Sequence[Prefix] = (),
        router_id: Optional[int] = None,
        filter_mode: str = "missing",
        extra_config: str = "",
    ) -> AsNode:
        if name in self.nodes:
            raise TopologyError(f"AS {name!r} already declared")
        index = len(self.nodes) + 1
        node = AsNode(
            name=name,
            asn=asn if asn is not None else 65000 + index,
            role=role,
            networks=tuple(networks),
            # Deterministic distinct router ids: 10.255.<index>.1.
            router_id=router_id if router_id is not None
            else (10 << 24) | (255 << 16) | (index << 8) | 1,
            filter_mode=filter_mode,
            extra_config=extra_config,
        )
        self.nodes[name] = node
        return node

    def _add_edge(self, edge: AsEdge) -> AsEdge:
        for end in edge.endpoints():
            if end not in self.nodes:
                raise TopologyError(f"edge references undeclared AS {end!r}")
        key = frozenset(edge.endpoints())
        if key in self._by_pair:
            raise TopologyError(f"edge {edge.a!r}<->{edge.b!r} already exists")
        self.edges.append(edge)
        self._by_pair[key] = edge
        return edge

    def transit(self, provider: str, customer: str, **kwargs) -> AsEdge:
        """Declare that ``provider`` sells transit to ``customer``."""
        return self._add_edge(AsEdge(provider, customer, TRANSIT, **kwargs))

    def peer(self, a: str, b: str, **kwargs) -> AsEdge:
        """Declare settlement-free peering between ``a`` and ``b``."""
        return self._add_edge(AsEdge(a, b, PEER, **kwargs))

    # -- queries -------------------------------------------------------------

    def edge_between(self, a: str, b: str) -> Optional[AsEdge]:
        return self._by_pair.get(frozenset((a, b)))

    def latency(self, a: str, b: str, default: float = 0.001) -> float:
        edge = self.edge_between(a, b)
        return edge.latency if edge is not None else default

    def neighbors(self, name: str) -> List[Tuple[str, str, AsEdge]]:
        """(peer name, relation from ``name``'s view, edge), declaration order."""
        found = []
        for edge in self.edges:
            if name in edge.endpoints():
                found.append((edge.other(name), edge.relation_of(name), edge))
        return found

    def customers_of(self, name: str) -> List[str]:
        return [peer for peer, rel, _ in self.neighbors(name) if rel == "customer"]

    def providers_of(self, name: str) -> List[str]:
        return [peer for peer, rel, _ in self.neighbors(name) if rel == "provider"]

    def peers_of(self, name: str) -> List[str]:
        return [peer for peer, rel, _ in self.neighbors(name) if rel == "peer"]

    def customer_cone(self, name: str) -> List[Prefix]:
        """Prefixes reachable through ``name``'s customer branch (own included).

        The cone is what a *correct* provider filter accepts from this AS
        as a customer: its own networks plus, recursively, everything its
        customers could legitimately announce upward.
        """
        cone: List[Prefix] = []
        seen_nodes = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen_nodes:
                continue
            seen_nodes.add(current)
            cone.extend(self.nodes[current].networks)
            stack.extend(reversed(self.customers_of(current)))
        # Stable dedupe: a diamond in the customer hierarchy must not
        # repeat prefixes in the rendered prefix-set.
        return list(dict.fromkeys(cone))

    def origin_of(self, prefix: Prefix) -> Optional[str]:
        for node in self.nodes.values():
            if prefix in node.networks:
                return node.name
        return None

    def summary(self) -> Dict[str, int]:
        return {
            "nodes": len(self.nodes),
            "edges": len(self.edges),
            "transit_edges": sum(1 for e in self.edges if e.kind == TRANSIT),
            "peer_edges": sum(1 for e in self.edges if e.kind == PEER),
        }

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Structural and policy well-formedness; raises :class:`TopologyError`.

        Checks the properties Gao–Rexford convergence arguments rest on:
        the provider→customer relation is acyclic (no AS is, transitively,
        its own provider), the graph is connected, ASNs are unique, and
        no two ASes originate the same prefix (a MOAS conflict is a
        *workload*, injected by a scenario, never a baseline).
        """
        if not self.nodes:
            raise TopologyError(f"topology {self.name!r} has no ASes")
        asns: Dict[int, str] = {}
        origins: Dict[Prefix, str] = {}
        for node in self.nodes.values():
            if node.asn in asns:
                raise TopologyError(
                    f"ASN {node.asn} used by both {asns[node.asn]!r} and {node.name!r}"
                )
            asns[node.asn] = node.name
            for prefix in node.networks:
                if prefix in origins:
                    raise TopologyError(
                        f"prefix {prefix} originated by both "
                        f"{origins[prefix]!r} and {node.name!r}"
                    )
                origins[prefix] = node.name
        self._check_transit_acyclic()
        self._check_connected()

    def _check_transit_acyclic(self) -> None:
        # Iterative DFS with an explicit stack: measured-Internet transit
        # chains run deep enough that the old recursive walk could hit
        # Python's recursion limit, and building the customer adjacency
        # once avoids the O(nodes * edges) repeated neighbor scans.
        customers: Dict[str, List[str]] = {name: [] for name in self.nodes}
        for edge in self.edges:
            if edge.kind == TRANSIT:
                customers[edge.a].append(edge.b)
        state: Dict[str, int] = {}  # 0 on the current path, 1 done
        for root in self.nodes:
            if state.get(root) == 1:
                continue
            state[root] = 0
            trail = [root]
            stack: List[Tuple[str, Iterator[str]]] = [
                (root, iter(customers[root]))
            ]
            while stack:
                name, children = stack[-1]
                descended = False
                for customer in children:
                    if state.get(customer) == 1:
                        continue
                    if state.get(customer) == 0:
                        cycle = " -> ".join(
                            trail[trail.index(customer):] + [customer]
                        )
                        raise TopologyError(
                            f"transit hierarchy has a cycle: {cycle}"
                        )
                    state[customer] = 0
                    trail.append(customer)
                    stack.append((customer, iter(customers[customer])))
                    descended = True
                    break
                if not descended:
                    state[name] = 1
                    trail.pop()
                    stack.pop()

    def _check_connected(self) -> None:
        if len(self.nodes) <= 1:
            return
        seen = set()
        stack = [next(iter(self.nodes))]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(peer for peer, _, _ in self.neighbors(current))
        unreachable = sorted(set(self.nodes) - seen)
        if unreachable:
            raise TopologyError(
                f"topology {self.name!r} is disconnected; unreachable: {unreachable}"
            )


# ---------------------------------------------------------------------------
# Config synthesis.
# ---------------------------------------------------------------------------


def _cone_set_name(customer: str) -> str:
    return f"CONE-{customer}"


def _customer_import_filter(
    graph: AsGraph, node: AsNode, customer: str
) -> Tuple[str, str]:
    """(prefix-set text or '', filter text) for importing from ``customer``."""
    mode = node.filter_mode
    tag = TAG["customer"]
    pref = LOCAL_PREF["customer"]
    accept_block = f"""{{
        set local-pref {pref};
        add-community {tag};
        accept;
    }}"""
    if mode == "missing":
        # No validation at all — the PCCW mistake.
        body = f"filter cust-in-{customer} {accept_block}\n"
        return "", body
    cone = graph.customer_cone(customer)
    specs = "\n".join(f"    {prefix} le 24;" for prefix in cone)
    prefix_set = f"prefix-set {_cone_set_name(customer)} {{\n{specs}\n}}\n"
    if mode == "correct":
        condition = f"net in {_cone_set_name(customer)}"
    else:  # erroneous: the sloppy length-based disjunct of section 4.2
        condition = (
            f"net in {_cone_set_name(customer)} "
            f"or (net.len >= 16 and net.len <= 24)"
        )
    body = f"""filter cust-in-{customer} {{
    if {condition} then {accept_block}
    reject;
}}
"""
    return prefix_set, body


def _relation_filters() -> str:
    """The shared (customer-independent) Gao–Rexford filters."""
    return f"""
filter peer-in {{
    set local-pref {LOCAL_PREF['peer']};
    add-community {TAG['peer']};
    accept;
}}

filter prov-in {{
    set local-pref {LOCAL_PREF['provider']};
    add-community {TAG['provider']};
    accept;
}}

# To customers: everything (they pay for the full table).
filter export-down {{
    remove-community {TAG['customer']};
    remove-community {TAG['peer']};
    remove-community {TAG['provider']};
    accept;
}}

# To peers and providers: only routes we originate or learned from a
# customer — never peer/provider routes (the no-valley condition).
filter export-up {{
    if community has {TAG['peer']} then reject;
    if community has {TAG['provider']} then reject;
    remove-community {TAG['customer']};
    accept;
}}
"""


def render_config(graph: AsGraph, name: str) -> str:
    """Synthesize ``name``'s full router configuration from the graph."""
    node = graph.nodes.get(name)
    if node is None:
        raise TopologyError(f"no AS named {name!r} in topology {graph.name!r}")
    lines = [
        f"# synthesized from topology {graph.name!r} (AS {node.name}, role {node.role})",
        f"router bgp {node.asn};",
        f"router-id {int_to_ip(node.router_id)};",
    ]
    lines.extend(f"network {prefix};" for prefix in node.networks)
    lines.append("")
    if node.extra_config:
        lines.append(node.extra_config.strip())
        lines.append("")

    neighbors = graph.neighbors(name)
    prefix_sets: List[str] = []
    filters: List[str] = []
    neighbor_blocks: List[str] = []
    emitted_shared = False
    for peer_name, relation, edge in neighbors:
        import_name, export_name = _direction_filters(edge, name)
        if import_name is None or export_name is None:
            if not emitted_shared:
                filters.append(_relation_filters())
                emitted_shared = True
        if import_name is None:
            if relation == "customer":
                prefix_set, body = _customer_import_filter(graph, node, peer_name)
                if prefix_set:
                    prefix_sets.append(prefix_set)
                filters.append(body)
                import_name = f"cust-in-{peer_name}"
            elif relation == "peer":
                import_name = "peer-in"
            else:
                import_name = "prov-in"
        if export_name is None:
            export_name = "export-down" if relation == "customer" else "export-up"
        passive = "\n    passive;" if edge.passive == name else ""
        neighbor_blocks.append(
            f"""neighbor {peer_name} {{
    remote-as {graph.nodes[peer_name].asn};{passive}
    import filter {import_name};
    export filter {export_name};
}}"""
        )
    lines.extend(prefix_sets)
    lines.extend(filters)
    lines.extend(neighbor_blocks)
    return "\n".join(lines) + "\n"


def _direction_filters(edge: AsEdge, name: str) -> Tuple[Optional[str], Optional[str]]:
    if name == edge.a:
        return edge.a_import, edge.a_export
    return edge.b_import, edge.b_export


# ---------------------------------------------------------------------------
# Structural config cache.
#
# A generated hierarchy is made of a handful of *shapes*: every
# single-homed stub renders the same configuration up to its ASN,
# router id, networks, and neighbor identities.  The content-hash parse
# cache can't see that (the identity fields make every text distinct),
# so materializing hierarchical(1000) would still parse ~1000 texts.
# This layer keys a parsed template by the node's *structure* — neighbor
# relations and passive sides, in declaration order — and revives +
# patches the template for every structurally identical node, skipping
# render and parse entirely.  Nodes with customers are ineligible (their
# cust-in-<peer> filters embed peer names), as are nodes with explicit
# per-edge filters or extra_config; those fall back to the parse cache.
# ---------------------------------------------------------------------------

_STRUCTURAL_CACHE: Dict[tuple, bytes] = {}
_STRUCTURAL_CACHE_MAX = 256
_STRUCTURAL_STATS = {"hits": 0, "misses": 0, "ineligible": 0}


def _structural_key(graph: AsGraph, name: str) -> Optional[tuple]:
    """Template-cache key for ``name``, or None when ineligible."""
    node = graph.nodes[name]
    if node.extra_config:
        return None
    entries = []
    for peer_name, relation, edge in graph.neighbors(name):
        if relation == "customer":
            # Customer import filters are named after the peer and embed
            # its cone — node-specific, never template-shareable.
            return None
        if _direction_filters(edge, name) != (None, None):
            return None
        entries.append((relation, edge.passive == name))
    return (len(node.networks), tuple(entries))


def render_structured(graph: AsGraph, name: str):
    """``name``'s :class:`RouterConfig`, via the structural template cache.

    Equivalent to ``parse_config_cached(render_config(graph, name))`` —
    and falls back to exactly that for ineligible nodes — but
    structurally identical nodes share one parsed template, patched with
    the node's identity fields.  Always returns a fresh, freely mutable
    config instance.
    """
    import pickle
    from dataclasses import replace

    from repro.bgp.config import parse_config_cached

    node = graph.nodes[name]
    key = _structural_key(graph, name)
    if key is None:
        _STRUCTURAL_STATS["ineligible"] += 1
        return parse_config_cached(render_config(graph, name))
    blob = _STRUCTURAL_CACHE.get(key)
    if blob is None:
        _STRUCTURAL_STATS["misses"] += 1
        config = parse_config_cached(render_config(graph, name))
        if len(_STRUCTURAL_CACHE) >= _STRUCTURAL_CACHE_MAX:
            _STRUCTURAL_CACHE.pop(next(iter(_STRUCTURAL_CACHE)))
        _STRUCTURAL_CACHE[key] = pickle.dumps(config, pickle.HIGHEST_PROTOCOL)
        return config
    _STRUCTURAL_STATS["hits"] += 1
    config = pickle.loads(blob)
    config.asn = node.asn
    config.router_id = node.router_id
    config.networks = list(node.networks)
    # The template's neighbor blocks line up with this node's neighbor
    # list (both follow edge declaration order — that's what the key
    # encodes), so only the identities need replacing.
    config.neighbors = {
        peer: replace(template, peer_id=peer, remote_as=graph.nodes[peer].asn)
        for template, (peer, _, _) in zip(
            config.neighbors.values(), graph.neighbors(name)
        )
    }
    return config


def structural_cache_info() -> Dict[str, int]:
    """Hit/miss/ineligible counters plus size, for tests and benchmarks."""
    return {**_STRUCTURAL_STATS, "size": len(_STRUCTURAL_CACHE)}


def clear_structural_cache() -> None:
    _STRUCTURAL_CACHE.clear()
    _STRUCTURAL_STATS["hits"] = 0
    _STRUCTURAL_STATS["misses"] = 0
    _STRUCTURAL_STATS["ineligible"] = 0


# ---------------------------------------------------------------------------
# Materialization onto the simulated network.
# ---------------------------------------------------------------------------


def build_routers(
    graph: AsGraph,
    host: Optional[object] = None,
    seed: int = 0,
    router_factory: Optional[Callable] = None,
    validate: bool = True,
):
    """Materialize the graph: one router per AS, one link per edge.

    Returns ``(host, routers)``.  Sessions are not yet established —
    call ``host.run()`` (or :meth:`BuiltScenario.converge`) to let the
    OPEN/KEEPALIVE exchanges and initial table transfers play out.

    ``router_factory(node_id, env, config_text)`` defaults to a plain
    :class:`BgpRouter`; scenarios that want DiCE observation on some
    node pass a factory returning :class:`DiceEnabledRouter` there.
    """
    from repro.bgp.router import BgpRouter
    from repro.net.node import NodeHost

    if validate:
        graph.validate()
    if host is None:
        host = NodeHost(seed=seed)
    # The default factory takes parsed configs straight from the
    # structural template cache (BgpRouter accepts both forms); custom
    # factories keep receiving rendered text, since their third argument
    # is config *text* by documented contract.
    structured = router_factory is None
    if router_factory is None:
        router_factory = lambda nid, env, config: BgpRouter(nid, env, config)

    routers = {}
    for name in graph.nodes:
        config = (
            render_structured(graph, name) if structured
            else render_config(graph, name)
        )
        routers[name] = host.add_node(
            name, lambda nid, env, _config=config: router_factory(nid, env, _config)
        )
    for edge in graph.edges:
        host.add_link(edge.a, edge.b, latency=edge.latency)
    host.start()
    return host, routers
