"""Path conditions: the per-execution record of symbolic branches.

A run of the program under test produces an ordered list of
:class:`Branch` records — one per branch whose condition involved symbolic
input, in execution order.  The exploration loop (paper section 2.3) works
on these records: to force execution down the other side of branch *i*, it
asserts branches ``0..i-1`` as taken and the negation of branch *i*, and
asks the solver for an input satisfying the conjunction.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.concolic.expr import Expr, negate
from repro.concolic.tracer import BranchSite


@dataclass(frozen=True)
class Branch:
    """One symbolic branch taken during an execution.

    ``constraint`` is the branch condition as recorded; the constraint that
    actually held during the run is ``constraint`` if ``taken`` else its
    negation (:meth:`held_constraint`).  Concretization records (a symbolic
    value forced concrete by an index/int context) appear as branches with
    ``is_concretization=True``; they participate in the path condition but
    are not negation targets by default.
    """

    index: int
    site: BranchSite
    constraint: Expr
    taken: bool
    is_concretization: bool = False

    def held_constraint(self) -> Expr:
        """The constraint form that was true during the execution."""
        return self.constraint if self.taken else negate(self.constraint)

    def negated_constraint(self) -> Expr:
        """The constraint forcing the other side of this branch."""
        return negate(self.constraint) if self.taken else self.constraint

    @property
    def outcome_key(self) -> Tuple[BranchSite, bool]:
        """(site, taken) pair used for coverage accounting."""
        return (self.site, self.taken)


@dataclass
class PathCondition:
    """The ordered branch records of one execution."""

    branches: List[Branch] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.branches)

    def __iter__(self) -> Iterator[Branch]:
        return iter(self.branches)

    def __getitem__(self, index: int) -> Branch:
        return self.branches[index]

    def append(
        self,
        site: BranchSite,
        constraint: Expr,
        taken: bool,
        is_concretization: bool = False,
    ) -> Branch:
        branch = Branch(len(self.branches), site, constraint, taken, is_concretization)
        self.branches.append(branch)
        return branch

    def signature(self) -> bytes:
        """A digest identifying the path by its (site, taken) sequence.

        Two executions with the same signature took the same side of the
        same branches in the same order; the explorer uses this to avoid
        re-exploring paths it has already seen.
        """
        digest = hashlib.blake2b(digest_size=16)
        for branch in self.branches:
            digest.update(branch.site.file.encode())
            digest.update(branch.site.line.to_bytes(4, "big"))
            digest.update(b"\x01" if branch.taken else b"\x00")
        return digest.digest()

    def prefix_signature(self, length: int, flip_last: bool = False) -> bytes:
        """Signature of the first ``length`` branches.

        With ``flip_last`` the final branch's direction is inverted — the
        signature of the path a successful negation of branch
        ``length - 1`` would begin with.  Used to deduplicate negation
        attempts (the paper's aggregate constraint set).
        """
        digest = hashlib.blake2b(digest_size=16)
        for branch in self.branches[:length]:
            taken = branch.taken
            if flip_last and branch.index == length - 1:
                taken = not taken
            digest.update(branch.site.file.encode())
            digest.update(branch.site.line.to_bytes(4, "big"))
            digest.update(b"\x01" if taken else b"\x00")
        return digest.digest()

    def constraints_to_negate(self, index: int) -> List[Expr]:
        """The solver query for forcing the other side of branch ``index``.

        Returns the held constraints of branches ``0..index-1`` followed by
        the negated constraint of branch ``index`` — the conjunction whose
        model is the next input to try (Figure 1 of the paper).
        """
        if not 0 <= index < len(self.branches):
            raise IndexError(f"branch index {index} out of range")
        constraints = [b.held_constraint() for b in self.branches[:index]]
        constraints.append(self.branches[index].negated_constraint())
        return constraints

    def held_constraints(self) -> List[Expr]:
        """All constraints that held during this execution."""
        return [branch.held_constraint() for branch in self.branches]

    def negation_targets(
        self, include_concretizations: bool = False
    ) -> Iterator[Branch]:
        """Branches eligible for negation, in execution order."""
        for branch in self.branches:
            if branch.is_concretization and not include_concretizations:
                continue
            yield branch

    def sites(self) -> Sequence[BranchSite]:
        return [branch.site for branch in self.branches]


@dataclass
class ExecutionResult:
    """Everything one concolic run of the program produced."""

    assignment: dict
    path: PathCondition
    value: object = None
    exception: Optional[BaseException] = None
    duration: float = 0.0

    @property
    def crashed(self) -> bool:
        """True if the program under test raised instead of returning."""
        return self.exception is not None

    def signature(self) -> bytes:
        return self.path.signature()
