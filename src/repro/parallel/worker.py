"""Picklable work units and the functions worker processes execute.

A worker receives everything a checkpoint-clone-explore session needs as
one picklable job object and returns a transport-compacted report.  Two
job shapes:

* :class:`SessionJob` — a full DiCE session: restore the checkpoint into
  an isolated clone, rebuild the marking model from the observed seed,
  explore the UPDATE handler, run the fault checkers;
* :class:`EngineJob` — a raw concolic exploration of an importable
  program (benchmarks and the fig1-style workloads use this).

Workers build their *own* engine, solver, checkers, and strategy from
the job description rather than receiving live objects: every stateful
component is private to the session, which is what makes results
independent of how jobs are scheduled onto processes.  The one shared
object — the constraint cache — is safe to share because cached entries
are bit-identical to a local solve (see :mod:`repro.parallel.cache`).

Expression transport: any :class:`~repro.concolic.expr.Expr` crossing
the process boundary (crash records keep their path conditions, jobs may
carry constraint-bearing checkers) pickles through its constructor
(``Expr.__reduce__``), so nodes *re-intern* into the receiving process's
hash-consing table on arrival — identity fast paths and per-node caches
hold in every worker, not just the process that built the expression.
"""

from __future__ import annotations

import copy
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.bgp.messages import UpdateMessage
from repro.checkpoint.snapshot import Checkpoint
from repro.concolic.engine import ConcolicEngine, ExplorationBudget, ExplorationReport, InputSpec
from repro.concolic.solver import ConstraintSolver
from repro.concolic.strategies import make_strategy
from repro.core.checkers import FaultChecker, default_checkers
from repro.core.explorer import DiceExplorer
from repro.core.inputs import model_for
from repro.core.isolation import restore_isolated
from repro.core.report import SessionReport
from repro.util.ip import Prefix
from repro.util.rng import derive_seed


class ProgressBeacon:
    """A worker's shared-memory heartbeat: *which* job, stamped *when*.

    Two doubles in a lock-protected :func:`multiprocessing.Array`:
    ``(monotonic_stamp, job_seq)``.  The worker stamps the dispatch
    sequence number just before running a job and clears back to idle
    after; the coordinator's supervision sweep reads both and concludes
    "busy on seq *s* since *t*" — the whole hang-detection protocol.

    ``time.monotonic`` is ``CLOCK_MONOTONIC``, which is system-wide on
    the platforms that can fork workers at all, so stamps written in the
    worker compare directly against the coordinator's clock.  The write
    is two array slots under one lock: cheap enough to pay per job, and
    crash-safe — a worker dying mid-job leaves its last honest stamp in
    place for the supervisor to read.
    """

    #: ``seq`` value meaning "no job running".
    IDLE = -1.0

    def __init__(self) -> None:
        self._cells = multiprocessing.Array("d", [0.0, self.IDLE])

    def stamp(self, seq: int) -> None:
        """Mark this worker busy on dispatch sequence ``seq``, now."""
        with self._cells.get_lock():
            self._cells[0] = time.monotonic()
            self._cells[1] = float(seq)

    def clear(self) -> None:
        """Mark this worker idle (job finished and result queued)."""
        with self._cells.get_lock():
            self._cells[0] = time.monotonic()
            self._cells[1] = self.IDLE

    def read(self) -> Tuple[float, int]:
        """``(stamp, seq)``; ``seq`` is -1 when idle."""
        with self._cells.get_lock():
            return self._cells[0], int(self._cells[1])

    @property
    def busy(self) -> bool:
        return self.read()[1] >= 0


@dataclass
class SessionJob:
    """One checkpoint-clone-explore session, ready to ship to a worker."""

    index: int
    checkpoint: Checkpoint
    peer: str
    observed: UpdateMessage
    policy: str = "selective"
    model_kwargs: Dict[str, object] = field(default_factory=dict)
    budget: Optional[ExplorationBudget] = None
    strategy: str = "generational"
    strategy_seed: int = 0
    anycast_whitelist: Tuple[Prefix, ...] = ()
    checkers: Optional[Sequence[FaultChecker]] = None
    cache: Optional[object] = None
    #: Federation node this session belongs to ("" for single-node runs).
    #: Pure provenance — it never feeds the strategy RNG, so a session is
    #: bit-identical whether it ran in a per-AS pool or the shared one.
    node: str = ""


@dataclass
class EngineJob:
    """One raw concolic exploration of an importable program."""

    index: int
    program: Callable
    spec: InputSpec
    budget: Optional[ExplorationBudget] = None
    strategy: str = "generational"
    strategy_seed: int = 0
    cache: Optional[object] = None


def _session_solver(job) -> ConstraintSolver:
    """A private solver wired to the (optional) shared cache.

    ``deterministic_rng`` keeps the solver a pure function of each query
    so shared-cache entries equal local solves — the invariant behind
    worker-count-independent results.
    """
    return ConstraintSolver(cache=job.cache, deterministic_rng=True)


def _job_strategy(job):
    """Seeded per job *index*, not per worker, so placement is irrelevant."""
    return make_strategy(
        job.strategy, seed=derive_seed(job.strategy_seed, "parallel-job", job.index)
    )


def run_session_job(job: SessionJob) -> SessionReport:
    """Execute one full DiCE session; the worker-process entry point."""
    engine = ConcolicEngine(solver=_session_solver(job), keep_results=False)
    # Deep copy: under the serial executor jobs are never pickled, so a
    # plain list() would hand the same (possibly stateful) checker
    # instances to every session — and make serial and multi-process
    # runs diverge for checkers that accumulate state across check().
    checkers = (
        copy.deepcopy(list(job.checkers))
        if job.checkers is not None
        else default_checkers(list(job.anycast_whitelist) or None)
    )
    explorer = DiceExplorer(engine=engine, checkers=checkers)
    # The clone restored here stands in for the live router: same state,
    # same sessions, but isolated — the live node never pauses for a
    # worker (the paper's "off the critical path").
    clone, _env = restore_isolated(job.checkpoint)
    model = model_for(job.observed, job.policy, **job.model_kwargs)
    report = explorer.explore_update(
        clone,
        job.peer,
        job.observed,
        model=model,
        budget=job.budget,
        strategy=_job_strategy(job),
        checkpoint=job.checkpoint,
    )
    report.solver_stats = engine.solver.stats.as_dict()
    report.node = job.node
    return report.compact()


def run_engine_job(job: EngineJob) -> ExplorationReport:
    """Execute one raw exploration; used by benchmarks and tests."""
    engine = ConcolicEngine(solver=_session_solver(job), keep_results=False)
    report = engine.explore(
        job.program,
        job.spec,
        strategy=_job_strategy(job),
        budget=job.budget,
    )
    report.solver_stats = engine.solver.stats.as_dict()
    return report.compact()
