"""Tests for constraint-result caching and solver determinism hooks."""

import pickle

import pytest

from repro.concolic.expr import BinOp, Const, Var
from repro.concolic.solver import ConstraintSolver, DictConstraintCache
from repro.concolic.solver.cache import (
    canonical_query_key,
    entry_for_model,
    model_from_entry,
)

X = Var("x", 8)
Y = Var("y", 8)
DOMAINS = {"x": (0, 255), "y": (0, 255)}


def gt(left, value):
    return BinOp("gt", left, Const(value))


class TestCanonicalKey:
    def test_stable_across_calls(self):
        constraints = [gt(X, 10), gt(Y, 20)]
        assert canonical_query_key(constraints, DOMAINS) == canonical_query_key(
            list(constraints), dict(DOMAINS)
        )

    def test_sensitive_to_constraints(self):
        assert canonical_query_key([gt(X, 10)], DOMAINS) != canonical_query_key(
            [gt(X, 11)], DOMAINS
        )

    def test_sensitive_to_constraint_order(self):
        # The conjunction is order-insensitive logically, but negation
        # queries are built positionally; keeping order in the key is the
        # conservative (never wrongly-equal) choice.
        a = canonical_query_key([gt(X, 10), gt(Y, 20)], DOMAINS)
        b = canonical_query_key([gt(Y, 20), gt(X, 10)], DOMAINS)
        assert a != b

    def test_sensitive_to_domains_and_hint(self):
        base = canonical_query_key([gt(X, 10)], DOMAINS)
        assert base != canonical_query_key([gt(X, 10)], {"x": (0, 63), "y": (0, 255)})
        assert base != canonical_query_key([gt(X, 10)], DOMAINS, {"x": 5})
        assert canonical_query_key([gt(X, 10)], DOMAINS, {}) == base

    def test_hint_order_irrelevant(self):
        a = canonical_query_key([gt(X, 10)], DOMAINS, {"x": 1, "y": 2})
        b = canonical_query_key([gt(X, 10)], DOMAINS, {"y": 2, "x": 1})
        assert a == b


class TestEntryCodec:
    def test_sat_round_trip(self):
        entry = entry_for_model({"x": 3, "y": 1}, proved_unsat=False)
        assert entry[0] == "sat"
        assert model_from_entry(entry) == {"x": 3, "y": 1}

    def test_unsat_and_unknown(self):
        assert entry_for_model(None, proved_unsat=True) == ("unsat",)
        assert entry_for_model(None, proved_unsat=False) == ("unknown",)
        assert model_from_entry(("unsat",)) is None

    def test_entries_pickle(self):
        entry = entry_for_model({"x": 3}, proved_unsat=False)
        assert pickle.loads(pickle.dumps(entry)) == entry


class TestCachedSolver:
    def test_second_identical_query_hits(self):
        cache = DictConstraintCache()
        solver = ConstraintSolver(cache=cache)
        constraints = [gt(X, 200), gt(Y, 100)]
        first = solver.solve(constraints, DOMAINS, hint={"x": 0, "y": 0})
        second = solver.solve(constraints, DOMAINS, hint={"x": 0, "y": 0})
        assert first == second
        assert solver.stats.cache_hits == 1
        assert solver.stats.cache_misses == 1
        assert solver.stats.sat == 2  # the hit is accounted like a solve

    def test_different_hint_is_a_different_query(self):
        cache = DictConstraintCache()
        solver = ConstraintSolver(cache=cache)
        constraints = [gt(X, 200)]
        solver.solve(constraints, DOMAINS, hint={"x": 0, "y": 0})
        solver.solve(constraints, DOMAINS, hint={"x": 250, "y": 0})
        assert solver.stats.cache_hits == 0
        assert solver.stats.cache_misses == 2

    def test_unsat_results_cached(self):
        cache = DictConstraintCache()
        solver = ConstraintSolver(cache=cache)
        impossible = [BinOp("lt", X, Const(0))]
        assert solver.solve(impossible, DOMAINS) is None
        assert solver.solve(impossible, DOMAINS) is None
        assert solver.stats.cache_hits == 1
        assert solver.stats.unsat_proved == 2

    def test_cache_shared_across_solvers(self):
        cache = DictConstraintCache()
        a = ConstraintSolver(cache=cache, deterministic_rng=True)
        b = ConstraintSolver(cache=cache, deterministic_rng=True)
        constraints = [gt(X, 200), gt(Y, 100)]
        hint = {"x": 0, "y": 0}
        assert a.solve(constraints, DOMAINS, hint=hint) == b.solve(
            constraints, DOMAINS, hint=hint
        )
        assert b.stats.cache_hits == 1

    def test_deterministic_rng_reproducible_across_fresh_solvers(self):
        # Two solvers with *different* query histories must return the
        # same model for the same query — the invariant that makes a
        # shared cache safe.
        constraints = [gt(X, 128), gt(Y, 128)]
        hint = {"x": 0, "y": 0}
        a = ConstraintSolver(deterministic_rng=True)
        b = ConstraintSolver(deterministic_rng=True)
        b.solve([gt(Y, 5)], DOMAINS, hint=hint)  # perturb b's history
        assert a.solve(constraints, DOMAINS, hint=hint) == b.solve(
            constraints, DOMAINS, hint=hint
        )

    def test_uncached_solver_unchanged(self):
        solver = ConstraintSolver()
        model = solver.solve([gt(X, 10)], DOMAINS, hint={"x": 0, "y": 0})
        assert model is not None and model["x"] > 10
        assert solver.stats.cache_hits == 0
        assert solver.stats.cache_misses == 0


class TestDictConstraintCache:
    def test_counters(self):
        cache = DictConstraintCache()
        assert cache.get(b"k") is None
        cache.put(b"k", ("sat", (("x", 1),)))
        assert cache.get(b"k") == ("sat", (("x", 1),))
        info = cache.info()
        assert info["entries"] == 1
        assert info["hits"] == 1
        assert info["misses"] == 1
        assert info["evictions"] == 0


class TestSharedConstraintCache:
    def test_l1_fronts_shared_dict(self):
        from repro.parallel.cache import SharedConstraintCache

        cache = SharedConstraintCache({})  # a plain dict quacks like the proxy
        cache.put(b"k", ("unsat",))
        assert cache.get(b"k") == ("unsat",)
        assert cache.hits == 1

    def test_pickling_drops_local_layer(self):
        from repro.parallel.cache import SharedConstraintCache

        cache = SharedConstraintCache({})
        cache.put(b"k", ("unsat",))
        clone = pickle.loads(pickle.dumps(cache))
        # The shared layer travelled (here: by value, being a plain dict);
        # the L1 and its counters reset per process.
        assert clone.hits == 0 and clone._local == {}
        assert clone.get(b"k") == ("unsat",)

    def test_survives_dead_manager(self):
        from repro.parallel.cache import SharedConstraintCache, shared_cache

        with shared_cache() as cache:
            cache.put(b"k", ("unknown",))
            assert cache.get(b"k") == ("unknown",)
        # Manager gone: reads degrade to the L1, writes don't raise.
        assert cache.get(b"k") == ("unknown",)
        cache.put(b"j", ("unsat",))
        assert cache.shared_size() == 0
