"""Shared utilities: addressing, page accounting, RNG, statistics, errors."""

from repro.util.errors import (
    AddressError,
    CheckpointError,
    ConfigError,
    ExplorationError,
    IsolationViolation,
    PrivacyViolation,
    ReproError,
    SimulationError,
    SolverError,
    SymbolicError,
    WireFormatError,
)
from repro.util.ip import ADDR_BITS, ADDR_MAX, Prefix, PrefixTrie, int_to_ip, ip_to_int, mask_for
from repro.util.pages import PAGE_SIZE, PageSet, PageStore, paginate
from repro.util.rng import derive_rng, derive_seed
from repro.util.stats import (
    Counter,
    CounterRegistry,
    Histogram,
    RateMeter,
    RunningStats,
    Stopwatch,
)

__all__ = [
    "ADDR_BITS",
    "ADDR_MAX",
    "AddressError",
    "CheckpointError",
    "ConfigError",
    "Counter",
    "CounterRegistry",
    "ExplorationError",
    "Histogram",
    "IsolationViolation",
    "PAGE_SIZE",
    "PageSet",
    "PageStore",
    "Prefix",
    "PrefixTrie",
    "PrivacyViolation",
    "RateMeter",
    "ReproError",
    "RunningStats",
    "SimulationError",
    "SolverError",
    "Stopwatch",
    "SymbolicError",
    "WireFormatError",
    "derive_rng",
    "derive_seed",
    "int_to_ip",
    "ip_to_int",
    "mask_for",
    "paginate",
]
