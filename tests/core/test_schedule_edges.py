"""Edge-case tests for online scheduling and throughput measurement."""

import pytest

from repro.concolic.engine import ExplorationBudget
from repro.core.dice import DiCE
from repro.core.schedule import (
    OnlineScheduler,
    ScheduleConfig,
    ThroughputProbe,
    measure_throughput,
)
from repro.net.node import NodeHost


class _StubDice:
    """A DiCE stand-in that counts rounds and optionally returns None."""

    def __init__(self, has_seed=True):
        self.calls = 0
        self.has_seed = has_seed

    def run_round(self, peer=None, budget=None):
        self.calls += 1
        if not self.has_seed:
            return None
        return object()


class _FlakyDice:
    """Raises on chosen rounds — the failure mode that used to kill the
    scheduler permanently (no re-armed timer, silent stop)."""

    def __init__(self, failing_calls=(1,), error=None):
        from repro.util.errors import ExplorationError

        self.calls = 0
        self.failing_calls = set(failing_calls)
        self.error = error or ExplorationError("round blew up")

    def run_round(self, peer=None, budget=None):
        self.calls += 1
        if self.calls in self.failing_calls:
            raise self.error
        return object()


class TestScheduler:
    def test_start_after_delays_first_round(self):
        host = NodeHost()
        dice = _StubDice()
        scheduler = OnlineScheduler(
            host, dice, ScheduleConfig(interval=100.0, start_after=5.0)
        )
        scheduler.start()
        host.run_until(4.0)
        assert dice.calls == 0
        host.run_until(6.0)
        assert dice.calls == 1
        scheduler.stop()

    def test_default_first_round_at_interval(self):
        host = NodeHost()
        dice = _StubDice()
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=30.0))
        scheduler.start()
        host.run_until(29.0)
        assert dice.calls == 0
        host.run_until(31.0)
        assert dice.calls == 1
        scheduler.stop()

    def test_rounds_without_seed_counted_skipped(self):
        host = NodeHost()
        dice = _StubDice(has_seed=False)
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=10.0))
        scheduler.start()
        host.run_until(35.0)
        scheduler.stop()
        assert scheduler.stats.rounds_skipped == 3
        assert scheduler.stats.rounds_fired == 0

    def test_max_rounds_stops(self):
        host = NodeHost()
        dice = _StubDice()
        scheduler = OnlineScheduler(
            host, dice, ScheduleConfig(interval=10.0, max_rounds=3)
        )
        scheduler.start()
        host.run_until(200.0)
        assert scheduler.stats.rounds_fired == 3
        assert not scheduler.running

    def test_restart_after_stop(self):
        host = NodeHost()
        dice = _StubDice()
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=10.0))
        scheduler.start()
        host.run_until(15.0)
        scheduler.stop()
        fired = scheduler.stats.rounds_fired
        scheduler.start()
        host.run_until(40.0)
        scheduler.stop()
        assert scheduler.stats.rounds_fired > fired

    def test_last_fired_at_tracks_sim_time(self):
        host = NodeHost()
        dice = _StubDice()
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=7.0))
        scheduler.start()
        host.run_until(8.0)
        scheduler.stop()
        assert scheduler.stats.last_fired_at == pytest.approx(7.0)


class TestSchedulerFailureContainment:
    def test_failed_round_rearms_the_timer(self):
        host = NodeHost()
        dice = _FlakyDice(failing_calls=(1,))
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=10.0))
        scheduler.start()
        host.run_until(45.0)
        scheduler.stop()
        # Round 1 raised at t=10; backoff pushes round 2 to t=30, which
        # succeeds and restores the 10s cadence (round 3 at t=40).
        assert dice.calls == 3
        assert scheduler.stats.rounds_failed == 1
        assert scheduler.stats.rounds_fired == 2
        assert "round blew up" in scheduler.stats.last_error

    def test_failures_not_counted_as_fired_or_skipped(self):
        host = NodeHost()
        dice = _FlakyDice(failing_calls=(1, 2, 3))
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=10.0))
        scheduler.start()
        # Failures at t=10, 30 (10+20), 70 (30+40): each one doubles the
        # re-arm delay, so reaching three failures takes until t=70.
        host.run_until(75.0)
        scheduler.stop()
        assert scheduler.stats.rounds_failed == 3
        assert scheduler.stats.rounds_fired == 0
        assert scheduler.stats.rounds_skipped == 0

    def test_max_rounds_counts_only_successes(self):
        host = NodeHost()
        dice = _FlakyDice(failing_calls=(2,))
        scheduler = OnlineScheduler(
            host, dice, ScheduleConfig(interval=10.0, max_rounds=2)
        )
        scheduler.start()
        host.run_until(100.0)
        # calls: 1 ok, 2 failed, 3 ok -> max_rounds=2 reached at call 3.
        assert dice.calls == 3
        assert scheduler.stats.rounds_fired == 2
        assert not scheduler.running

    def test_checkpoint_errors_contained_too(self):
        from repro.util.errors import CheckpointError

        host = NodeHost()
        dice = _FlakyDice(failing_calls=(1,), error=CheckpointError("no fork"))
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=10.0))
        scheduler.start()
        host.run_until(35.0)
        scheduler.stop()
        assert scheduler.stats.rounds_failed == 1
        assert scheduler.stats.rounds_fired == 1

    def test_non_library_errors_contained_too(self):
        # A worker-pool PicklingError (or any other stdlib exception) is
        # just as fatal to an un-guarded timer as a ReproError.
        import pickle

        host = NodeHost()
        dice = _FlakyDice(
            failing_calls=(1,), error=pickle.PicklingError("bad payload")
        )
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=10.0))
        scheduler.start()
        host.run_until(35.0)
        scheduler.stop()
        assert scheduler.stats.rounds_failed == 1
        assert scheduler.stats.rounds_fired == 1
        assert "PicklingError" in scheduler.stats.last_error


class TestSchedulerFailureBackoff:
    def test_backoff_doubles_per_consecutive_failure(self):
        host = NodeHost()
        dice = _FlakyDice(failing_calls=(1, 2, 3, 4))
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=10.0))
        scheduler.start()
        host.run_until(15.0)          # failure 1 at t=10
        assert scheduler.stats.backoff_seconds == pytest.approx(20.0)
        assert dice.calls == 1
        host.run_until(35.0)          # failure 2 at t=30
        assert scheduler.stats.backoff_seconds == pytest.approx(40.0)
        assert dice.calls == 2
        host.run_until(75.0)          # failure 3 at t=70
        assert scheduler.stats.backoff_seconds == pytest.approx(80.0)
        assert dice.calls == 3
        scheduler.stop()

    def test_backoff_capped(self):
        host = NodeHost()
        dice = _FlakyDice(failing_calls=tuple(range(1, 20)))
        scheduler = OnlineScheduler(
            host,
            dice,
            ScheduleConfig(interval=10.0, failure_backoff_cap=25.0),
        )
        scheduler.start()
        # Delays: 20 (min(25, 20)), then 25 forever after.
        host.run_until(150.0)
        scheduler.stop()
        assert scheduler.stats.backoff_seconds == pytest.approx(25.0)
        # t=10, 30, 55, 80, 105, 130 -> six failures by t=150.
        assert scheduler.stats.rounds_failed == 6

    def test_default_cap_is_sixteen_intervals(self):
        host = NodeHost()
        dice = _FlakyDice(failing_calls=tuple(range(1, 20)))
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=10.0))
        scheduler.start()
        # 20, 40, 80, 160, then pinned at 160 (= interval * 16).
        host.run_until(500.0)
        scheduler.stop()
        assert scheduler.stats.backoff_seconds == pytest.approx(160.0)

    def test_success_resets_backoff(self):
        host = NodeHost()
        dice = _FlakyDice(failing_calls=(1, 2))
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=10.0))
        scheduler.start()
        # Failures at t=10, 30; success at t=70 clears the streak and
        # restores the plain interval (next round fires at t=80).
        host.run_until(75.0)
        assert scheduler.stats.rounds_fired == 1
        assert scheduler.stats.backoff_seconds == 0.0
        host.run_until(85.0)
        scheduler.stop()
        assert scheduler.stats.rounds_fired == 2


class TestThroughputProbe:
    def test_probe_measures(self):
        with ThroughputProbe() as probe:
            total = sum(range(10_000))
        probe.updates_processed = 100
        assert probe.wall_seconds > 0
        assert probe.updates_per_second > 0

    def test_zero_wall_time(self):
        probe = ThroughputProbe()
        assert probe.updates_per_second == 0.0

    def test_measure_throughput_counts_router_updates(self):
        from repro.core import get_scenario

        scenario = get_scenario("fig2").build(
            filter_mode="correct", prefix_count=200, update_count=20
        )
        probe = measure_throughput(scenario.host, scenario.provider.counters)
        assert probe.updates_processed > 0
        assert probe.updates_per_second > 0
