#!/usr/bin/env python3
"""Replicating the YouTube/Pakistan-Telecom hijack study (paper section 4.2).

The 2008 incident had two compounded errors:

1. Pakistan Telecom announced a more-specific route for YouTube's prefix
   that it only meant to blackhole internally;
2. its upstream provider, PCCW, had no customer route filters, so the
   announcement spread Internet-wide and diverted YouTube's traffic.

This example runs DiCE against the provider in three filtering
configurations and shows that DiCE flags the hole *before* any incident:
it reports exactly which installed prefixes the customer could hijack.

Run:  python examples/route_leak_detection.py
"""

from repro.concolic import ExplorationBudget
from repro.core import get_scenario
from repro.util.ip import Prefix


def investigate(filter_mode: str) -> None:
    banner = {
        "correct": "correct customer filter (best common practice)",
        "erroneous": "erroneous filter (partially correct, over-broad disjunct)",
        "missing": "no filter at all (PCCW's mistake)",
    }[filter_mode]
    print(f"\n=== Provider with {banner} ===")

    scenario = get_scenario("fig2").build(
        filter_mode=filter_mode, prefix_count=2_000, update_count=150
    )
    scenario.converge()

    report = scenario.dice.run_round(
        peer="customer", budget=ExplorationBudget(max_executions=32)
    )
    assert report is not None
    leaked = report.leaked_prefixes()
    print(f"exploration: {report.exploration.executions} executions, "
          f"{report.exploration.unique_paths} unique paths, "
          f"{report.exploration.wall_seconds:.2f}s")
    if not leaked:
        print("DiCE result: no leakable prefixes — the filter holds.")
        return
    print(f"DiCE result: {len(leaked)} prefixes can be leaked by the customer.")
    print("sample findings (victim prefix, rightful origin -> hijacker):")
    for finding in report.hijack_findings()[:5]:
        print(f"  {finding.prefix}  AS{finding.expected_origin} -> "
              f"AS{finding.observed_origin}  via input {dict(finding.assignment)}")
    # The sub-prefix (YouTube-style) case: a more-specific of an installed
    # prefix is hijackable even though it is not itself in the table.
    victims = [f.prefix for f in report.hijack_findings() if f.prefix]
    coarse = [p for p in victims if p.length <= 20]
    if coarse:
        parent = coarse[0]
        child = parent.subnets()[0]
        print(f"\nsub-prefix check: {parent} is installed; a rogue more-specific "
              f"{child} would also be accepted (longest-prefix match wins).")


def main() -> None:
    print("DiCE route-leak detection across provider filter configurations")
    for mode in ("correct", "erroneous", "missing"):
        investigate(mode)
    print(
        "\nSummary: with correct filtering nothing leaks; with the erroneous\n"
        "filter the /16../24 hole leaks most of the table; with no filter\n"
        "every foreign prefix is hijackable — the PCCW failure mode that\n"
        "took YouTube offline. DiCE names the exact prefix ranges, which is\n"
        "what the upstream operator needs to install the missing filter."
    )


if __name__ == "__main__":
    main()
