"""Tests for the serial fallback executor and executor selection."""

import concurrent.futures

import pytest

from repro.parallel.executors import SerialExecutor, make_executor


def double(x):
    return x * 2


def boom():
    raise ValueError("boom")


class TestSerialExecutor:
    def test_runs_inline_in_submission_order(self):
        order = []

        def record(i):
            order.append(i)
            return i

        with SerialExecutor() as executor:
            futures = [executor.submit(record, i) for i in range(5)]
        assert order == [0, 1, 2, 3, 4]
        assert [f.result() for f in futures] == [0, 1, 2, 3, 4]

    def test_exceptions_delivered_via_future(self):
        with SerialExecutor() as executor:
            future = executor.submit(boom)
        assert isinstance(future.exception(), ValueError)
        with pytest.raises(ValueError):
            future.result()

    def test_submit_after_shutdown_rejected(self):
        executor = SerialExecutor()
        executor.shutdown()
        with pytest.raises(RuntimeError):
            executor.submit(double, 1)

    def test_futures_are_real_futures(self):
        with SerialExecutor() as executor:
            future = executor.submit(double, 21)
        assert isinstance(future, concurrent.futures.Future)
        assert future.done()
        assert future.result() == 42


class TestMakeExecutor:
    def test_single_worker_is_serial(self):
        executor, is_pool, reason = make_executor(1)
        assert isinstance(executor, SerialExecutor)
        assert not is_pool
        assert reason == ""

    def test_force_serial_overrides_worker_count(self):
        executor, is_pool, reason = make_executor(8, force_serial=True)
        assert isinstance(executor, SerialExecutor)
        assert not is_pool
        assert reason == ""

    def test_multi_worker_gets_a_process_pool(self):
        executor, is_pool, reason = make_executor(2)
        try:
            if is_pool:
                assert reason == ""
                assert executor.submit(double, 3).result() == 6
            else:  # host cannot fork: the fallback must still work and say why
                assert isinstance(executor, SerialExecutor)
                assert reason != ""
        finally:
            executor.shutdown()


class TestRunJobsSalvage:
    def test_broken_pool_salvages_unfinished_jobs_only(self, monkeypatch):
        """Completed futures keep their results; only missing ones re-run."""
        from repro.parallel import explorer as explorer_mod

        executed = []

        class FlakyExecutor:
            def submit(self, fn, job):
                future = concurrent.futures.Future()
                if job == "b":  # this job's worker got killed
                    future.set_exception(
                        concurrent.futures.process.BrokenProcessPool("worker died")
                    )
                else:
                    executed.append(("pool", job))
                    future.set_result(fn(job))
                return future

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                pass

        monkeypatch.setattr(
            explorer_mod, "make_executor",
            lambda workers, force_serial=False: (FlakyExecutor(), True, ""),
        )

        def work(job):
            return job.upper()

        results, used_processes, reason = explorer_mod._run_jobs(
            ["a", "b", "c"], work, workers=4, force_serial=False
        )
        assert results == ["A", "B", "C"]
        assert not used_processes
        assert "BrokenProcessPool" in reason
        # "a" and "c" ran in the (fake) pool exactly once; only "b" was salvaged.
        assert executed == [("pool", "a"), ("pool", "c")]
