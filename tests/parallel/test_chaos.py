"""Resilience-layer tests: chaos plans, the supervisor, degraded caches.

The acceptance pin for the resilience PR lives here: under a chaos plan
that kills one worker mid-stream and hangs another past its deadline
(``kill-and-hang``), the stream completes, the pool returns to its full
worker count (restarts counted), no job is lost, and ``finding_keys()``
is identical to the serial run.  The federation-level parity suite in
``tests/core/test_federation_chaos.py`` repeats the parity half on the
line-3 and tiered-8 topologies.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concolic.engine import ExplorationBudget
from repro.parallel import (
    CHAOS_PLANS,
    ChaosEvent,
    ChaosPlan,
    StreamingExplorer,
    WorkerSupervisor,
    get_chaos_plan,
    list_chaos_plans,
    shutdown_cache_managers,
    start_sharded_cache,
)
from repro.parallel.chaos import CHAOS_KINDS

BUDGET = ExplorationBudget(max_executions=10)


def finding_keys(report):
    return frozenset(f.dedup_key() for f in report.findings())


def open_stream(router, seeds, chaos=None, **kwargs):
    """Start a stream, submit every seed, return it *undrained*."""
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("restart_backoff", 0.01)
    stream = StreamingExplorer(
        budget=BUDGET,
        queue_capacity=max(16, len(seeds)),
        chaos=chaos,
        **kwargs,
    )
    stream.start(router)
    for peer, observed in seeds:
        stream.submit(peer, observed)
    return stream


@pytest.fixture(scope="module")
def seeds(erroneous_scenario):
    return erroneous_scenario.dice.batch_seeds(all_seeds=True)[:6]


@pytest.fixture(scope="module")
def serial_keys(erroneous_scenario, seeds):
    stream = open_stream(
        erroneous_scenario.provider, seeds, workers=1, force_serial=True
    )
    report = stream.close()
    assert not report.errors
    return finding_keys(report)


class TestChaosPlanRegistry:
    def test_registered_plans_resolve(self):
        for name in CHAOS_PLANS:
            plan = get_chaos_plan(name)
            assert plan.name == name
            assert plan.events
            assert plan.description

    def test_unknown_plan_names_the_known_ones(self):
        with pytest.raises(ValueError, match="kill-one-worker"):
            get_chaos_plan("no-such-plan")

    def test_list_is_sorted_name_description_pairs(self):
        listed = list_chaos_plans()
        assert [name for name, _ in listed] == sorted(CHAOS_PLANS)
        assert all(desc for _, desc in listed)

    def test_event_validation(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosEvent(kind="set-on-fire", at_job=1)
        with pytest.raises(ValueError, match="1-based"):
            ChaosEvent(kind="kill-worker", at_job=0)
        with pytest.raises(ValueError, match="seconds > 0"):
            ChaosEvent(kind="hang-job", at_job=1, seconds=0.0)
        with pytest.raises(ValueError, match="worker slot"):
            ChaosEvent(kind="kill-worker", at_job=1, worker=-2)
        # -1 is HIGHEST_SLOT: "whichever live slot is highest at fire time".
        elastic = ChaosEvent(kind="kill-worker", at_job=1, worker=-1)
        assert "highest live worker" in elastic.describe()

    def test_plan_override_validation(self):
        event = ChaosEvent(kind="kill-worker", at_job=1)
        with pytest.raises(ValueError, match="job_deadline"):
            ChaosPlan(name="p", events=(event,), job_deadline=0.0)
        with pytest.raises(ValueError, match="retry_budget"):
            ChaosPlan(name="p", events=(event,), retry_budget=-1)
        with pytest.raises(ValueError, match="needs a name"):
            ChaosPlan(name="", events=(event,))

    def test_attached_vs_dispatch_events(self):
        hang = ChaosEvent(kind="hang-job", at_job=3, seconds=5.0)
        drop = ChaosEvent(kind="drop-result", at_job=2)
        kill = ChaosEvent(kind="kill-worker", at_job=2)
        assert hang.attaches and drop.attaches and not kill.attaches
        assert hang.directive().hang_seconds == 5.0
        assert drop.directive().drop_result
        with pytest.raises(ValueError, match="do not attach"):
            kill.directive()

    def test_events_at_matches_dispatch_clock(self):
        plan = get_chaos_plan("kill-and-hang")
        assert [e.kind for e in plan.events_at(2)] == ["kill-worker"]
        assert [e.kind for e in plan.events_at(4)] == ["hang-job"]
        assert plan.events_at(3) == []

    def test_only_sticky_plans_quarantine(self):
        assert get_chaos_plan("poison-job").quarantines
        for name in CHAOS_PLANS:
            if name != "poison-job":
                assert not get_chaos_plan(name).quarantines, name

    def test_every_kind_is_covered_by_a_registered_plan(self):
        covered = {e.kind for plan in CHAOS_PLANS.values() for e in plan.events}
        assert covered == set(CHAOS_KINDS)


class TestWorkerSupervisor:
    @given(
        seed=st.integers(0, 2**32 - 1),
        slot=st.integers(0, 7),
        attempt=st.integers(0, 12),
    )
    @settings(deadline=None, max_examples=60)
    def test_backoff_deterministic_and_jitter_bounded(self, seed, slot, attempt):
        sup = WorkerSupervisor(seed=seed)
        delay = sup.backoff_delay(slot, attempt)
        # Same (seed, slot, attempt) -> bit-identical schedule.
        assert delay == WorkerSupervisor(seed=seed).backoff_delay(slot, attempt)
        base = min(sup.backoff_cap, sup.backoff * 2.0**attempt)
        assert 0.5 * base <= delay <= 1.5 * base

    @given(seed=st.integers(0, 2**32 - 1), slot=st.integers(0, 7))
    @settings(deadline=None, max_examples=30)
    def test_backoff_never_exceeds_cap(self, seed, slot):
        sup = WorkerSupervisor(backoff=0.5, backoff_cap=2.0, seed=seed)
        for attempt in range(10):
            assert sup.backoff_delay(slot, attempt) <= 2.0 * 1.5

    def test_note_death_schedules_then_respawn_clears(self):
        sup = WorkerSupervisor(max_restarts=3, backoff=0.05, seed=7)
        assert sup.note_death(0, now=100.0)
        assert sup.pending
        assert sup.due_slots(100.0) == []          # jittered delay > 0
        assert sup.due_slots(100.0 + 1.0) == [0]   # well past 1.5 * backoff
        assert sup.note_death(0, now=100.0)        # idempotent while pending
        sup.respawned(0)
        assert not sup.pending
        assert not sup.exhausted

    def test_restart_budget_exhausts(self):
        sup = WorkerSupervisor(max_restarts=1, seed=7)
        assert sup.note_death(0, now=0.0)
        sup.respawned(0)
        assert not sup.note_death(0, now=1.0)
        assert 0 in sup.exhausted
        assert not sup.pending

    def test_zero_restarts_means_immediately_exhausted(self):
        sup = WorkerSupervisor(max_restarts=0, seed=7)
        assert not sup.note_death(0, now=0.0)
        assert 0 in sup.exhausted

    def test_failed_spawn_burns_the_attempt(self):
        sup = WorkerSupervisor(max_restarts=2, seed=7)
        assert sup.note_death(0, now=0.0)
        assert sup.respawn_failed(0, now=0.0)      # attempt 1 booked
        assert not sup.respawn_failed(0, now=0.0)  # attempt 2 -> exhausted
        assert 0 in sup.exhausted

    def test_validation(self):
        with pytest.raises(ValueError, match="max_restarts"):
            WorkerSupervisor(max_restarts=-1)
        with pytest.raises(ValueError, match="backoff"):
            WorkerSupervisor(backoff=0.0)
        with pytest.raises(ValueError, match="backoff"):
            WorkerSupervisor(backoff=1.0, backoff_cap=0.5)


class TestCacheDegradation:
    def test_healthy_info_shape(self):
        cache, managers = start_sharded_cache(2)
        try:
            assert len(managers) == 2
            cache.put(bytes([0, 1]), ("model", False))
            cache.put(bytes([1, 1]), ("model", False))
            info = cache.info()
            assert info["shards"] == 2
            assert info["alive_shards"] == 2
            assert info["degraded_shards"] == 0
            assert not info["degraded"]
            assert [s["alive"] for s in info["per_shard"]] == [True, True]
            assert sum(s["entries"] for s in info["per_shard"]) == 2
        finally:
            shutdown_cache_managers(managers)

    def test_dead_shard_degrades_to_l1_and_is_tracked(self):
        cache, managers = start_sharded_cache(2)
        try:
            key0, key1 = bytes([0, 7]), bytes([1, 7])
            cache.put(key0, ("m0", False))
            cache.put(key1, ("m1", False))
            # A worker's view: same shards, empty L1 (pickle round-trip
            # before the kill so the proxies are already connected).
            clone = pickle.loads(pickle.dumps(cache))
            managers[0]._process.terminate()
            managers[0]._process.join(2.0)

            assert clone.get(key0) is None          # dead shard -> miss
            assert clone.degraded
            assert clone.degraded_shards == 1
            assert clone.degraded_ops >= 1
            clone.put(key0, ("m0", False))          # skipped, counted
            assert clone.degraded_ops >= 2
            assert clone.get(key0) == ("m0", False)  # L1 still serves
            assert clone.get(key1) == ("m1", False)  # live shard untouched

            info = clone.info()
            assert info["degraded"] and info["degraded_shards"] == 1
            assert info["per_shard"][0]["alive"] is False
            assert info["per_shard"][0]["entries"] is None
            assert info["per_shard"][1]["alive"] is True
        finally:
            shutdown_cache_managers(managers)

    def test_shared_size_marks_dead_shards(self):
        cache, managers = start_sharded_cache(2)
        try:
            clone = pickle.loads(pickle.dumps(cache))
            managers[1]._process.terminate()
            managers[1]._process.join(2.0)
            clone.shared_size()
            assert clone.degraded_shards == 1
        finally:
            shutdown_cache_managers(managers)

    def test_shutdown_is_idempotent(self):
        cache, managers = start_sharded_cache(2)
        shutdown_cache_managers(managers)
        shutdown_cache_managers(managers)  # second call must not raise


def _require_processes(stream):
    if stream._result_queue is None:
        stream.close()
        pytest.skip("no process workers on this host")


class TestSupervisedRecovery:
    def test_kill_one_worker_respawns_and_keeps_parity(
        self, erroneous_scenario, seeds, serial_keys
    ):
        stream = open_stream(
            erroneous_scenario.provider, seeds, chaos=get_chaos_plan("kill-one-worker")
        )
        _require_processes(stream)
        stream.drain()
        # The pool is back at full strength before close, not shrunk.
        assert len(stream._alive_process_workers()) == 2
        report = stream.close()
        assert report.workers_restarted >= 1
        assert report.jobs_completed == len(seeds)
        assert not report.quarantined
        assert report.chaos_events
        assert finding_keys(report) == serial_keys

    def test_hang_detection_kills_and_retries(
        self, erroneous_scenario, seeds, serial_keys
    ):
        stream = open_stream(
            erroneous_scenario.provider, seeds, chaos=get_chaos_plan("hang-one-worker")
        )
        _require_processes(stream)
        report = stream.close()
        assert report.hangs_detected >= 1
        assert report.jobs_retried >= 1
        assert report.jobs_completed == len(seeds)
        assert not report.quarantined
        assert finding_keys(report) == serial_keys

    def test_dropped_result_redispatched_by_deadline_sweep(
        self, erroneous_scenario, seeds, serial_keys
    ):
        stream = open_stream(
            erroneous_scenario.provider, seeds, chaos=get_chaos_plan("drop-result")
        )
        _require_processes(stream)
        report = stream.close()
        assert report.hangs_detected >= 1   # idle-worker, missing-result case
        assert report.jobs_retried >= 1
        assert report.jobs_completed == len(seeds)
        assert finding_keys(report) == serial_keys

    def test_poison_job_quarantined_without_wedging(
        self, erroneous_scenario, seeds, serial_keys
    ):
        stream = open_stream(
            erroneous_scenario.provider, seeds, chaos=get_chaos_plan("poison-job")
        )
        _require_processes(stream)
        report = stream.close(timeout=120.0)  # a wedge fails loudly, not forever
        assert len(report.quarantined) == 1
        poisoned = report.quarantined[0]
        # retries counts hang detections: budget-many retries, then the
        # final over-budget detection that tips the job into quarantine.
        assert poisoned.retries == get_chaos_plan("poison-job").retry_budget + 1
        assert "retry budget" in poisoned.reason
        assert report.jobs_completed == len(seeds) - 1
        # The quarantined job is a hole, never an invention.
        assert finding_keys(report) <= serial_keys

    def test_cache_manager_kill_degrades_not_fails(
        self, erroneous_scenario, seeds, serial_keys
    ):
        stream = open_stream(
            erroneous_scenario.provider, seeds,
            chaos=get_chaos_plan("kill-cache-manager"),
        )
        _require_processes(stream)
        report = stream.close()
        assert report.jobs_completed == len(seeds)
        assert report.cache_shards >= 1
        assert report.degraded_shards == report.cache_shards
        assert finding_keys(report) == serial_keys

    def test_kill_and_hang_acceptance(
        self, erroneous_scenario, seeds, serial_keys
    ):
        """The PR's acceptance criterion, end to end: one worker killed
        mid-stream and another hung past its deadline — the stream still
        completes, the pool returns to full strength, no job is lost,
        and the finding set is identical to the serial run."""
        stream = open_stream(
            erroneous_scenario.provider, seeds, chaos=get_chaos_plan("kill-and-hang")
        )
        _require_processes(stream)
        stream.drain()
        assert len(stream._alive_process_workers()) == 2
        report = stream.close()
        assert report.workers_restarted >= 1
        assert report.hangs_detected >= 1
        assert report.jobs_retried >= 1
        assert not report.quarantined
        assert report.jobs_completed == len(seeds)      # no job lost
        assert len(report.chaos_events) >= 2
        assert finding_keys(report) == serial_keys
        summary = report.summary()
        assert summary["workers_restarted"] == report.workers_restarted
        assert summary["jobs_quarantined"] == 0

    def test_chaos_disabled_without_process_workers(
        self, erroneous_scenario, seeds, serial_keys
    ):
        """Inline fallback can't host worker faults: the plan is dropped
        (recorded, not silently) and the run stays a plain serial one."""
        stream = open_stream(
            erroneous_scenario.provider, seeds,
            workers=1, force_serial=True,
            chaos=get_chaos_plan("kill-one-worker"),
        )
        report = stream.close()
        assert stream.chaos is None
        assert any("disabled" in event for event in report.chaos_events)
        assert report.jobs_completed == len(seeds)
        assert finding_keys(report) == serial_keys
