"""PAR — executions/sec scaling of parallel multi-seed exploration.

The paper's deployment model runs exploration "off the critical path" on
spare cores (sections 3.2, 4.1) and notes the engine "can execute
multiple explorations in parallel"; the sequential prototype explored
one seed per round in-process.  This benchmark measures what the
``repro.parallel`` subsystem buys:

* **worker scaling** — executions/sec over a batch of fig1-family
  exploration jobs at 1 vs. 4 worker processes (the wide variant of the
  fig1 handler keeps every session execution-budget-bound, so the
  measurement reflects exploration throughput, not pool startup);
* **determinism** — the same batch yields identical execution counts
  and outcomes regardless of worker count;
* **constraint-cache effectiveness** — duplicate seeds in a batch are
  solved once, not once per session;
* **end-to-end sessions** — a full checkpoint-clone-explore batch over
  the Figure 2 scenario's observed seed buffers.

Speedup assertions are gated on the host's core count: a process pool
cannot beat serial execution on a single-core box, and pretending
otherwise would make the benchmark lie.  CI runners provide the cores.
Set ``REPRO_BENCH_SMOKE=1`` for a tiny-budget smoke run (used by CI to
keep perf scripts from rotting without paying the full measurement).
"""

import os
import time

import pytest

from repro.concolic import ExplorationBudget
from repro.core import get_scenario
from repro.parallel import EngineBatch, ParallelExplorer
from repro.parallel.workloads import (
    FIG1_OUTCOMES,
    fig1_handler,
    fig1_spec,
    wide_filter_handler,
    wide_filter_spec,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
CPUS = os.cpu_count() or 1

JOBS = 4 if SMOKE else 8
BUDGET = ExplorationBudget(
    max_executions=80 if SMOKE else 400,
    max_solver_queries=(80 if SMOKE else 400) * 16,
)


def run_engine_batch(workers, force_serial=False, constraint_cache=True):
    batch = EngineBatch(
        workers=workers, force_serial=force_serial, constraint_cache=constraint_cache
    )
    programs = [(wide_filter_handler, wide_filter_spec()) for _ in range(JOBS)]
    run = batch.explore(programs, budget=BUDGET)
    executions = run.total_executions
    eps = executions / run.wall_seconds if run.wall_seconds > 0 else 0.0
    return run, executions, eps


@pytest.mark.benchmark(group="parallel")
def test_parallel_workers_scale_executions_per_second(benchmark, paper_rows):
    """4 workers vs. 1 on the fig1-family workload (the tentpole metric).

    The constraint cache is off for both sides: identical jobs would let
    the shared cache skip most solver work, and the cross-process cache
    funnels through a single manager process — either effect would make
    the scaling number measure caching, not workers.
    """
    _, serial_execs, serial_eps = run_engine_batch(workers=1, constraint_cache=False)

    pool_run, pool_execs, pool_eps = benchmark.pedantic(
        run_engine_batch,
        kwargs={"workers": 4, "constraint_cache": False},
        rounds=1,
        iterations=1,
    )
    speedup = pool_eps / serial_eps if serial_eps else 0.0

    # Same batch, same results — parallelism must not change the outcome.
    assert pool_execs == serial_execs

    paper_rows.add(
        "PAR", "executions/sec: 4 workers vs 1",
        "runs on spare cores, off the critical path (sec 3.2)",
        f"{pool_eps:.0f} vs {serial_eps:.0f} ({speedup:.2f}x, {CPUS} cores)",
        note="smoke budget" if SMOKE else pool_run.fallback_reason,
    )
    if not pool_run.used_processes:
        pytest.skip(
            "process pool unavailable, batch ran on the serial fallback "
            f"({pool_run.fallback_reason or 'forced serial'}); "
            "speedup not attributable to workers"
        )
    if SMOKE or CPUS < 2:
        pytest.skip(
            f"speedup assertion needs >=2 cores and a full budget "
            f"(cores={CPUS}, smoke={SMOKE}); measured {speedup:.2f}x"
        )
    floor = 1.5 if CPUS >= 4 else 1.2
    assert speedup >= floor, (
        f"4 workers gave {speedup:.2f}x over 1 worker on {CPUS} cores "
        f"(expected >= {floor}x)"
    )


@pytest.mark.benchmark(group="parallel")
def test_parallel_batch_deterministic_across_executors(benchmark, paper_rows):
    """Pool, serial fallback, and 1-worker runs agree execution for execution."""
    pool_run, pool_execs, _ = benchmark.pedantic(
        run_engine_batch, kwargs={"workers": 2}, rounds=1, iterations=1
    )
    serial_run, serial_execs, _ = run_engine_batch(workers=4, force_serial=True)
    assert pool_execs == serial_execs
    assert [r.unique_paths for r in pool_run.reports] == [
        r.unique_paths for r in serial_run.reports
    ]
    paper_rows.add(
        "PAR", "batch outcome independent of worker count",
        "n/a (design invariant)",
        f"yes: {pool_execs} executions, "
        f"{sum(r.unique_paths for r in pool_run.reports)} unique paths either way",
    )


@pytest.mark.benchmark(group="parallel")
def test_constraint_cache_dedups_identical_negations(benchmark, paper_rows):
    """Duplicate seeds in a batch hit the shared cache instead of the solver."""
    def run():
        # Serial executor isolates the measurement from pool scheduling;
        # all jobs are identical, the worst (and common) duplicate case.
        return run_engine_batch(workers=1, constraint_cache=True)

    batch_run, _, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    reports = batch_run.reports
    hits = sum(r.solver_stats.get("cache_hits", 0) for r in reports)
    misses = sum(r.solver_stats.get("cache_misses", 0) for r in reports)
    assert hits > 0, "identical sessions produced no cache hits"
    # Sessions 2..N should resolve (nearly) every query from session 1's work.
    assert hits >= misses * (len(reports) - 2), (hits, misses)
    paper_rows.add(
        "PAR", "constraint-cache hit rate on duplicate seeds",
        "identical negations solved once (design goal)",
        f"{hits}/{hits + misses} ({hits / (hits + misses):.0%})",
    )


@pytest.mark.benchmark(group="parallel")
def test_fig1_outcomes_reached_through_worker_pool(benchmark, paper_rows):
    """The exact fig1 handler still reaches all 8 outcomes via workers."""
    def run():
        batch = EngineBatch(workers=2)
        reports, _ = batch.explore(
            [(fig1_handler, fig1_spec())],
            budget=ExplorationBudget(max_executions=128),
        )
        return reports[0]

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    # keep_results=False in workers: verify via coverage, not return values.
    assert report.unique_paths >= len(FIG1_OUTCOMES)
    assert report.coverage.fully_covered_sites >= 6
    paper_rows.add(
        "PAR", "fig1 path enumeration through a worker pool",
        "all reachable paths found by negation",
        f"{report.unique_paths} unique paths, "
        f"{report.coverage.covered_outcomes} branch outcomes",
    )


@pytest.mark.benchmark(group="parallel")
def test_parallel_session_batch_end_to_end(benchmark, paper_rows):
    """Checkpoint-clone-explore across all observed seed buffers (fig2)."""
    scenario = get_scenario("fig2").build(
        filter_mode="erroneous",
        prefix_count=150 if SMOKE else 400,
        update_count=30 if SMOKE else 60,
    )
    scenario.converge()
    seeds = scenario.dice.batch_seeds(all_seeds=True)
    budget = ExplorationBudget(max_executions=8 if SMOKE else 16)

    def run():
        explorer = ParallelExplorer(workers=2)
        return explorer.explore_batch(scenario.provider, seeds, budget=budget)

    batch = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(batch.reports) == len(seeds)
    assert batch.leaked_prefixes(), "erroneous filter produced no leak findings"
    paper_rows.add(
        "PAR", "multi-seed session batch (all ring buffers)",
        "one seed per round in the prototype",
        f"{len(batch.reports)} sessions, {batch.total_executions} executions, "
        f"{batch.executions_per_second:.0f} exec/s, "
        f"{len(batch.leaked_prefixes())} leakable prefixes",
    )
