"""Tests for the AS-graph model, policy synthesis, and materialization."""

import pytest

from repro.bgp.config import parse_config
from repro.topology import AsGraph, TAG, build_routers, render_config
from repro.topology.generators import line, ring, star, tiered
from repro.util.errors import TopologyError
from repro.util.ip import Prefix

P = Prefix.parse


def small_hierarchy() -> AsGraph:
    """provider -> (left, right) -> stub: a diamond-free 2-level tree."""
    graph = AsGraph("tree")
    graph.add_as("top", role="tier1", networks=(P("10.1.0.0/16"),))
    graph.add_as("left", role="tier2", networks=(P("10.2.0.0/16"),))
    graph.add_as("right", role="tier2", networks=(P("10.3.0.0/16"),))
    graph.add_as("leaf", networks=(P("10.4.0.0/16"),))
    graph.transit("top", "left")
    graph.transit("top", "right")
    graph.transit("left", "leaf")
    graph.peer("left", "right")
    return graph


class TestGraphModel:
    def test_relations_and_neighbors(self):
        graph = small_hierarchy()
        assert graph.customers_of("top") == ["left", "right"]
        assert graph.providers_of("leaf") == ["left"]
        assert graph.peers_of("left") == ["right"]
        relations = {peer: rel for peer, rel, _ in graph.neighbors("left")}
        assert relations == {"top": "provider", "leaf": "customer", "right": "peer"}

    def test_customer_cone_is_recursive(self):
        graph = small_hierarchy()
        assert graph.customer_cone("leaf") == [P("10.4.0.0/16")]
        assert set(graph.customer_cone("left")) == {P("10.2.0.0/16"), P("10.4.0.0/16")}
        assert len(graph.customer_cone("top")) == 4

    def test_validate_accepts_well_formed(self):
        small_hierarchy().validate()

    def test_validate_rejects_transit_cycle(self):
        graph = AsGraph("cycle")
        for name in ("a", "b", "c"):
            graph.add_as(name, networks=(P(f"10.{ord(name) - 96}.0.0/16"),))
        graph.transit("a", "b")
        graph.transit("b", "c")
        graph.transit("c", "a")
        with pytest.raises(TopologyError, match="cycle"):
            graph.validate()

    def test_validate_rejects_disconnected(self):
        graph = AsGraph("islands")
        graph.add_as("a", networks=(P("10.1.0.0/16"),))
        graph.add_as("b", networks=(P("10.2.0.0/16"),))
        graph.add_as("c", networks=(P("10.3.0.0/16"),))
        graph.transit("a", "b")
        with pytest.raises(TopologyError, match="disconnected"):
            graph.validate()

    def test_validate_rejects_duplicate_asn_and_prefix(self):
        graph = AsGraph("dup-asn")
        graph.add_as("a", asn=65001)
        graph.add_as("b", asn=65001)
        graph.transit("a", "b")
        with pytest.raises(TopologyError, match="ASN"):
            graph.validate()
        moas = AsGraph("dup-prefix")
        moas.add_as("a", networks=(P("10.1.0.0/16"),))
        moas.add_as("b", networks=(P("10.1.0.0/16"),))
        moas.transit("a", "b")
        with pytest.raises(TopologyError, match="originated by both"):
            moas.validate()

    def test_edge_bookkeeping(self):
        graph = small_hierarchy()
        edge = graph.edge_between("left", "top")
        assert edge is not None and edge.relation_of("top") == "customer"
        assert graph.latency("left", "top") == edge.latency
        assert graph.latency("top", "leaf", default=0.5) == 0.5  # no edge
        with pytest.raises(TopologyError):
            graph.transit("top", "left")  # duplicate pair
        with pytest.raises(TopologyError):
            graph.peer("top", "top")

    def test_origin_lookup(self):
        graph = small_hierarchy()
        assert graph.origin_of(P("10.3.0.0/16")) == "right"
        assert graph.origin_of(P("10.99.0.0/16")) is None


class TestConfigSynthesis:
    def test_rendered_config_parses_and_references_resolve(self):
        graph = small_hierarchy()
        for name in graph.nodes:
            config = parse_config(render_config(graph, name))
            assert config.asn == graph.nodes[name].asn
            assert set(config.neighbors) == {
                peer for peer, _, _ in graph.neighbors(name)
            }

    def test_correct_mode_renders_cone_prefix_set(self):
        graph = small_hierarchy()
        graph.nodes["left"].filter_mode = "correct"
        text = render_config(graph, "left")
        assert "prefix-set CONE-leaf" in text
        assert "10.4.0.0/16 le 24;" in text
        config = parse_config(text)
        assert config.neighbors["leaf"].import_filter == "cust-in-leaf"

    def test_erroneous_mode_renders_the_length_hole(self):
        graph = small_hierarchy()
        graph.nodes["left"].filter_mode = "erroneous"
        text = render_config(graph, "left")
        assert "net.len >= 16 and net.len <= 24" in text

    def test_gao_rexford_tags_present(self):
        text = render_config(small_hierarchy(), "left")
        for tag in TAG.values():
            assert str(tag) in text
        config = parse_config(text)
        assert config.neighbors["top"].export_filter == "export-up"
        assert config.neighbors["leaf"].export_filter == "export-down"

    def test_unknown_node_raises(self):
        with pytest.raises(TopologyError):
            render_config(small_hierarchy(), "nobody")


class TestMaterialization:
    def test_line_converges_full_visibility(self):
        graph = line(3, seed=1)
        host, routers = build_routers(graph)
        host.run()
        total = sum(len(node.networks) for node in graph.nodes.values())
        for name, router in routers.items():
            assert router.table_size() == total, name
            assert sorted(router.established_peers()) == sorted(
                peer for peer, _, _ in graph.neighbors(name)
            )

    def test_peering_ring_is_valley_free(self):
        """A peer's routes must not transit another peer (no valleys)."""
        graph = ring(4, seed=3)
        host, routers = build_routers(graph)
        host.run()
        # as0 peers with as1 and as3; as2 is two peer hops away, and
        # peer-learned routes are never re-exported to peers.
        as2_net = graph.nodes["as2"].networks[0]
        assert as2_net in routers["as1"].loc_rib
        assert as2_net not in routers["as0"].loc_rib

    def test_tiered_stub_sees_everything_through_providers(self):
        graph = tiered(2, 2, 2, seed=9)
        host, routers = build_routers(graph)
        host.run()
        total = sum(len(node.networks) for node in graph.nodes.values())
        stubs = [n.name for n in graph.nodes.values() if n.role == "stub"]
        for stub in stubs:
            assert routers[stub].table_size() == total

    def test_customer_routes_preferred_over_peer(self):
        """The local-pref ladder: a customer path beats a peer path."""
        graph = AsGraph("pref")
        graph.add_as("x", networks=(P("10.1.0.0/16"),))
        graph.add_as("y", networks=(P("10.2.0.0/16"),))
        graph.add_as("z", networks=(P("10.3.0.0/16"),))
        graph.transit("x", "z")   # z is x's customer
        graph.peer("x", "y")
        graph.peer("y", "z")
        host, routers = build_routers(graph)
        host.run()
        route = routers["x"].loc_rib.get(P("10.3.0.0/16"))
        assert route is not None
        assert route.peer == "z"  # direct customer path, not via peer y

    def test_star_validation_runs_on_build(self):
        graph = star(4, seed=0)
        graph.nodes["as1"].asn = graph.nodes["as2"].asn  # corrupt
        with pytest.raises(TopologyError):
            build_routers(graph)


class TestTransitAcyclicAtScale:
    def test_deep_transit_chain_validates_without_recursion(self):
        """A 1500-deep provider chain must not hit the recursion limit."""
        graph = AsGraph("deep-chain")
        graph.add_as("as0", networks=(P("10.1.0.0/16"),))
        for index in range(1, 1500):
            graph.add_as(f"as{index}", asn=1000 + index)
            graph.transit(f"as{index - 1}", f"as{index}")
        graph.validate()

    def test_cycle_trail_reported_from_iterative_walk(self):
        graph = AsGraph("trail")
        for name in ("a", "b", "c", "d"):
            graph.add_as(name, networks=(P(f"10.{ord(name) - 96}.0.0/16"),))
        graph.transit("a", "b")
        graph.transit("b", "c")
        graph.transit("c", "d")
        graph.transit("d", "b")
        with pytest.raises(TopologyError, match="b -> c -> d -> b"):
            graph.validate()


class TestStructuralConfigCache:
    def test_cached_config_equals_fresh_parse(self):
        """Template-patched configs are indistinguishable from parsed ones."""
        from repro.bgp.config import parse_config
        from repro.topology.generators import hierarchical
        from repro.topology.graph import clear_structural_cache, render_structured

        clear_structural_cache()
        graph = hierarchical(30, seed=9)
        for name in graph.nodes:
            structured = render_structured(graph, name)
            parsed = parse_config(render_config(graph, name))
            assert structured == parsed, name

    def test_hits_accumulate_on_identical_stubs(self):
        from repro.topology.generators import hierarchical
        from repro.topology.graph import (
            clear_structural_cache,
            render_structured,
            structural_cache_info,
        )

        clear_structural_cache()
        graph = hierarchical(40, seed=3)
        for name in graph.nodes:
            render_structured(graph, name)
        info = structural_cache_info()
        # Transit providers (cust-in filters) are ineligible; the stub
        # majority shares a handful of templates.
        assert info["hits"] > len(graph.nodes) // 2
        assert info["misses"] <= 8
        assert info["ineligible"] >= 1

    def test_customer_bearing_nodes_bypass_the_template_cache(self):
        from repro.topology.graph import _structural_key

        graph = star(4, seed=0)
        assert _structural_key(graph, "as0") is None      # has customers
        assert _structural_key(graph, "as1") is not None  # pure stub

    def test_build_routers_converges_through_the_cache(self):
        from repro.topology.generators import hierarchical
        from repro.topology.graph import clear_structural_cache

        clear_structural_cache()
        graph = hierarchical(12, seed=4)
        host, routers = build_routers(graph)
        host.run()
        for node_name, router in routers.items():
            expected = {peer for peer, _, _ in graph.neighbors(node_name)}
            assert set(router.established_peers()) == expected, node_name
