"""ABL-CKPT — exploring from live state vs replaying history.

Paper (section 2.3): "DiCE starts exploring from the current, live state
because of the desire to (i) quickly detect potential faults, and (ii)
avoid the overhead of replaying execution from initial state to reach a
desired point in the code (as we expect a large history of inputs)."

The key asymmetry: a long-running node's *input history* grows without
bound (re-announcements, flaps, path changes) while its *state* stays
bounded by the table size.  Replay-from-initial-state (what classic
model-checking-style exploration must do) pays O(history); checkpoint
resume pays O(state).  The sweep holds the table at a fixed size and
grows the update history, showing replay cost climbing while the resume
cost stays flat.
"""

import time

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.messages import UpdateMessage
from repro.bgp.nlri import NlriEntry
from repro.bgp.router import BgpRouter
from repro.checkpoint.snapshot import Checkpoint
from repro.core.isolation import restore_isolated
from repro.net.node import NodeHost
from repro.trace.routeviews import RouteViewsGenerator, TraceConfig
from repro.trace.replay import TraceReplayer
from repro.util.ip import Prefix

#: Fixed table size; what grows is the input history, not the state.
TABLE_PREFIXES = 2_000

#: Update-history lengths (the paper's "large history of inputs").
HISTORY_LENGTHS = (0, 4_000, 16_000)

ROUTER_CONFIG = """
router bgp 65010;
router-id 10.0.0.1;
neighbor internet { remote-as 64999; passive; }
"""


def make_trace(history_length):
    return RouteViewsGenerator(
        TraceConfig(
            prefix_count=TABLE_PREFIXES,
            update_count=history_length,
            # Pure churn: re-announcements and flaps, no table growth.
            p_reannounce=0.8, p_new_specific=0.0, p_withdraw=0.1, p_flap=0.1,
        )
    ).generate()


def run_history(trace):
    """Build a router and push the full dump + update history through it."""
    host = NodeHost()
    provider = host.add_node(
        "provider", lambda n, e: BgpRouter(n, e, ROUTER_CONFIG)
    )
    host.add_node(
        "internet",
        lambda n, e: TraceReplayer(
            n, e, host.sim, "provider", trace, local_as=64999, peer_as=65010
        ),
    )
    host.add_link("provider", "internet", latency=0.001)
    host.start()
    host.run()
    return host, provider


@pytest.mark.benchmark(group="abl-checkpoint")
@pytest.mark.parametrize("history", HISTORY_LENGTHS)
def test_abl_checkpoint_vs_replay(benchmark, history, paper_rows):
    trace = make_trace(history)
    host, provider = run_history(trace)  # the live node, history applied
    checkpoint = Checkpoint.capture(provider, f"abl-{history}")

    def checkpoint_resume():
        clone, _ = restore_isolated(checkpoint)
        return clone

    clone = benchmark.pedantic(checkpoint_resume, rounds=3, iterations=1)
    # Median, not mean: at history=0 the replay baseline is just a
    # scenario rebuild (now cheaper still with the config parse cache),
    # so a single GC-pause outlier in three resume rounds is enough to
    # flip the mean past it in a loaded benchmark session.
    resume_seconds = benchmark.stats.stats.median
    assert clone.table_size() == provider.table_size()

    replay_started = time.perf_counter()
    _, replayed = run_history(trace)  # replay-from-initial-state baseline
    replay_seconds = time.perf_counter() - replay_started
    assert replayed.table_size() == provider.table_size()

    speedup = replay_seconds / max(resume_seconds, 1e-9)
    paper_rows.add(
        "ABL-CKPT",
        f"history={history} updates: replay vs checkpoint-resume",
        "replay prohibitively time-consuming",
        f"{replay_seconds:.3f}s vs {resume_seconds:.3f}s ({speedup:.0f}x)",
        note=f"table fixed at {TABLE_PREFIXES} prefixes",
    )
    assert replay_seconds > resume_seconds


@pytest.mark.benchmark(group="abl-checkpoint")
def test_abl_resume_cost_flat_in_history(benchmark, paper_rows):
    """Replay cost grows with history; resume cost tracks state size only."""

    def sweep():
        resume_costs = {}
        replay_costs = {}
        for history in HISTORY_LENGTHS:
            trace = make_trace(history)
            host, provider = run_history(trace)
            checkpoint = Checkpoint.capture(provider, f"flat-{history}")
            started = time.perf_counter()
            restore_isolated(checkpoint)
            resume_costs[history] = time.perf_counter() - started
            started = time.perf_counter()
            run_history(trace)
            replay_costs[history] = time.perf_counter() - started
        return resume_costs, replay_costs

    resume_costs, replay_costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    low, high = HISTORY_LENGTHS[0], HISTORY_LENGTHS[-1]
    replay_growth = replay_costs[high] / max(replay_costs[low], 1e-9)
    resume_growth = resume_costs[high] / max(resume_costs[low], 1e-9)
    paper_rows.add(
        "ABL-CKPT",
        f"cost growth as history {low}->{high} updates (replay vs resume)",
        "replay grows with history; resume does not",
        f"{replay_growth:.1f}x vs {resume_growth:.1f}x",
    )
    assert replay_growth > 2 * resume_growth


@pytest.mark.benchmark(group="abl-checkpoint")
def test_abl_exploration_starts_from_live_state(benchmark, paper_rows):
    """Clones really resume from *current* state, not initial state."""
    trace = make_trace(1_000)
    host, provider = run_history(trace)
    # Live state advances past the trace: a fresh announcement arrives.
    live_update = UpdateMessage(
        attributes=PathAttributes(
            as_path=AsPath.sequence([64999, 7777]), next_hop=3
        ),
        nlri=[NlriEntry.from_prefix(Prefix.parse("77.77.0.0/16"))],
    )
    provider.handle_update("internet", live_update)

    checkpoint = Checkpoint.capture(provider, "fresh")

    def resume():
        clone, _ = restore_isolated(checkpoint)
        return clone

    clone = benchmark.pedantic(resume, rounds=3, iterations=1)
    assert Prefix.parse("77.77.0.0/16") in clone.loc_rib
    paper_rows.add(
        "ABL-CKPT", "clone contains post-trace live state",
        "explore from current, live state",
        "yes (latest announcement present in clone RIB)",
    )
