"""Setup shim for offline editable installs (no `wheel` package available).

Machines without the `wheel` backend cannot build the PEP 660 editable
wheels `pip install -e .` requires; run `python setup.py develop`
directly there instead (it installs the package and the `repro` console
script without pip).  All real metadata lives in pyproject.toml, which
setuptools reads from here too.
"""

from setuptools import setup

setup()
