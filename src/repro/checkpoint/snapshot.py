"""Checkpoints: fork-style snapshots of a node's state.

The paper checkpoints BIRD "by simply using the fork system call",
creating many checkpoints with a small memory footprint thanks to
copy-on-write, and isolates the child "by closing the open sockets"
(section 3.2).  Our equivalent:

* a node separates *state* (picklable: RIBs, config, session bookkeeping)
  from *runtime* (environment, live channels) and implements the
  :class:`Checkpointable` protocol;
* :meth:`Checkpoint.capture` pickles the state — the fork moment — and
  records the state's segment layout for page-level sharing accounting;
* cloning restores the pickle into a fresh node wired to an *isolated*
  environment, which is exactly "closing the open sockets".

Page accounting uses :class:`repro.util.pages.PageSet` per serialized
segment, reproducing the paper's unique-page metrics (section 4.1).
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol, runtime_checkable

from repro.concolic.env import Environment
from repro.util.errors import CheckpointError
from repro.util.pages import PAGE_SIZE, PageSet


@runtime_checkable
class Checkpointable(Protocol):
    """What a node must provide to participate in checkpointing."""

    def checkpoint_state(self) -> object:
        """A picklable object capturing the node's entire logical state."""

    def snapshot_segments(self) -> Dict[str, bytes]:
        """Serialized state split into independently-paged memory segments.

        Splitting (e.g. RIB vs. config vs. session table) keeps the page
        accounting faithful: growth in one segment must not shift — and
        spuriously dirty — pages of the others.
        """

    @classmethod
    def restore_from_state(cls, state: object, env: Environment) -> "Checkpointable":
        """Rebuild a node from ``checkpoint_state()`` output onto ``env``."""


@dataclass
class Checkpoint:
    """A captured node state: the pickle plus its page image.

    ``node_time`` is the *node's* clock (simulated seconds) at the fork
    moment; clones get their virtual clock frozen there so explored code
    observes a consistent time.  ``created_at`` is host wall time, used
    only for bookkeeping.
    """

    name: str
    state_bytes: bytes
    pages: PageSet
    node_type: type
    node_time: float = 0.0
    created_at: float = field(default_factory=time.monotonic)
    sequence: int = 0

    @classmethod
    def capture(
        cls,
        node: Checkpointable,
        name: str,
        page_size: int = PAGE_SIZE,
        sequence: int = 0,
    ) -> "Checkpoint":
        """The fork moment: snapshot ``node``'s state."""
        try:
            state_bytes = pickle.dumps(node.checkpoint_state(), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(f"state of {name!r} is not picklable: {exc}") from exc
        segments = node.snapshot_segments()
        pages = PageSet.from_segments(segments.values(), page_size)
        node_time = float(getattr(node, "now", 0.0))
        return cls(name, state_bytes, pages, type(node), node_time, sequence=sequence)

    def restore(self, env: Environment) -> Checkpointable:
        """Materialize a clone of the captured state onto ``env``.

        The clone starts with no live channels — the environment passed in
        is expected to be an isolated one, mirroring the paper's closing of
        inherited sockets in the forked child.
        """
        try:
            state = pickle.loads(self.state_bytes)
        except Exception as exc:
            raise CheckpointError(f"checkpoint {self.name!r} is corrupt: {exc}") from exc
        return self.node_type.restore_from_state(state, env)

    @property
    def size_bytes(self) -> int:
        return len(self.state_bytes)

    @property
    def page_count(self) -> int:
        return len(self.pages)


def snapshot_pages(
    node: Checkpointable, page_size: int = PAGE_SIZE
) -> PageSet:
    """The current page image of a live node or clone."""
    return PageSet.from_segments(node.snapshot_segments().values(), page_size)


def default_segments(state: object) -> Dict[str, bytes]:
    """Helper for simple nodes: one segment holding the whole state pickle."""
    return {"state": pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)}
