"""DiCE — online testing of federated and heterogeneous distributed systems.

A full Python reproduction of Canini et al., "Toward Online Testing of
Federated and Heterogeneous Distributed Systems" (USENIX ATC 2011),
including every substrate the paper's prototype relies on:

* :mod:`repro.concolic` — a concolic execution engine (the Oasis role),
* :mod:`repro.checkpoint` — fork-style checkpoints with COW page accounting,
* :mod:`repro.net` — a deterministic discrete-event network simulator,
* :mod:`repro.bgp` — a BGP-4 stack with a BIRD-like policy language,
* :mod:`repro.trace` — synthetic RouteViews traces and replay,
* :mod:`repro.core` — DiCE itself: checkpoint/clone exploration,
  fault checkers, online scheduling, federation, and privacy.

Quickstart::

    from repro.core import get_scenario
    scenario = get_scenario("fig2").build(filter_mode="erroneous")
    scenario.converge()
    report = scenario.dice.run_round()
    print(report.leaked_prefixes())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
