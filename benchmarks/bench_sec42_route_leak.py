"""LEAK (section 4.2) — detecting route leaks / origin misconfiguration.

Paper: "To replicate the IP prefix hijacking problem in our testbed, we
misconfigured customer route filtering at the Provider AS ... Then, DiCE
locally exercises all possible execution paths, which also include the
'if' statements in the configured filters.  For each exploratory message,
we check whether the announced route ... is accepted, and in this case we
detect a potential hijack if that route overrides the origin AS of a
route already in the routing table ... DiCE clearly states which prefix
ranges can be leaked."

The benchmark runs one DiCE round against each filter configuration and
reports: leaks found (correct filter must yield zero), exploration
executions, time to first detection, and the anycast-whitelist false
positive filter.
"""

import time

import pytest

from repro.concolic.engine import ExplorationBudget
from repro.core import get_scenario

SCALE = 3_000
BUDGET = ExplorationBudget(max_executions=32)


def run_leak_detection(filter_mode, anycast_whitelist=()):
    scenario = get_scenario("fig2").build(
        filter_mode=filter_mode,
        prefix_count=SCALE,
        update_count=200,
        anycast_whitelist=list(anycast_whitelist),
    )
    scenario.converge()
    started = time.perf_counter()
    report = scenario.dice.run_round(peer="customer", budget=BUDGET)
    detection_seconds = time.perf_counter() - started
    return scenario, report, detection_seconds


@pytest.mark.benchmark(group="sec42-leak")
def test_sec42_correct_filter_finds_nothing(benchmark, paper_rows):
    scenario, report, seconds = benchmark.pedantic(
        run_leak_detection, args=("correct",), rounds=1, iterations=1
    )
    assert report.leaked_prefixes() == []
    paper_rows.add(
        "LEAK", "correct customer filter: leaks found",
        "0 (filtering is the defense)", "0",
        note=f"{report.exploration.executions} executions",
    )


@pytest.mark.benchmark(group="sec42-leak")
def test_sec42_erroneous_filter_leak_detected(benchmark, paper_rows):
    scenario, report, seconds = benchmark.pedantic(
        run_leak_detection, args=("erroneous",), rounds=1, iterations=1
    )
    leaked = report.leaked_prefixes()
    assert leaked
    assert all(16 <= p.length <= 24 for p in leaked)  # exactly the filter hole
    table = scenario.provider_table_size
    paper_rows.add(
        "LEAK", "erroneous filter: hijackable prefixes found",
        "detected (prefix ranges reported)",
        f"{len(leaked)} of {table} installed prefixes",
        note=f"hole: /16../24 disjunct; {seconds:.1f}s incl. convergence",
    )
    paper_rows.add(
        "LEAK", "erroneous filter: exploration cost",
        "n/a",
        f"{report.exploration.executions} executions, "
        f"{report.exploration.solver_queries} solver queries",
    )


@pytest.mark.benchmark(group="sec42-leak")
def test_sec42_missing_filter_leaks_everything_foreign(benchmark, paper_rows):
    scenario, report, seconds = benchmark.pedantic(
        run_leak_detection, args=("missing",), rounds=1, iterations=1
    )
    leaked = report.leaked_prefixes()
    table = scenario.provider_table_size
    # Everything not originated by the provider or customer is leakable.
    foreign = sum(
        1 for prefix, route in scenario.provider.loc_rib.items()
        if route.origin_as() is not None and int(route.origin_as()) not in (65010, 65020)
    )
    coverage = len(leaked) / max(foreign, 1)
    assert coverage > 0.95
    paper_rows.add(
        "LEAK", "missing filter (PCCW case): leakable prefixes",
        "vast majority of traffic divertable",
        f"{len(leaked)}/{foreign} foreign prefixes ({coverage:.0%})",
        note="the YouTube incident's second compounded error",
    )
    paper_rows.add(
        "LEAK", "time to full leak report",
        "n/a", f"{seconds:.1f}s at {table}-prefix scale",
    )


@pytest.mark.benchmark(group="sec42-leak")
def test_sec42_anycast_whitelist_filters_false_positives(benchmark, paper_rows):
    # First find leaks, then whitelist a slice of them as anycast space.
    _, base_report, _ = run_leak_detection("missing")
    anycast = base_report.leaked_prefixes()[:25]

    def with_whitelist():
        return run_leak_detection("missing", anycast_whitelist=anycast)

    scenario, report, _ = benchmark.pedantic(with_whitelist, rounds=1, iterations=1)
    leaked = set(report.leaked_prefixes())
    assert leaked.isdisjoint(set(anycast))
    paper_rows.add(
        "LEAK", "anycast whitelist suppresses false positives",
        "DiCE can simply filter these out",
        f"{len(anycast)} whitelisted prefixes absent from findings",
    )


@pytest.mark.benchmark(group="sec42-leak")
def test_sec42_findings_are_actionable(benchmark, paper_rows):
    """Each finding carries the data an operator needs for a filter fix."""
    scenario, report, _ = benchmark.pedantic(
        run_leak_detection, args=("erroneous",), rounds=1, iterations=1
    )
    findings = report.hijack_findings()
    assert findings
    sampled = findings[0]
    assert sampled.prefix is not None
    assert sampled.peer == "customer"
    assert sampled.expected_origin not in (None, 65020)
    assert sampled.observed_origin == 65020
    assert dict(sampled.assignment)  # the concrete exploratory input
    paper_rows.add(
        "LEAK", "finding contents",
        "states which prefix ranges can be leaked",
        "prefix + victim origin + hijacker origin + concrete input",
    )
