"""Fork-style checkpointing with copy-on-write page accounting."""

from repro.checkpoint.delta import (
    CheckpointDelta,
    CheckpointImage,
    assemble_state,
    state_segments,
)
from repro.checkpoint.manager import CheckpointManager, CloneRecord, MemoryReport
from repro.checkpoint.snapshot import (
    Checkpoint,
    Checkpointable,
    default_segments,
    snapshot_pages,
)

__all__ = [
    "Checkpoint",
    "CheckpointDelta",
    "CheckpointImage",
    "CheckpointManager",
    "Checkpointable",
    "CloneRecord",
    "MemoryReport",
    "assemble_state",
    "default_segments",
    "snapshot_pages",
    "state_segments",
]
