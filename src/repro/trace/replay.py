"""Trace replay: the "rest of the Internet" node.

A :class:`TraceReplayer` is a simulated node that speaks just enough BGP
to establish a session with the device under test, pushes the full table
dump, and then plays the timed update stream.  Two pacing modes mirror
the paper's two CPU-overhead scenarios (section 4.1):

* ``compression=0`` — full speed: the entire dump and stream are sent
  as fast as the event loop drains them ("under full load (running the
  exploration while loading the routing table)");
* ``compression=1`` — real time: updates fire at trace timestamps
  ("a more realistic scenario ... replay of a real-time trace of 15
  min"); intermediate values scale the gaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bgp.attributes import encode_attributes
from repro.bgp.config import NeighborConfig
from repro.bgp.fsm import Session, SessionFsm
from repro.bgp.messages import (
    KeepaliveMessage,
    Message,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
    decode_message,
)
from repro.bgp.nlri import NlriEntry
from repro.concolic.env import Environment
from repro.net.node import SimNode
from repro.net.sim import Simulator
from repro.trace.mrt import Trace, TraceRecord
from repro.util.errors import SimulationError


@dataclass
class ReplayStats:
    """What the replayer has pushed so far."""

    dump_messages: int = 0
    update_messages: int = 0
    announced_prefixes: int = 0
    withdrawn_prefixes: int = 0
    finished_at: Optional[float] = None

    @property
    def total_messages(self) -> int:
        return self.dump_messages + self.update_messages


class TraceReplayer(SimNode):
    """Feeds a trace into a peer router over a normal BGP session."""

    def __init__(
        self,
        node_id: str,
        env: Environment,
        sim: Simulator,
        peer_id: str,
        trace: Trace,
        local_as: int,
        peer_as: int,
        compression: float = 0.0,
        dump_batch: int = 120,
    ):
        super().__init__(node_id, env)
        self.sim = sim
        self.peer_id = peer_id
        self.trace = trace
        self.compression = compression
        self.dump_batch = dump_batch
        self.stats = ReplayStats()
        neighbor = NeighborConfig(peer_id, remote_as=peer_as)
        self.session = Session(neighbor, hold_time=0)  # hold timer disabled
        self._fsm = SessionFsm(self.session, local_as, router_id=local_as)
        self._started_replay = False
        self.on_complete = None  # optional callback fired after last update

    # -- session handling ----------------------------------------------------

    def on_start(self) -> None:
        for message in self._fsm.start(self.sim.now):
            self._transmit(message)

    def on_message(self, src: str, payload: bytes) -> None:
        if src != self.peer_id:
            return
        message = decode_message(payload)
        if isinstance(message, OpenMessage):
            replies, _ = self._fsm.on_open(message, self.sim.now)
            for reply in replies:
                self._transmit(reply)
        elif isinstance(message, KeepaliveMessage):
            replies, established = self._fsm.on_keepalive(self.sim.now)
            for reply in replies:
                self._transmit(reply)
            if established and not self._started_replay:
                self._started_replay = True
                self._begin_replay()
        elif isinstance(message, NotificationMessage):
            self._fsm.on_notification(message)
            raise SimulationError(
                f"replay peer sent NOTIFICATION code={message.code} "
                f"subcode={message.subcode}"
            )
        # UPDATEs from the peer are accepted silently (we are a sink).

    def _transmit(self, message: Message) -> None:
        self.env.send(self.peer_id, message.encode())

    # -- replay ------------------------------------------------------------------

    def _begin_replay(self) -> None:
        self._send_dump()
        base = self.sim.now
        if not self.trace.updates:
            self._finish()
            return
        first_ts = self.trace.updates[0].timestamp
        for record in self.trace.updates:
            delay = (record.timestamp - first_ts) * self.compression
            self.sim.schedule(delay, self._make_update_sender(record))
        last_delay = (self.trace.updates[-1].timestamp - first_ts) * self.compression
        self.sim.schedule(last_delay, self._finish)

    def _send_dump(self) -> None:
        """Push the full table, batching prefixes with identical attributes."""
        batches: Dict[bytes, List[TraceRecord]] = {}
        order: List[bytes] = []
        for record in self.trace.dump:
            key = encode_attributes(record.attributes)
            if key not in batches:
                batches[key] = []
                order.append(key)
            batches[key].append(record)
        for key in order:
            records = batches[key]
            for start in range(0, len(records), self.dump_batch):
                chunk = records[start:start + self.dump_batch]
                update = UpdateMessage(
                    attributes=chunk[0].attributes,
                    nlri=[NlriEntry.from_prefix(r.prefix) for r in chunk],
                )
                self._transmit(update)
                self.stats.dump_messages += 1
                self.stats.announced_prefixes += len(chunk)

    def _make_update_sender(self, record: TraceRecord):
        def sender() -> None:
            if record.is_announce:
                update = UpdateMessage(
                    attributes=record.attributes,
                    nlri=[NlriEntry.from_prefix(record.prefix)],
                )
                self.stats.announced_prefixes += 1
            else:
                update = UpdateMessage(
                    withdrawn=[NlriEntry.from_prefix(record.prefix)]
                )
                self.stats.withdrawn_prefixes += 1
            self._transmit(update)
            self.stats.update_messages += 1

        return sender

    def _finish(self) -> None:
        if self.stats.finished_at is None:
            self.stats.finished_at = self.sim.now
            if self.on_complete is not None:
                self.on_complete()
