"""FED — scenario construction cost and fabric propagation throughput.

The declarative scenario layer must stay cheap in both dimensions that
gate federated exploration at scale:

* **construction** — ``Scenario.build`` + convergence for the registry
  topologies (clique-4, tiered-8); generated federations carry no trace
  replay, so building one should cost milliseconds, and the content-hash
  config parse cache must actually absorb repeated builds;
* **propagation** — the :class:`IsolatedFabric` event queue: exploratory
  waves over the clone ensemble, measured in delivered messages and
  simulator events per wall second;
* **end-to-end** — a full federated exploration (per-AS concolic fan-out
  + wave + digest comparison) at smoke scale, asserting serial/streamed
  finding parity so the benchmark doubles as a determinism gate.

Set ``REPRO_BENCH_SMOKE=1`` for a tiny-budget smoke run (used by CI to
keep this script from rotting without paying the full measurement).
"""

import hashlib
import os
import time

import pytest

from baseline_gate import WRITE_BASELINE, gate_floor, write_baseline
from repro.bgp.config import clear_parse_cache, parse_cache_info
from repro.bgp.wire import as_concrete_int
from repro.concolic import ExplorationBudget
from repro.core import get_scenario
from repro.core.federation import IsolatedFabric
from repro.core.privacy import (
    DIGEST_SIZE,
    OriginDigest,
    conflict_pairs,
    digest_conflicts,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

SCENARIO_NAMES = ("clique-4", "tiered-8")
SEED = 42
BUDGET = ExplorationBudget(max_executions=4 if SMOKE else 16)
WAVE_REPEATS = 2 if SMOKE else 10

#: The events/s-vs-AS-count curve; the 1000-AS point is full-run only
#: (its convergence alone is minutes of single-core wall time).
SCALE_SIZES = (50, 200) if SMOKE else (50, 200, 1000)


def build_converged(name):
    built = get_scenario(name).build(seed=SEED)
    built.converge()
    return built


@pytest.mark.benchmark(group="federation")
@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_scenario_construction_time(benchmark, paper_rows, name):
    built = benchmark.pedantic(build_converged, args=(name,), rounds=1, iterations=1)
    shape = built.graph.summary()
    assert built.check_invariants() == []
    paper_rows.add(
        "FED", f"{name} construction + convergence",
        "n/a (paper hand-built one 3-node testbed)",
        f"{built.construction_seconds * 1e3:.1f}ms build, "
        f"{shape['nodes']} ASes / {shape['edges']} edges",
        note="smoke budget" if SMOKE else "",
    )


@pytest.mark.benchmark(group="federation")
def test_parse_cache_absorbs_repeated_builds(paper_rows):
    """A rebuild is absorbed by the layered config caches.

    The structural template cache serves structurally identical nodes;
    its misses and ineligible nodes fall through to the content-hash
    parse cache.  Between the two, a rebuild costs zero new parses.
    """
    from repro.topology.graph import clear_structural_cache, structural_cache_info

    clear_parse_cache()
    clear_structural_cache()
    build_converged("tiered-8")
    cold, structural_cold = parse_cache_info(), structural_cache_info()
    build_converged("tiered-8")
    warm, structural_warm = parse_cache_info(), structural_cache_info()
    hits = (warm["hits"] - cold["hits"]) + (
        structural_warm["hits"] - structural_cold["hits"]
    )
    assert hits >= 8, f"rebuild should hit a config cache per AS, got {hits}"
    assert warm["misses"] == cold["misses"]
    assert structural_warm["misses"] == structural_cold["misses"]
    paper_rows.add(
        "FED", "layered config caches on scenario rebuild",
        "n/a",
        f"{hits} cache hits / 0 new parses for 8 ASes",
    )


@pytest.mark.benchmark(group="federation")
@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_fabric_propagation_throughput(benchmark, paper_rows, name):
    """Handler executions per wall second through the isolated wave.

    Throughput counts every exploratory handler run the fabric drives —
    the injections plus each latency-delayed clone-to-clone delivery.
    The split matters per topology: tiered-8 relays hijacks down its
    transit tree (transit deliveries dominate), while clique-4's pure
    peering relays *nothing* — zero transit events is the no-valley
    property holding on the clone ensemble, and the wave cost is all
    checkpoint + clone + injection.
    """
    built = build_converged(name)
    corpus = built.seed_corpus()
    federation = built.federation()

    def wave():
        delivered = handlers = 0
        started = time.perf_counter()
        for _ in range(WAVE_REPEATS):
            fabric = federation._fabric(max_rounds=16)
            for node, peer, update in corpus:
                fabric.inject(node, peer, update)
            stats = fabric.propagate()
            assert stats.converged
            delivered += stats.delivered
            handlers += len(corpus) + stats.delivered
        return delivered, handlers, time.perf_counter() - started

    delivered, handlers, wall = benchmark.pedantic(wave, rounds=1, iterations=1)
    assert handlers >= len(corpus) * WAVE_REPEATS and wall > 0
    if name == "clique-4":
        assert delivered == 0, "peer-learned routes must not transit a clique"
    else:
        assert delivered > 0, "a transit hierarchy must relay the wave"
    rate = handlers / wall
    paper_rows.add(
        "FED", f"{name} fabric propagation",
        "n/a (sketch only in section 2.4)",
        f"{rate:,.0f} handler-events/s ({delivered} transit deliveries over "
        f"{WAVE_REPEATS} waves, checkpoint+clone included)",
        note="smoke budget" if SMOKE else "",
    )


@pytest.mark.benchmark(group="federation")
def test_shared_pool_vs_per_as_pools_streamed(benchmark, paper_rows):
    """One shared streaming pool vs the legacy one-pool-per-AS layout.

    Workers are held constant on both sides (the point of the refactor:
    an 8-AS federation used to pay 8 pool start-ups and 8×workers
    processes contending for the same cores; now it pays one), and the
    comparison doubles as a parity gate — the per-AS finding sets must
    be identical whichever layout ran.  The smoke run keeps the shape
    check (pool counts + parity) on the serial executor; wall-clock
    numbers are only meaningful on the full run with real processes.
    """
    built = build_converged("tiered-8")
    corpus = built.seed_corpus()
    federation = built.federation()
    workers = 2

    def shared():
        return federation.explore(
            corpus, budget=BUDGET, workers=workers, stream=True,
            force_serial=SMOKE,
        )

    shared_report = benchmark.pedantic(shared, rounds=1, iterations=1)
    per_as_report = federation.explore(
        corpus, budget=BUDGET, workers=workers, stream=True,
        force_serial=SMOKE, shared_pool=False,
    )
    assert shared_report.pools == 1
    assert per_as_report.pools == len(built.routers)
    assert shared_report.finding_keys() == per_as_report.finding_keys(), (
        "shared-pool streamed exploration diverged from the per-AS-pools "
        "finding set"
    )
    deltas = shared_report.stream_summary["deltas_by_node"]
    assert set(deltas) <= set(built.routers)
    paper_rows.add(
        "FED", f"tiered-8 shared pool vs per-AS pools ({workers} workers)",
        "n/a (single-node prototype in the paper)",
        f"1 pool {shared_report.wall_seconds:.2f}s vs "
        f"{per_as_report.pools} pools {per_as_report.wall_seconds:.2f}s, "
        f"identical {len(shared_report.finding_keys())}-key finding set",
        note="smoke budget (serial executor)" if SMOKE else "",
    )


# ---------------------------------------------------------------------------
# Internet-scale curve: hierarchical federations, vectorized wave.
# ---------------------------------------------------------------------------


def _digest_tables(fabric, salt):
    """The production path: per-clone digests cached on the fabric."""
    return fabric.digest_tables(salt)


def _uncached_hash(salt, *parts):
    digest = hashlib.blake2b(digest_size=DIGEST_SIZE)
    digest.update(salt)
    for part in parts:
        digest.update(b"\x00")
        digest.update(part)
    return digest.digest()


def _uncached_digest_tables(fabric, salt):
    """The pre-change digest build, kept verbatim as the naive baseline.

    Two blake2b calls per Loc-RIB entry per node, no memo — the same
    few hundred (prefix, origin) values re-hashed once per domain per
    wave stage, which is exactly the cost the production memo removes.
    """
    tables = {}
    for node_id, clone in fabric.clones.items():
        table = OriginDigest(salt)
        local_asn = clone.config.asn
        for prefix, route in clone.loc_rib.items():
            origin = route.origin_as()
            origin_asn = local_asn if origin is None else as_concrete_int(origin)
            network = prefix.network.to_bytes(4, "big")
            length = bytes((prefix.length,))
            table.entries[_uncached_hash(salt, network, length)] = _uncached_hash(
                salt, network, length, origin_asn.to_bytes(4, "big")
            )
        tables[node_id] = table
    return tables


def _pairwise_conflicts(digests):
    """The pre-change all-pairs comparison, kept as the naive baseline."""
    conflicts = []
    node_ids = sorted(digests)
    for i, a in enumerate(node_ids):
        for b in node_ids[i + 1:]:
            conflicts.extend(
                (a, b, key)
                for key in digest_conflicts(digests[a], digests[b])
            )
    return conflicts


def _indexed_conflicts(digests):
    return [
        (a, b, key)
        for (a, b), keys in conflict_pairs(digests).items()
        for key in keys
    ]


def _timed_wave(built, corpus, vectorized, compare, tables=_digest_tables):
    """One wave — inject, pre-compare, propagate, post-compare — timed.

    Fabric construction (checkpoint + clone of every router) stays
    outside the timer: both paths share it unchanged, and the wave is
    the unit a long-lived federation pays per corpus.  Returns
    ``(stats, wall, pre_conflicts, post_conflicts)``.
    """
    federation = built.federation()
    fabric = IsolatedFabric(
        federation.routers,
        max_rounds=16,
        graph=federation.graph,
        default_latency=federation.default_latency,
        vectorized=vectorized,
    )
    started = time.perf_counter()
    for node, peer, update in corpus:
        fabric.inject(node, peer, update)
    pre = compare(tables(fabric, federation.salt))
    stats = fabric.propagate()
    post = compare(tables(fabric, federation.salt))
    wall = time.perf_counter() - started
    return stats, wall, pre, post


@pytest.mark.benchmark(group="federation-scale")
def test_fabric_events_per_sec_curve(benchmark, paper_rows):
    """events/s vs AS count for the vectorized wave, CI-gated at n=200.

    The figure counts every handler the wave drives (injections plus
    clone-to-clone deliveries) against the wall clock of the full wave
    path — inject, both digest comparisons, propagation.  The 1000-AS
    point doubles as the completes-at-all gate: the wave must quiesce,
    and on the full run must land under a minute.
    """

    def curve():
        rates = {}
        for n in SCALE_SIZES:
            built = build_converged(f"hierarchical-{n}")
            corpus = built.seed_corpus()
            stats, wall, _, _ = _timed_wave(
                built, corpus, vectorized=True, compare=_indexed_conflicts
            )
            assert stats.converged, f"the {n}-AS wave must quiesce"
            if n == 1000:
                assert wall < 60.0, (
                    f"1000-AS wave took {wall:.1f}s; the scale target is <60s"
                )
            rates[n] = (len(corpus) + stats.delivered) / wall
        return rates

    rates = benchmark.pedantic(curve, rounds=1, iterations=1)
    figure = "fabric_events_per_sec_hierarchical_200"
    if WRITE_BASELINE:
        write_baseline(**{figure: rates[200]})
    floor = gate_floor(figure)
    assert rates[200] >= floor, (
        f"hierarchical-200 wave throughput {rates[200]:,.0f} events/s fell "
        f"below the gated floor {floor:,.0f}"
    )
    paper_rows.add(
        "FED", "fabric events/s vs AS count (vectorized wave)",
        "n/a (3-node BIRD testbed in the paper)",
        " | ".join(f"n={n}: {rate:,.0f}/s" for n, rate in rates.items()),
        note="smoke budget (no 1000-AS point)" if SMOKE else "",
    )


@pytest.mark.benchmark(group="federation-scale")
def test_vectorized_wave_speedup_vs_naive(benchmark, paper_rows):
    """Vectorized wave + indexed digests vs the pre-change path.

    The naive side is the genuine pre-change configuration:
    ``vectorized=False`` restores per-delivery closure scheduling
    verbatim, the digest tables are rebuilt with the old unmemoized
    per-entry hashing, and the digest check runs the old all-pairs
    walk.  The two sides must agree exactly — same deliveries, same
    conflicts — and the full run enforces the >=5x throughput target
    at 200 ASes.
    """
    n = 50 if SMOKE else 200
    built = build_converged(f"hierarchical-{n}")
    corpus = built.seed_corpus()

    def fast():
        return _timed_wave(
            built, corpus, vectorized=True, compare=_indexed_conflicts
        )

    def naive():
        return _timed_wave(
            built, corpus, vectorized=False, compare=_pairwise_conflicts,
            tables=_uncached_digest_tables,
        )

    stats, wall, pre, post = benchmark.pedantic(fast, rounds=1, iterations=1)
    naive_stats, naive_wall, naive_pre, naive_post = naive()
    assert sorted(pre) == sorted(naive_pre)
    assert sorted(post) == sorted(naive_post)
    assert (stats.delivered, stats.rounds, stats.converged) == (
        naive_stats.delivered, naive_stats.rounds, naive_stats.converged
    ), "vectorized wave diverged from the per-closure baseline"
    if not SMOKE:
        # Single-core walls jitter; the ratio gate compares best-of-two
        # so a GC pause or scheduler blip on one rep can't fail it.
        wall = min(wall, fast()[1])
        naive_wall = min(naive_wall, naive()[1])
    speedup = naive_wall / wall
    if not SMOKE:
        assert speedup >= 5.0, (
            f"vectorized wave at {n} ASes is only {speedup:.1f}x the naive "
            f"path ({wall:.2f}s vs {naive_wall:.2f}s); target is >=5x"
        )
    paper_rows.add(
        "FED", f"hierarchical-{n} wave: vectorized vs naive path",
        "n/a",
        f"{speedup:.1f}x ({wall:.2f}s vs {naive_wall:.2f}s, "
        f"{stats.delivered} deliveries, identical conflict sets)",
        note="smoke budget (50 ASes, ratio not gated)" if SMOKE else "",
    )


@pytest.mark.benchmark(group="federation-scale")
@pytest.mark.parametrize("name", ("caida-sample", "hierarchical-50"))
def test_scale_scenario_serial_stream_parity(benchmark, paper_rows, name):
    """Serial vs streamed finding parity on the new topology sources."""
    built = build_converged(name)
    corpus = built.seed_corpus()[:12]

    def serial():
        return built.federation().explore(
            corpus, budget=BUDGET, workers=1, force_serial=True
        )

    report = benchmark.pedantic(serial, rounds=1, iterations=1)
    assert report.converged
    streamed = built.federation().explore(
        corpus, budget=BUDGET, workers=2, stream=True, force_serial=True
    )
    assert streamed.finding_keys() == report.finding_keys(), (
        f"streamed exploration diverged from the serial finding set on {name}"
    )
    paper_rows.add(
        "FED", f"{name} serial vs streamed parity",
        "n/a",
        f"identical {len(report.finding_keys())}-key finding set over "
        f"{len(corpus)} seeds",
        note="smoke budget" if SMOKE else "",
    )


@pytest.mark.benchmark(group="federation")
def test_federated_exploration_end_to_end(benchmark, paper_rows):
    """Full pipeline: per-AS fan-out, wave, digests — with parity gate."""
    built = build_converged("tiered-8")
    corpus = built.seed_corpus()

    def run():
        return built.federation().explore(
            corpus, budget=BUDGET, workers=1, force_serial=True
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.sessions and report.converged
    streamed = built.federation().explore(
        corpus, budget=BUDGET, workers=2, stream=True, force_serial=True
    )
    assert streamed.finding_keys() == report.finding_keys(), (
        "streamed federated exploration diverged from the serial finding set"
    )
    paper_rows.add(
        "FED", "tiered-8 federated exploration",
        "sketched in section 2.4, never built",
        f"{len(report.sessions)} per-AS sessions, "
        f"{len(report.findings())} findings, "
        f"{len(report.global_findings)} cross-AS digest conflicts in "
        f"{report.wall_seconds:.2f}s",
        note="smoke budget" if SMOKE else "",
    )
