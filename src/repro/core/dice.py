"""The DiCE facade: online testing attached to a live router.

"DiCE runs in the Provider's router" (section 4): a
:class:`DiceEnabledRouter` is a stock :class:`BgpRouter` with the
integration hook the paper added to BIRD — every UPDATE the live node
processes is also *observed* by DiCE as a seed input for exploration.

:class:`DiCE` owns the observed-input buffer, the explorer, and the
accumulated findings, and exposes :meth:`run_round` — one checkpoint +
exploration session — which the online scheduler fires periodically
while the deployed system keeps running.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # avoids the runtime core <-> parallel import cycle
    from repro.parallel.explorer import BatchReport, ParallelExplorer
    from repro.parallel.stream import StreamReport, StreamingExplorer

from repro.bgp.messages import UpdateMessage
from repro.bgp.router import BgpRouter
from repro.concolic.coverage import CoverageScheduler
from repro.concolic.engine import ConcolicEngine, ExplorationBudget
from repro.concolic.strategies import SearchStrategy
from repro.core.checkers import FaultChecker, default_checkers
from repro.core.explorer import DiceExplorer
from repro.core.inputs import InputModel, model_for, seed_signature
from repro.core.report import Finding, SessionReport
from repro.util.errors import ExplorationError
from repro.util.ip import Prefix

ObserverHook = Callable[[str, UpdateMessage], None]


class DiceEnabledRouter(BgpRouter):
    """A BGP router with the DiCE observation hook compiled in.

    The hook is runtime-only state: it is intentionally *not* part of
    ``checkpoint_state()``, so clones restored from checkpoints never
    re-enter DiCE (the class attribute default applies to them).
    """

    observer: Optional[ObserverHook] = None

    def handle_update(self, peer_id: str, update: UpdateMessage) -> None:
        if self.observer is not None:
            self.observer(peer_id, update)
        super().handle_update(peer_id, update)


class DiCE:
    """Continuous, automatic exploration of a live node's behavior."""

    def __init__(
        self,
        router: BgpRouter,
        checkers: Optional[Sequence[FaultChecker]] = None,
        policy: str = "selective",
        model_kwargs: Optional[dict] = None,
        engine: Optional[ConcolicEngine] = None,
        observed_capacity: int = 64,
        anycast_whitelist: Optional[List[Prefix]] = None,
    ):
        self.router = router
        # Parallel rounds rebuild checkers inside each worker: default
        # checkers from the whitelist, or the caller's (picklable) list.
        self._custom_checkers = list(checkers) if checkers is not None else None
        self._anycast_whitelist = list(anycast_whitelist or [])
        if checkers is None:
            checkers = default_checkers(anycast_whitelist)
        self.explorer = DiceExplorer(engine=engine, checkers=checkers)
        self.policy = policy
        self.model_kwargs = dict(model_kwargs or {})
        # Per-peer ring buffers: a chatty peer (a full-table dump) must not
        # evict the seeds observed from a quiet one.
        self._observed_capacity = observed_capacity
        self._observed: Dict[str, Deque[UpdateMessage]] = {}
        self._last_served_peer: Optional[str] = None
        # Coverage-guided seed scheduling: every finished session's
        # coverage feeds back into seed scoring (novelty-weighted
        # rotation); with no history it degenerates to pure round-robin.
        self.scheduler = CoverageScheduler()
        self.rounds: List[SessionReport] = []
        self.exploration_wall_seconds = 0.0
        # Streaming state: when a stream is active, observe() forwards
        # every seed into it and harvested reports land in ``rounds``.
        self._stream: Optional["StreamingExplorer"] = None
        self._stream_harvested = 0
        if isinstance(router, DiceEnabledRouter):
            router.observer = self.observe

    # -- input observation ---------------------------------------------------

    def observe(self, peer_id: str, update: UpdateMessage) -> None:
        """Record a live input as a future exploration seed.

        Only announcements are useful seeds (the marking policies derive
        symbolic inputs from NLRI), matching the paper's focus on UPDATE
        messages as "the main drivers for state change".

        With a stream active (:meth:`stream`), every observed seed is
        also enqueued to it immediately — exploration overlaps live
        traffic instead of waiting for a scheduled round.  Enqueueing is
        non-blocking (the stream coalesces under backpressure), so the
        live message path never stalls on exploration.
        """
        if update.nlri:
            buffer = self._observed.setdefault(
                peer_id, deque(maxlen=self._observed_capacity)
            )
            buffer.append(update)
            if self._stream is not None:
                if self._stream.closed:
                    # The caller closed the explorer directly instead of
                    # via stream_stop(); detach rather than raising out
                    # of live message handling.
                    self._stream = None
                else:
                    self._stream.submit(peer_id, update)

    @property
    def observed(self) -> List[Tuple[str, UpdateMessage]]:
        """All buffered (peer, update) seeds, oldest first per peer."""
        return [
            (peer_id, update)
            for peer_id, buffer in self._observed.items()
            for update in buffer
        ]

    def clear_observed(self) -> None:
        self._observed.clear()

    def pick_seed(
        self, peer: Optional[str] = None
    ) -> Optional[Tuple[str, UpdateMessage]]:
        """The most promising observed input, coverage-guided across peers.

        Without an explicit ``peer``, candidates (each peer's most recent
        buffered seed) are scored by :class:`CoverageScheduler` —
        predicted new-branch coverage from each peer's recent sessions,
        boosted for never-scheduled seeds — with ties resolved by the
        original round-robin rotation.  A fresh facade (no exploration
        history) therefore behaves exactly like the old blind rotation;
        once rounds complete, budget concentrates on peers and seeds
        still producing new coverage.
        """
        if peer is not None:
            buffer = self._observed.get(peer)
            if not buffer:
                return None
            self.scheduler.mark_scheduled(seed_signature(buffer[-1]))
            return (peer, buffer[-1])
        candidates = [
            (peer_id, buffer[-1])
            for peer_id, buffer in self._observed.items()
            if buffer
        ]
        if not candidates:
            return None
        signatures = [seed_signature(update) for _, update in candidates]
        choice = self.scheduler.pick(
            [(peer_id, sig) for (peer_id, _), sig in zip(candidates, signatures)],
            after=self._last_served_peer,
        )
        peer_id, update = candidates[choice]
        self._last_served_peer = peer_id
        self.scheduler.mark_scheduled(signatures[choice])
        return (peer_id, update)

    # -- exploration rounds -----------------------------------------------------

    def batch_seeds(
        self, peer: Optional[str] = None, all_seeds: bool = True
    ) -> List[Tuple[str, UpdateMessage]]:
        """The seed batch a parallel round explores, best seeds first.

        ``all_seeds`` takes every buffered input from every peer's ring
        buffer (optionally restricted to one peer); otherwise one seed —
        the most recent — per peer, which still beats the sequential
        round's single seed while keeping the batch small.  Seeds are
        ordered by the coverage scheduler's score (stable, so a facade
        without history returns the plain observation order): callers
        that truncate the batch keep the most promising seeds, and early
        workers start on them first.
        """
        if all_seeds:
            if peer is None:
                seeds = self.observed
            else:
                buffer = self._observed.get(peer)
                seeds = [(peer, update) for update in buffer] if buffer else []
        else:
            seeds = [
                (peer_id, buffer[-1])
                for peer_id, buffer in self._observed.items()
                if buffer and (peer is None or peer_id == peer)
            ]
        scores = [
            self.scheduler.score(peer_id, seed_signature(update))
            for peer_id, update in seeds
        ]
        order = sorted(range(len(seeds)), key=lambda i: (-scores[i], i))
        return [seeds[i] for i in order]

    def run_round(
        self,
        peer: Optional[str] = None,
        budget: Optional[ExplorationBudget] = None,
        strategy: Optional[SearchStrategy] = None,
        model: Optional[InputModel] = None,
        parallel: int = 1,
        all_seeds: bool = False,
    ) -> Union[SessionReport, "BatchReport", None]:
        """One exploration round; parallel when asked.

        The default is the sequential session of the original prototype:
        one checkpoint + exploration from the round-robin-picked seed.
        With ``parallel > 1`` or ``all_seeds=True`` the round becomes a
        batch — a single checkpoint fanned out across the observed seed
        buffers to ``parallel`` worker processes (see
        :class:`repro.parallel.ParallelExplorer`) — and the return value
        is the aggregated :class:`~repro.parallel.explorer.BatchReport`.
        Every session report still lands in :attr:`rounds`, so findings
        aggregation is identical either way.

        Returns None when no input has been observed yet (nothing to
        explore).  Wall-clock time spent is accumulated for the overhead
        accounting in the CPU benchmark.
        """
        if parallel > 1 or all_seeds:
            if strategy is not None or model is not None:
                raise ExplorationError(
                    "parallel rounds build stock per-worker engines, "
                    "strategies, and models (live objects cannot cross the "
                    "process boundary); for custom configurations use "
                    "repro.parallel.ParallelExplorer directly"
                )
            return self._run_parallel_round(peer, budget, parallel, all_seeds)
        seed = self.pick_seed(peer)
        if seed is None:
            return None
        peer_id, observed = seed
        if model is None:
            model = model_for(observed, self.policy, **self.model_kwargs)
        started = time.perf_counter()
        report = self.explorer.explore_update(
            self.router, peer_id, observed, model=model, budget=budget, strategy=strategy
        )
        self.exploration_wall_seconds += time.perf_counter() - started
        self.rounds.append(report)
        self.scheduler.note_session(peer_id, report.exploration.coverage)
        return report

    def parallel_explorer(
        self,
        workers: int = 1,
        strategy: str = "generational",
        strategy_seed: int = 0,
        constraint_cache: bool = True,
    ) -> "ParallelExplorer":
        """A batch explorer carrying this DiCE's exploration configuration.

        The single place where the facade's policy, model kwargs, custom
        checkers, and anycast whitelist are translated into picklable
        worker configuration — callers (``run_round``, the CLI) should
        build batch explorers here rather than by hand.  Note the worker
        engines are stock: a custom ``engine`` passed to :class:`DiCE`
        applies to sequential rounds only, because live engine/solver
        objects cannot cross the process boundary.
        """
        from repro.parallel.explorer import ParallelExplorer

        return ParallelExplorer(
            workers=max(workers, 1),
            policy=self.policy,
            model_kwargs=self.model_kwargs,
            checkers=self._custom_checkers,
            anycast_whitelist=self._anycast_whitelist,
            strategy=strategy,
            strategy_seed=strategy_seed,
            constraint_cache=constraint_cache,
        )

    def _run_parallel_round(
        self,
        peer: Optional[str],
        budget: Optional[ExplorationBudget],
        workers: int,
        all_seeds: bool,
    ) -> Optional["BatchReport"]:
        seeds = self.batch_seeds(peer, all_seeds=all_seeds)
        if not seeds:
            return None
        # The whole batch is about to be explored: consume each seed's
        # novelty now so later rounds don't keep boosting it (pick_seed
        # does the same for sequential rounds).
        for _, update in seeds:
            self.scheduler.mark_scheduled(seed_signature(update))
        batch = self.parallel_explorer(workers).explore_batch(
            self.router, seeds, budget=budget
        )
        self.rounds.extend(batch.reports)
        for report in batch.reports:
            self.scheduler.note_session(report.peer, report.exploration.coverage)
        self.exploration_wall_seconds += batch.wall_seconds
        return batch

    # -- streaming ------------------------------------------------------------

    def streaming_explorer(
        self,
        workers: int = 1,
        budget: Optional[ExplorationBudget] = None,
        strategy: str = "generational",
        strategy_seed: int = 0,
        constraint_cache: bool = True,
        queue_capacity: Optional[int] = None,
        force_serial: bool = False,
        coverage_guided: bool = True,
    ) -> "StreamingExplorer":
        """A streaming pipeline carrying this DiCE's exploration config.

        The streaming analogue of :meth:`parallel_explorer` — same
        translation of policy, model kwargs, checkers, and whitelist
        into picklable worker configuration; the stream's per-peer queue
        bound defaults to the observation buffers' capacity.
        """
        from repro.parallel.stream import StreamingExplorer

        return StreamingExplorer(
            workers=max(workers, 1),
            policy=self.policy,
            model_kwargs=self.model_kwargs,
            checkers=self._custom_checkers,
            anycast_whitelist=self._anycast_whitelist,
            strategy=strategy,
            strategy_seed=strategy_seed,
            constraint_cache=constraint_cache,
            budget=budget,
            queue_capacity=queue_capacity or self._observed_capacity,
            force_serial=force_serial,
            coverage_guided=coverage_guided,
        )

    def stream_start(self, workers: int = 1, **kwargs) -> "StreamingExplorer":
        """Open a streaming pipeline over the live router.

        From here until :meth:`stream_stop`, every :meth:`observe`-d
        announcement is auto-enqueued for exploration.  Accepts the
        :meth:`streaming_explorer` keyword arguments.
        """
        if self._stream is not None:
            raise ExplorationError("a stream is already active on this DiCE")
        explorer = self.streaming_explorer(workers=workers, **kwargs)
        explorer.start(self.router)
        self._stream = explorer
        self._stream_harvested = 0
        return explorer

    def stream_poll(self) -> List[SessionReport]:
        """Harvest completed stream sessions into :attr:`rounds`.

        Returns only the *newly* harvested reports; cumulative findings
        aggregation happens through :attr:`rounds` exactly as for
        sequential and batch rounds.
        """
        if self._stream is None:
            raise ExplorationError("no active stream (call stream_start)")
        reports = self._stream.poll()
        fresh = reports[self._stream_harvested:]
        self.rounds.extend(fresh)
        for report in fresh:
            self.scheduler.note_session(report.peer, report.exploration.coverage)
        self._stream_harvested = len(reports)
        return fresh

    def stream_epoch(self) -> Dict[str, object]:
        """An epoch boundary: re-checkpoint (shipping the delta) + harvest.

        The streaming scheduler fires this instead of a batch fan-out;
        the returned dict combines the shipping economics with how many
        reports the harvest landed.
        """
        if self._stream is None:
            raise ExplorationError("no active stream (call stream_start)")
        info = self._stream.advance_epoch()
        info["harvested"] = len(self.stream_poll())
        return info

    def stream_stop(self) -> Optional["StreamReport"]:
        """Drain and close the active stream; returns its final report.

        No-op (returning None) when no stream is active, so shutdown
        paths need not track whether a stream was ever started.
        """
        explorer, self._stream = self._stream, None
        if explorer is None:
            return None
        report = explorer.close()
        for session in report.reports[self._stream_harvested:]:
            self.rounds.append(session)
            self.scheduler.note_session(session.peer, session.exploration.coverage)
        self._stream_harvested = 0
        self.exploration_wall_seconds += report.wall_seconds
        return report

    @contextmanager
    def stream(self, workers: int = 1, **kwargs) -> Iterator["StreamingExplorer"]:
        """Scoped streaming: ``with dice.stream(workers=4) as s: ...``

        Observation, exploration, and harvest overlap inside the block;
        on exit the stream drains and its findings are aggregated on the
        facade like any other round's.
        """
        explorer = self.stream_start(workers=workers, **kwargs)
        try:
            yield explorer
        finally:
            self.stream_stop()

    # -- aggregation ----------------------------------------------------------------

    def findings(self) -> List[Finding]:
        """Unique findings across all rounds so far."""
        seen: Dict[tuple, Finding] = {}
        for round_report in self.rounds:
            for finding in round_report.findings:
                seen.setdefault(finding.dedup_key(), finding)
        return list(seen.values())

    def leaked_prefixes(self) -> List[Prefix]:
        """All prefix ranges any round found leakable — the operator output."""
        prefixes = set()
        for round_report in self.rounds:
            prefixes.update(round_report.leaked_prefixes())
        return sorted(prefixes)

    def summary(self) -> Dict[str, object]:
        return {
            "rounds": len(self.rounds),
            "observed_inputs": len(self.observed),
            "total_executions": sum(r.exploration.executions for r in self.rounds),
            "total_findings": len(self.findings()),
            "leaked_prefixes": [str(p) for p in self.leaked_prefixes()],
            "exploration_wall_seconds": round(self.exploration_wall_seconds, 4),
        }
