"""Tests for RFC 1997 well-known community handling in route export."""

import pytest

from repro.bgp.attributes import (
    AsPath,
    NO_ADVERTISE,
    NO_EXPORT,
    PathAttributes,
)
from repro.bgp.messages import UpdateMessage
from repro.bgp.nlri import NlriEntry
from repro.bgp.router import BgpRouter
from repro.net.node import NodeHost
from repro.util.ip import Prefix

P = Prefix.parse

PROVIDER = """
router bgp 65010;
router-id 10.0.0.1;
neighbor left { remote-as 65001; passive; }
neighbor right { remote-as 65002; }
"""

LEAF = """
router bgp {asn};
router-id 10.0.0.{octet};
neighbor provider {{ remote-as 65010; {mode} }}
"""


@pytest.fixture
def line_topology():
    """left (AS65001) - provider (AS65010) - right (AS65002)."""
    host = NodeHost()
    provider = host.add_node("provider", lambda n, e: BgpRouter(n, e, PROVIDER))
    left = host.add_node(
        "left",
        lambda n, e: BgpRouter(n, e, LEAF.format(asn=65001, octet=2, mode="")),
    )
    right = host.add_node(
        "right",
        lambda n, e: BgpRouter(n, e, LEAF.format(asn=65002, octet=3, mode="passive;")),
    )
    host.add_link("provider", "left")
    host.add_link("provider", "right")
    host.start()
    host.run()
    return host, provider, left, right


def announce(host, left, prefix, communities=()):
    update = UpdateMessage(
        attributes=PathAttributes(
            as_path=AsPath.sequence([65001]),
            next_hop=2,
            communities=tuple(communities),
        ),
        nlri=[NlriEntry.from_prefix(P(prefix))],
    )
    left.env.send("provider", update.encode())
    host.run()


class TestWellKnownCommunities:
    def test_plain_route_propagates(self, line_topology):
        host, provider, left, right = line_topology
        announce(host, left, "60.0.0.0/8")
        assert P("60.0.0.0/8") in provider.loc_rib
        assert P("60.0.0.0/8") in right.loc_rib

    def test_no_export_stays_local(self, line_topology):
        host, provider, left, right = line_topology
        announce(host, left, "61.0.0.0/8", communities=[NO_EXPORT])
        assert P("61.0.0.0/8") in provider.loc_rib       # accepted locally
        assert P("61.0.0.0/8") not in right.loc_rib      # never re-exported

    def test_no_advertise_stays_local(self, line_topology):
        host, provider, left, right = line_topology
        announce(host, left, "62.0.0.0/8", communities=[NO_ADVERTISE])
        assert P("62.0.0.0/8") in provider.loc_rib
        assert P("62.0.0.0/8") not in right.loc_rib

    def test_community_preserved_in_rib(self, line_topology):
        host, provider, left, right = line_topology
        announce(host, left, "63.0.0.0/8", communities=[NO_EXPORT, 12345])
        route = provider.loc_rib.get(P("63.0.0.0/8"))
        assert NO_EXPORT in tuple(int(c) for c in route.attributes.communities)

    def test_ordinary_community_does_not_block(self, line_topology):
        host, provider, left, right = line_topology
        announce(host, left, "64.0.0.0/8", communities=[(65001 << 16) | 7])
        assert P("64.0.0.0/8") in right.loc_rib

    def test_filter_added_no_export_blocks(self, line_topology):
        """A filter that *adds* no-export makes the route non-transitive."""
        host, provider, left, right = line_topology
        # Rebuild the provider's import filter on the fly: simulate the
        # operator marking customer routes no-export.
        from repro.bgp.config import parse_config

        config = parse_config("""
router bgp 65010;
router-id 10.0.0.1;
filter tag-local {
    add-community no-export;
    accept;
}
neighbor left { remote-as 65001; passive; import filter tag-local; }
neighbor right { remote-as 65002; }
""")
        host2 = NodeHost()
        provider2 = host2.add_node("provider", lambda n, e: BgpRouter(n, e, config))
        left2 = host2.add_node(
            "left",
            lambda n, e: BgpRouter(n, e, LEAF.format(asn=65001, octet=2, mode="")),
        )
        right2 = host2.add_node(
            "right",
            lambda n, e: BgpRouter(n, e, LEAF.format(asn=65002, octet=3, mode="passive;")),
        )
        host2.add_link("provider", "left")
        host2.add_link("provider", "right")
        host2.start()
        host2.run()
        announce(host2, left2, "65.0.0.0/8")
        assert P("65.0.0.0/8") in provider2.loc_rib
        assert P("65.0.0.0/8") not in right2.loc_rib
