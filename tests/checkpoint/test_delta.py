"""Tests for segment-structured checkpoints and delta shipping.

The PR's checkpoint-shipping requirement: a re-checkpoint after a small
RIB change ships only the dirty segments, and the applied delta is
byte-identical to a fresh capture.
"""

import pickle

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.messages import UpdateMessage
from repro.bgp.nlri import NlriEntry
from repro.checkpoint.delta import (
    CheckpointDelta,
    CheckpointImage,
    assemble_state,
    state_segments,
)
from repro.concolic.env import ExplorationEnvironment
from repro.core import get_scenario
from repro.util.errors import CheckpointError
from repro.util.ip import Prefix, ip_to_int


class ToyNode:
    """A minimal node with a dict state: two scalars and a table."""

    def __init__(self, counter=0, table=None, env=None):
        self.counter = counter
        self.table = dict(table or {})
        self.env = env
        self.now = 0.0

    def checkpoint_state(self):
        return {"counter": self.counter, "table": self.table, "now": self.now}

    def snapshot_segments(self):
        return {
            "counter": pickle.dumps(self.counter),
            "table": pickle.dumps(sorted(self.table.items())),
        }

    @classmethod
    def restore_from_state(cls, state, env):
        node = cls(state["counter"], state["table"], env)
        node.now = state["now"]
        return node


@pytest.fixture(scope="module")
def converged_scenario():
    scenario = get_scenario("fig2").build(
        filter_mode="erroneous", prefix_count=200, update_count=20
    )
    scenario.converge()
    return scenario


def route_update(prefix="99.1.0.0/16", asn=65020):
    return UpdateMessage(
        attributes=PathAttributes(
            as_path=AsPath.sequence([asn]), next_hop=ip_to_int("10.0.0.2")
        ),
        nlri=[NlriEntry.from_prefix(Prefix.parse(prefix))],
    )


class TestStateSegments:
    def test_dict_state_splits_per_component(self):
        node = ToyNode(counter=7, table={"a": 1})
        segments = state_segments(node.checkpoint_state())
        names = set(segments)
        assert "state/counter" in names
        assert "state/now" in names
        # The non-empty dict component is item-bucketized.
        assert any(name.startswith("state/table@") for name in names)
        assert assemble_state(segments) == node.checkpoint_state()

    def test_opaque_state_falls_back_to_single_blob(self):
        segments = state_segments([1, 2, 3])
        assert set(segments) == {"state"}
        assert assemble_state(segments) == [1, 2, 3]

    def test_capture_is_stable(self):
        node = ToyNode(counter=1, table={i: "v" * 40 for i in range(100)})
        a = CheckpointImage.capture(node, "a")
        b = CheckpointImage.capture(node, "b")
        assert a.segments == b.segments

    def test_item_order_survives_round_trip(self):
        # Insertion order is behavior (dict iteration); position tags
        # must reconstruct it even though buckets shuffle items by hash.
        table = {f"k{i}": i for i in (5, 3, 9, 1, 7)}
        node = ToyNode(table=table)
        restored = assemble_state(state_segments(node.checkpoint_state()))
        assert list(restored["table"]) == list(table)

    def test_unpicklable_state_rejected(self):
        class Bad:
            def checkpoint_state(self):
                return {"f": lambda: None}

        with pytest.raises(CheckpointError):
            CheckpointImage.capture(Bad(), "bad")


class TestDeltaShipping:
    def test_small_change_ships_only_dirty_buckets(self):
        node = ToyNode(counter=1, table={i: "v" * 60 for i in range(200)})
        base = CheckpointImage.capture(node, "base", epoch=0)
        node.table[3] = "mutated"
        after = CheckpointImage.capture(node, "after", epoch=1)
        delta = after.diff(base)
        # One item changed: exactly one table bucket ships, nothing else.
        assert delta.segments_shipped == 1
        assert next(iter(delta.changed)).startswith("state/table@")
        assert delta.bytes_shipped < after.total_bytes / 10
        assert delta.removed == ()

    def test_no_change_ships_nothing(self):
        node = ToyNode(table={"a": 1})
        base = CheckpointImage.capture(node, "base", epoch=0)
        after = CheckpointImage.capture(node, "after", epoch=1)
        delta = after.diff(base)
        assert delta.segments_shipped == 0
        assert delta.bytes_shipped == 0

    def test_apply_is_byte_identical_to_fresh_capture(self):
        node = ToyNode(counter=1, table={i: i * 11 for i in range(50)})
        base = CheckpointImage.capture(node, "base", epoch=0)
        node.counter = 2
        node.table[99] = 99
        del node.table[7]
        after = CheckpointImage.capture(node, "after", epoch=1)
        delta = after.diff(base)
        applied = delta.apply(base)
        assert applied.segments == after.segments
        assert applied.epoch == 1

    def test_removed_segments_dropped_on_apply(self):
        node = ToyNode(table={"solo": "x" * 50})
        base = CheckpointImage.capture(node, "base", epoch=0)
        node.table.clear()  # empty dict: bucketized form collapses to monolithic
        after = CheckpointImage.capture(node, "after", epoch=1)
        delta = after.diff(base)
        assert delta.removed  # the old bucket + meta names disappear
        applied = delta.apply(base)
        assert applied.segments == after.segments
        restored = applied.restore(ExplorationEnvironment())
        assert restored.table == {}

    def test_delta_chain_across_epochs(self):
        node = ToyNode(table={i: i for i in range(30)})
        images = [CheckpointImage.capture(node, "e0", epoch=0)]
        for epoch in (1, 2, 3):
            node.table[epoch * 100] = epoch
            images.append(CheckpointImage.capture(node, f"e{epoch}", epoch=epoch))
        current = images[0]
        for nxt in images[1:]:
            current = nxt.diff(current).apply(current)
        assert current.segments == images[-1].segments

    def test_apply_rejects_wrong_base(self):
        node = ToyNode(table={"a": 1})
        e0 = CheckpointImage.capture(node, "e0", epoch=0)
        node.table["b"] = 2
        e1 = CheckpointImage.capture(node, "e1", epoch=1)
        node.table["c"] = 3
        e2 = CheckpointImage.capture(node, "e2", epoch=2)
        delta = e2.diff(e1)
        with pytest.raises(CheckpointError):
            delta.apply(e0)

    def test_delta_is_picklable(self):
        node = ToyNode(table={"a": 1})
        base = CheckpointImage.capture(node, "base", epoch=0)
        node.table["b"] = 2
        delta = CheckpointImage.capture(node, "after", epoch=1).diff(base)
        clone = pickle.loads(pickle.dumps(delta))
        assert isinstance(clone, CheckpointDelta)
        assert clone.changed == delta.changed


class TestRouterDelta:
    """The real thing: a BGP router's RIB change ships a sliver."""

    def test_one_route_change_ships_few_segments(self, converged_scenario):
        router = converged_scenario.provider
        base = CheckpointImage.capture(router, "base", epoch=0)
        router.handle_update("customer", route_update())
        after = CheckpointImage.capture(router, "after", epoch=1)
        delta = after.diff(base)
        # One UPDATE touches one bucket each of adj-ribs/loc-rib plus the
        # small bookkeeping components — a sliver of the total.
        assert delta.segments_shipped < len(after.segments) / 4
        assert delta.bytes_shipped < after.total_bytes / 4
        untouched = {"state/config", "state/node_id", "state/static_routes"}
        assert untouched.isdisjoint(delta.changed)
        assert delta.apply(base).segments == after.segments

    def test_applied_image_restores_working_router(self, converged_scenario):
        router = converged_scenario.provider
        base = CheckpointImage.capture(router, "base", epoch=0)
        router.handle_update("customer", route_update("77.5.0.0/16"))
        after = CheckpointImage.capture(router, "after", epoch=1)
        applied = after.diff(base).apply(base)
        clone = applied.restore(ExplorationEnvironment())
        assert clone.table_size() == router.table_size()
        # The LocRib trie is a derived index rebuilt on restore; prefix
        # queries must work on the reassembled clone.
        assert clone.loc_rib.longest_match(ip_to_int("77.5.1.1")) is not None
        # And the classic-checkpoint view restores equivalently.
        via_checkpoint = applied.as_checkpoint().restore(ExplorationEnvironment())
        assert via_checkpoint.table_size() == router.table_size()

    def test_live_recapture_is_stable(self, converged_scenario):
        # The coordinator diffs successive captures of the *live* node;
        # an unstable serialization would turn every epoch into a full
        # re-ship.
        router = converged_scenario.provider
        a = CheckpointImage.capture(router, "a", epoch=0)
        b = CheckpointImage.capture(router, "b", epoch=1)
        assert b.diff(a).segments_shipped == 0
