"""Command-line interface: ``python -m repro <command>``.

Operator-facing entry points over the library:

* ``leak-check`` — build the Figure 2 testbed with a chosen filter mode
  (or a user-supplied provider config) and run DiCE rounds, printing the
  leakable prefix report;
* ``explore`` — run the concolic engine over the provider's UPDATE
  handler with explicit budgets/strategy and dump exploration stats;
  with ``--scenario NAME`` (any registry entry except ``fig2``) the
  exploration runs *federated* over the scenario's generated topology,
  composing with ``--workers`` and ``--stream``;
* ``scenarios`` — list all three matrix axes: topologies with node/edge
  counts, fault/churn workloads, and wave-level invariant checkers;
* ``matrix`` — run a (topology × workload × checker) scenario matrix and
  print one line per cell; ``--smoke`` runs a small fixed slice for CI;
* ``trace-gen`` — synthesize a RouteViews-style trace to a file;
* ``trace-info`` — summarize a trace file;
* ``check-config`` — parse and validate a router configuration file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.concolic import ExplorationBudget, make_strategy
from repro.core import get_scenario, list_scenarios
from repro.core.checkers import list_wave_checkers
from repro.core.workload import ScenarioMatrix, get_workload, list_workloads
from repro.trace.mrt import Trace
from repro.trace.routeviews import TraceConfig, RouteViewsGenerator
from repro.util.errors import ConfigError, ReproError, WorkloadNotApplicable


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--filter-mode", choices=("correct", "erroneous", "missing"),
        default=None,
        help="customer-filter configuration (default: erroneous for fig2; "
             "generated scenarios keep their registered default, unless a "
             "--workload demands its own — an explicit flag always wins)",
    )
    parser.add_argument("--prefixes", type=int, default=2_000,
                        help="synthetic table size (paper: 319355)")
    parser.add_argument("--updates", type=int, default=200,
                        help="length of the update trace")
    parser.add_argument("--seed", type=int, default=2010_04_01,
                        help="deterministic experiment seed")


def _build(args: argparse.Namespace):
    scenario = get_scenario("fig2").build(
        seed=args.seed,
        filter_mode=args.filter_mode or "erroneous",
        prefix_count=args.prefixes,
        update_count=args.updates,
    )
    scenario.converge()
    return scenario


def cmd_leak_check(args: argparse.Namespace) -> int:
    scenario = _build(args)
    print(f"provider table: {scenario.provider_table_size} prefixes; "
          f"peers: {scenario.provider.established_peers()}")
    budget = ExplorationBudget(
        max_executions=args.executions, max_solver_queries=args.executions * 16
    )
    for round_index in range(args.rounds):
        report = scenario.dice.run_round(peer="customer", budget=budget)
        if report is None:
            print("no observed inputs to explore")
            return 1
        print(f"round {round_index + 1}: {report.exploration.executions} "
              f"executions, {len(report.unique_findings())} findings")
    leaked = scenario.dice.leaked_prefixes()
    print(f"\nleakable prefixes: {len(leaked)}")
    for finding in scenario.dice.findings()[:args.show]:
        print(f"  {finding.describe()}")
    if len(leaked) > args.show:
        print(f"  ... and {len(leaked) - args.show} more")
    return 0 if not leaked else 2  # nonzero exit signals findings, like linters


def cmd_explore(args: argparse.Namespace) -> int:
    if args.workers < 1:
        # Caught here rather than deep in the executor, where a bad
        # value used to surface as an opaque ValueError traceback.
        print(
            f"error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    service_flags = args.autoscale or args.epoch_churn is not None
    if service_flags and not args.stream:
        print("error: --autoscale/--epoch-churn configure the shared "
              "streaming pool; add --stream with a generated --scenario",
              file=sys.stderr)
        return 2
    scenario_names = _csv(args.scenario)
    if len(scenario_names) > 1:
        return _explore_tenants(args, scenario_names)
    if args.scenario != "fig2":
        return _explore_federated(args)
    if service_flags or args.stream_epochs != 1:
        print("error: --autoscale/--epoch-churn/--stream-epochs require a "
              "generated --scenario (see 'repro scenarios')", file=sys.stderr)
        return 2
    if args.chaos:
        print("error: --chaos requires a generated --scenario with --stream "
              "(the shared streaming pool; see 'repro scenarios')",
              file=sys.stderr)
        return 2
    if args.workload:
        print("error: --workload requires a generated --scenario "
              "(see 'repro scenarios')", file=sys.stderr)
        return 2
    scenario = _build(args)
    if args.stream:
        return _explore_stream(scenario, args)
    if args.workers > 1 or args.all_seeds:
        return _explore_parallel(scenario, args)
    seed = scenario.dice.pick_seed("customer")
    if seed is None:
        print("no observed inputs")
        return 1
    peer, observed = seed
    from repro.core.inputs import model_for

    model = model_for(observed, args.policy)
    report = scenario.dice.explorer.explore_update(
        scenario.provider, peer, observed, model=model,
        budget=ExplorationBudget(max_executions=args.executions),
        strategy=make_strategy(args.strategy, seed=args.seed),
    )
    print("exploration summary:")
    for key, value in report.summary().items():
        print(f"  {key}: {value}")
    print("engine coverage:",
          f"{report.exploration.coverage.covered_outcomes} outcomes over",
          f"{report.exploration.coverage.covered_sites} sites")
    stats = scenario.dice.explorer.engine.solver.stats
    print("solver:", stats.as_dict())
    return 0


def _explore_parallel(scenario, args: argparse.Namespace) -> int:
    """Batch exploration across the observed seed buffers."""
    seeds = scenario.dice.batch_seeds(all_seeds=True)
    if not seeds:
        print("no observed inputs")
        return 1
    # The explorer comes from the scenario's DiCE so its checkers and
    # anycast whitelist apply here exactly as in sequential rounds.
    scenario.dice.policy = args.policy
    explorer = scenario.dice.parallel_explorer(
        workers=args.workers, strategy=args.strategy, strategy_seed=args.seed
    )
    batch = explorer.explore_batch(
        scenario.provider, seeds,
        budget=ExplorationBudget(max_executions=args.executions),
    )
    print(f"parallel exploration ({args.workers} workers, "
          f"{len(batch.reports)} sessions):")
    for key, value in batch.summary().items():
        print(f"  {key}: {value}")
    if batch.fallback_reason:
        print(f"  note: process pool unavailable ({batch.fallback_reason}); "
              "ran on the in-process executor")
    return 0


def _stream_progress(report) -> None:
    """The periodic streaming status line.

    Seeds drained / findings, plus the cross-worker solver view: hit
    rates for all three cache layers (exact-key, semantic subsumption,
    propagate memo) and the per-stage time split (key computation,
    screening, interval propagation, hint check, linear inversion,
    enumeration, local search) so a slow stream shows *where* solver
    time goes.
    """
    solver = report.solver_totals()
    # Stage names derive from SolverStats's *_time counters, so a stage
    # added there shows up here without a second hand-kept list.
    stages = {
        name[: -len("_time")]: seconds
        for name, seconds in solver.items()
        if name.endswith("_time") and name != "total_time"
    }
    busiest = ", ".join(
        f"{name} {seconds * 1e3:.0f}ms"
        for name, seconds in sorted(stages.items(), key=lambda kv: -kv[1])[:3]
        if seconds > 0
    )
    # Resilience counters appear only once something went wrong (and was
    # survived): restarts/hangs/retries/quarantines from the supervisor,
    # degraded shard count from the shared-cache liveness probe.
    resilience = ""
    recoveries = (
        report.workers_restarted
        + report.hangs_detected
        + report.jobs_retried
        + len(report.quarantined)
    )
    if recoveries:
        resilience += (
            f" | resilience restarts {report.workers_restarted}"
            f" hangs {report.hangs_detected}"
            f" retries {report.jobs_retried}"
            f" quarantined {len(report.quarantined)}"
        )
    if report.degraded_shards:
        resilience += (
            f" | cache degraded "
            f"{report.degraded_shards}/{report.cache_shards} shards"
        )
    # Pool size is live under autoscale (peak shown once it diverges).
    pool = ""
    if report.pool_size:
        pool = f" | pool {report.pool_size}"
        if report.pool_high_water > report.pool_size:
            pool += f" (peak {report.pool_high_water})"
    print(
        f"  [stream] seeds drained {report.jobs_completed}/"
        f"{report.seeds_submitted - report.seeds_coalesced}"
        + pool
        + f" | findings {len(report.findings())}"
        f" | cache hit rate {solver['cache_hit_rate']:.0%}"
        f" (semantic {solver.get('semantic_hit_rate', 0.0):.0%},"
        f" memo {solver.get('propagate_memo_hit_rate', 0.0):.0%})"
        f" | solver {solver.get('total_time', 0.0):.2f}s"
        + (f" ({busiest})" if busiest else "")
        + resilience
    )


def _explore_stream(scenario, args: argparse.Namespace) -> int:
    """Streaming exploration: enqueue the observed seeds, harvest live."""
    seeds = scenario.dice.observed
    if not seeds:
        print("no observed inputs")
        return 1
    scenario.dice.policy = args.policy
    budget = ExplorationBudget(max_executions=args.executions)
    with scenario.dice.stream(
        workers=args.workers,
        budget=budget,
        strategy=args.strategy,
        strategy_seed=args.seed,
    ) as stream:
        # The scenario's traffic was already observed during convergence;
        # replay those buffers into the stream the way live operation
        # would feed them through DiCE.observe.
        for peer, observed in seeds:
            stream.submit(peer, observed)
        stream.drain(progress=_stream_progress, progress_interval=1.0)
        report = stream.report
        print(f"streaming exploration ({args.workers} workers, "
              f"{report.jobs_completed} sessions):")
        for key, value in report.summary().items():
            print(f"  {key}: {value}")
        if report.fallback_reason:
            print(f"  note: {report.fallback_reason}")
    return 0


def _explore_federated(args: argparse.Namespace) -> int:
    """Federated exploration over a registry scenario's generated topology."""
    scenario = get_scenario(args.scenario)
    workload = get_workload(args.workload) if args.workload else None
    chaos_plan = None
    if args.chaos:
        if not args.stream:
            print("error: --chaos targets the shared streaming pool; "
                  "add --stream", file=sys.stderr)
            return 2
        from repro.parallel.chaos import get_chaos_plan, list_chaos_plans

        try:
            chaos_plan = get_chaos_plan(args.chaos)
        except ValueError:
            print(f"error: unknown chaos plan {args.chaos!r}; known plans:",
                  file=sys.stderr)
            for name, description in list_chaos_plans():
                print(f"  {name:18} {description}", file=sys.stderr)
            return 2
    # An explicit --filter-mode overrides the scenario's registered
    # customer-filtering default; left unset, the CLI builds exactly
    # what get_scenario(name).build(seed=...) builds, so a finding
    # reproduces from (scenario, seed) alone.  --prefixes/--updates are
    # trace knobs and do not apply to generated federations.  A workload
    # may demand its own build overrides (e.g. route-leak needs the
    # erroneous customer filter); an explicit flag still wins.
    overrides = dict(workload.build_overrides) if workload else {}
    if args.filter_mode is not None:
        overrides["filter_mode"] = args.filter_mode
    built = scenario.build(seed=args.seed, **overrides)
    built.converge()
    shape = built.graph.summary() if built.graph is not None else {}
    print(
        f"scenario {built.name!r}: {shape.get('nodes', len(built.routers))} ASes, "
        f"{shape.get('edges', '?')} edges, built in "
        f"{built.construction_seconds:.3f}s"
    )
    violations = built.check_invariants()
    if violations:
        for violation in violations:
            print(f"  invariant violated: {violation.describe()}", file=sys.stderr)
        return 1
    plan = None
    if workload is not None:
        try:
            plan = workload.plan(built)
        except WorkloadNotApplicable as exc:
            print(f"workload {workload.name!r} not applicable: {exc}",
                  file=sys.stderr)
            return 1
        if args.checker:
            from dataclasses import replace

            plan = replace(plan, checkers=tuple(args.checker))
    corpus = built.seed_corpus()
    if not corpus:
        print("scenario declares no exploration seeds")
        return 1
    report = built.federation().explore(
        corpus,
        budget=ExplorationBudget(max_executions=args.executions),
        workers=args.workers,
        stream=args.stream,
        policy=args.policy,
        strategy=args.strategy,
        strategy_seed=args.seed,
        as_rotation=args.as_rotation,
        stream_epochs=args.stream_epochs,
        workload=plan,
        chaos=chaos_plan,
        epoch_churn=args.epoch_churn,
        autoscale=args.autoscale,
        autoscale_interval=args.autoscale_interval,
    )
    mode = "streamed" if args.stream else "batch"
    pool = (
        f"1 shared pool × {args.workers} workers" if args.stream
        else f"{args.workers} workers"
    )
    print(f"federated exploration ({mode}, {pool}, {len(corpus)} seeds):")
    for key, value in report.summary().items():
        print(f"  {key}: {value}")
    for node, sessions in report.per_as_sessions.items():
        findings = {
            key for session in sessions for key in
            (finding.dedup_key() for finding in session.findings)
        }
        print(f"  AS {node}: {len(sessions)} sessions, {len(findings)} findings")
    stats = report.stats
    # Top scheduler yields: which ASes the federation scheduler is
    # steering dispatch budget toward (finding-yield EWMA, descending).
    yields = sorted(
        report.scheduler_yield.items(), key=lambda kv: -kv[1]
    )[:3]
    yield_note = (
        " | yield " + " ".join(f"{node}:{gain:.2f}" for node, gain in yields)
        if yields else ""
    )
    print(
        f"  [federated] wave delivered {stats.delivered} msgs over "
        f"{stats.rounds} hops in {stats.sim_seconds * 1e3:.1f}ms sim time"
        f" | global findings {len(report.global_findings)}"
        f" | converged={stats.converged}"
        + yield_note
    )
    if not stats.converged:
        print("  warning: wave hit its hop/event budget before quiescing; "
              "post-propagation comparisons ran on a federation still in motion")
    summary = report.stream_summary or {}
    recoveries = (
        summary.get("workers_restarted", 0)
        + summary.get("hangs_detected", 0)
        + summary.get("jobs_retried", 0)
        + summary.get("jobs_quarantined", 0)
        + summary.get("degraded_shards", 0)
    )
    if chaos_plan is not None or recoveries:
        plan_note = f" plan={chaos_plan.name!r}" if chaos_plan else ""
        print(
            f"  [resilience]{plan_note} restarts "
            f"{summary.get('workers_restarted', 0)}"
            f" | hangs {summary.get('hangs_detected', 0)}"
            f" | retries {summary.get('jobs_retried', 0)}"
            f" | quarantined {summary.get('jobs_quarantined', 0)}"
            f" | cache degraded {summary.get('degraded_shards', 0)}/"
            f"{summary.get('cache_shards', 0)} shards"
        )
        for event in summary.get("chaos_events", []):
            print(f"    chaos: {event}")
        for entry in summary.get("quarantined", []):
            print(f"    {entry}")
    if args.autoscale or summary.get("resize_events"):
        _print_service_summary(summary)
    if plan is not None:
        wstats = report.workload_stats
        print(
            f"  [workload] {report.workload}: {wstats.injected_events} events "
            f"injected, {len(report.workload_findings)} findings, "
            f"converged={wstats.converged}"
        )
        for finding in report.workload_findings:
            print(f"    {finding.describe()}")
    return 2 if (report.findings() or report.global_findings
                 or report.workload_findings) else 0


def _print_service_summary(summary: dict) -> None:
    """The elastic-pool counters: sizing, retirement, epoch skips."""
    print(
        f"  [service] pool {summary.get('pool_size', 0)}"
        f" (peak {summary.get('pool_high_water', 0)},"
        f" low {summary.get('pool_low_water', 0)})"
        f" | retired {summary.get('workers_retired', 0)}"
        f" | worker-seconds {summary.get('worker_seconds', 0.0)}"
        f" | epochs skipped quiet {summary.get('epochs_skipped_quiet', 0)}"
        f" | harvest latency mean "
        f"{summary.get('harvest_latency_mean', 0.0) * 1e3:.1f}ms"
    )
    for event in summary.get("resize_events", []):
        print(f"    resize: {event}")


def _explore_tenants(args: argparse.Namespace, names: List[str]) -> int:
    """Service mode: several scenarios as tenants of ONE streaming pool."""
    if not args.stream:
        print("error: multiple --scenario values run as tenants of one "
              "shared streaming pool; add --stream", file=sys.stderr)
        return 2
    if args.workload:
        print("error: --workload composes with a single --scenario, not "
              "the multi-tenant service path", file=sys.stderr)
        return 2
    if "fig2" in names:
        print("error: fig2 is the single-node trace scenario; tenants must "
              "be generated federations (see 'repro scenarios')",
              file=sys.stderr)
        return 2
    chaos_plan = None
    if args.chaos:
        from repro.parallel.chaos import get_chaos_plan, list_chaos_plans

        try:
            chaos_plan = get_chaos_plan(args.chaos)
        except ValueError:
            print(f"error: unknown chaos plan {args.chaos!r}; known plans:",
                  file=sys.stderr)
            for name, description in list_chaos_plans():
                print(f"  {name:18} {description}", file=sys.stderr)
            return 2
    from repro.core.federation import explore_tenants

    # Duplicate scenario names are legal (the isolation benchmark runs
    # the same scenario twice); tenant labels disambiguate as name#N.
    labels: List[str] = []
    counts = {name: names.count(name) for name in names}
    seen: dict = {}
    tenants = {}
    for name in names:
        label = name
        if counts[name] > 1:
            seen[name] = seen.get(name, 0) + 1
            label = f"{name}#{seen[name]}"
        overrides = (
            {"filter_mode": args.filter_mode}
            if args.filter_mode is not None else {}
        )
        built = get_scenario(name).build(seed=args.seed, **overrides)
        built.converge()
        violations = built.check_invariants()
        if violations:
            for violation in violations:
                print(f"  invariant violated ({label}): "
                      f"{violation.describe()}", file=sys.stderr)
            return 1
        corpus = built.seed_corpus()
        if not corpus:
            print(f"scenario {name!r} declares no exploration seeds")
            return 1
        tenants[label] = (built.federation(), corpus)
        labels.append(label)
    reports, summary = explore_tenants(
        tenants,
        budget=ExplorationBudget(max_executions=args.executions),
        workers=args.workers,
        policy=args.policy,
        strategy=args.strategy,
        strategy_seed=args.seed,
        stream_epochs=args.stream_epochs,
        epoch_churn=args.epoch_churn,
        autoscale=args.autoscale,
        autoscale_interval=args.autoscale_interval,
        chaos=chaos_plan,
    )
    pool = f"1 shared pool × {args.workers} workers"
    if args.autoscale:
        pool += " (autoscaled)"
    total_seeds = sum(len(corpus) for _, corpus in tenants.values())
    print(f"service exploration ({len(tenants)} tenants, {pool}, "
          f"{total_seeds} seeds):")
    any_findings = False
    for label in labels:
        report = reports[label]
        findings = report.findings()
        any_findings = any_findings or bool(findings or report.global_findings)
        stats = report.stats
        print(
            f"  tenant {label}: {len(report.sessions)} sessions"
            f" | findings {len(findings)}"
            f" | global findings {len(report.global_findings)}"
            f" | wave delivered {stats.delivered} msgs"
            f" converged={stats.converged}"
        )
    by_tenant = summary.get("jobs_by_tenant", {})
    if by_tenant:
        jobs = " ".join(
            f"{tenant}:{count}" for tenant, count in sorted(by_tenant.items())
        )
        print(f"  [service] jobs by tenant: {jobs}")
    print(
        f"  [resilience] restarts {summary.get('workers_restarted', 0)}"
        f" | hangs {summary.get('hangs_detected', 0)}"
        f" | retries {summary.get('jobs_retried', 0)}"
        f" | quarantined {summary.get('jobs_quarantined', 0)}"
        f" | cache degraded {summary.get('degraded_shards', 0)}/"
        f"{summary.get('cache_shards', 0)} shards"
    )
    for event in summary.get("chaos_events", []):
        print(f"    chaos: {event}")
    _print_service_summary(summary)
    return 2 if any_findings else 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    """List the three matrix axes: topologies, workloads, checkers."""
    scenarios = list_scenarios()
    print(f"topologies ({len(scenarios)}):")
    for scenario in scenarios:
        shape = scenario.shape()
        if shape:
            size = f"{shape['nodes']:>3} ASes / {shape['edges']:>3} edges"
        else:
            size = " " * 20
        print(f"{scenario.name:14} {size}  {scenario.description}")
    workloads = list_workloads()
    print(f"\nworkloads ({len(workloads)}):")
    for workload in workloads:
        checkers = ",".join(workload.paired_checkers)
        print(f"{workload.name:14} [{checkers}]  {workload.description}")
    checkers = list_wave_checkers()
    print(f"\nwave checkers ({len(checkers)}):")
    for name, description in checkers:
        print(f"{name:22} {description}")
    print("\ncompose axes with 'repro explore --scenario NAME --workload NAME "
          "[--checker NAME ...]' or sweep them with 'repro matrix'")
    return 0


def cmd_matrix(args: argparse.Namespace) -> int:
    """Run a (topology × workload × checker) slice of the scenario matrix.

    Exit code 0 means every cell ran (or was honestly skipped as
    not-applicable); 1 means at least one cell *errored*.  Cells whose
    checkers fired are expected output — the matrix exists to surface
    pathologies — so findings alone never fail the run.
    """
    if args.smoke:
        # The fixed CI slice: two small topologies, every workload, one
        # exploration seed per cell under a tiny budget.
        topologies = ["line-3", "star-6"]
        workloads = [workload.name for workload in list_workloads()]
        max_seeds = 1
        budget = ExplorationBudget(max_executions=4)
    else:
        # Scale-tier scenarios (hierarchical-200/1000) are benchmark
        # material, not matrix cells — name them explicitly to run one.
        topologies = _csv(args.topologies) or [
            scenario.name for scenario in list_scenarios()
            if scenario.name != "fig2" and scenario.kind != "scale"
        ]
        workloads = _csv(args.workloads) or [
            workload.name for workload in list_workloads()
        ]
        max_seeds = args.max_seeds
        budget = ExplorationBudget(max_executions=args.executions)
    matrix = ScenarioMatrix(
        topologies,
        workloads,
        checkers=_csv(args.checkers) or None,
        seed=args.seed,
        budget=budget,
        workers=args.workers,
        stream=args.stream,
        max_seeds=max_seeds,
    )
    cells = matrix.cells()
    print(f"scenario matrix: {len(topologies)} topologies × "
          f"{len(workloads)} workloads = {len(cells)} cells"
          + (" (smoke slice)" if args.smoke else ""))
    results = matrix.run(progress=lambda result: print(
        f"  {result.cell.key():28} {result.status:8} "
        f"findings={len(result.findings)} "
        f"({result.wall_seconds:.2f}s"
        + (f"; {result.skip_reason}" if result.status == "skipped" else "")
        + (f"; {result.error}" if result.status == "error" else "")
        + ")"
    ))
    ok = sum(1 for result in results if result.status == "ok")
    skipped = sum(1 for result in results if result.status == "skipped")
    errored = [result for result in results if result.status == "error"]
    fired = sum(1 for result in results if result.fired)
    print(f"matrix done: {ok} ok, {skipped} skipped, {len(errored)} errored; "
          f"checkers fired in {fired} cells")
    for result in errored:
        print(f"  error in {result.cell.key()}: {result.error}", file=sys.stderr)
    return 1 if errored else 0


def _csv(value: Optional[str]) -> List[str]:
    return [item.strip() for item in value.split(",") if item.strip()] if value else []


def cmd_trace_gen(args: argparse.Namespace) -> int:
    trace = RouteViewsGenerator(
        TraceConfig(
            prefix_count=args.prefixes,
            update_count=args.updates,
            duration=args.duration,
            seed=args.seed,
        )
    ).generate()
    data = trace.serialize()
    with open(args.output, "wb") as handle:
        handle.write(data)
    print(f"wrote {args.output}: {len(trace.dump)} dump records, "
          f"{len(trace.updates)} updates, {len(data)} bytes")
    return 0


def cmd_trace_info(args: argparse.Namespace) -> int:
    with open(args.trace, "rb") as handle:
        trace = Trace.deserialize(handle.read())
    origins = {r.origin_as() for r in trace.dump if r.origin_as() is not None}
    lengths = {}
    for record in trace.dump:
        lengths[record.prefix.length] = lengths.get(record.prefix.length, 0) + 1
    print(f"dump: {len(trace.dump)} prefixes, {len(origins)} origin ASes")
    print(f"updates: {len(trace.updates)} over {trace.duration:.0f}s")
    print("masklen mix:", ", ".join(
        f"/{length}:{count}" for length, count in sorted(lengths.items())
    ))
    return 0


def cmd_check_config(args: argparse.Namespace) -> int:
    from repro.bgp.config import parse_config

    with open(args.config) as handle:
        text = handle.read()
    try:
        config = parse_config(text)
    except ConfigError as exc:
        print(f"error: {exc}")
        return 1
    print(f"ok: AS{config.asn}, {len(config.neighbors)} neighbors, "
          f"{len(config.filters)} filters, {len(config.prefix_sets)} prefix sets, "
          f"{len(config.networks)} originated networks")
    for name, neighbor in config.neighbors.items():
        print(f"  neighbor {name}: AS{neighbor.remote_as} "
              f"import={neighbor.import_filter} export={neighbor.export_filter}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DiCE: online testing of federated distributed systems",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    leak = commands.add_parser("leak-check", help="run DiCE route-leak detection")
    _add_scenario_arguments(leak)
    leak.add_argument("--rounds", type=int, default=1)
    leak.add_argument("--executions", type=int, default=32,
                      help="exploration budget per round")
    leak.add_argument("--show", type=int, default=10,
                      help="findings to print")
    leak.set_defaults(func=cmd_leak_check)

    explore = commands.add_parser("explore", help="raw exploration statistics")
    _add_scenario_arguments(explore)
    explore.add_argument("--scenario", default="fig2",
                         help="registry scenario to explore (see 'repro "
                              "scenarios'); anything but fig2 runs a "
                              "federated exploration over the generated "
                              "topology (--filter-mode sets its customer "
                              "filtering; --prefixes/--updates are "
                              "fig2-only trace knobs); a comma-separated "
                              "list runs each scenario as a TENANT of one "
                              "shared streaming pool (requires --stream)")
    explore.add_argument("--executions", type=int, default=48)
    explore.add_argument("--strategy", default="generational",
                         choices=("generational", "dfs", "bfs", "random"))
    explore.add_argument("--policy", default="selective",
                         choices=("selective", "whole-message"))
    explore.add_argument("--workers", type=int, default=1,
                         help="worker processes; >1 fans the observed seed "
                              "buffers out in parallel")
    explore.add_argument("--all-seeds", action="store_true",
                         help="explore every buffered seed (implied by "
                              "--workers > 1)")
    explore.add_argument("--stream", action="store_true",
                         help="streaming pipeline: persistent workers, "
                              "incremental checkpoint shipping, continuous "
                              "harvest (prints a periodic progress line); "
                              "with --scenario, the whole federation shares "
                              "ONE pool via (node, epoch)-keyed images")
    explore.add_argument("--as-rotation", default="yield",
                         choices=("yield", "round-robin"),
                         help="federated streaming only: how the shared "
                              "pool rotates dispatch budget across ASes — "
                              "'yield' favors ASes whose recent sessions "
                              "produced findings (FederationScheduler "
                              "EWMA), 'round-robin' is blind rotation")
    explore.add_argument("--workload", default=None,
                         help="inject a fault/churn workload (see 'repro "
                              "scenarios' for the list) on a fresh clone "
                              "after the exploration wave and run its "
                              "paired wave checkers; requires a generated "
                              "--scenario (not fig2)")
    explore.add_argument("--checker", action="append", default=None,
                         help="override the workload's paired wave "
                              "checkers (repeatable; see 'repro scenarios' "
                              "for the list)")
    explore.add_argument("--chaos", default=None,
                         help="inject a deterministic fault plan into the "
                              "shared streaming pool (kill/hang/drop/"
                              "cache-kill; e.g. 'kill-one-worker') and "
                              "report the recovery counters; requires a "
                              "generated --scenario with --stream")
    explore.add_argument("--autoscale", action="store_true",
                         help="elastic shared pool: start at one worker, "
                              "grow toward --workers on observed backlog, "
                              "shrink (graceful drain) when load falls; "
                              "requires --stream with a generated "
                              "--scenario")
    explore.add_argument("--autoscale-interval", type=float, default=0.05,
                         metavar="SECONDS",
                         help="autoscaler tick interval (default 0.05s); "
                              "smoke runs use a smaller value so short "
                              "bursts still trigger observable resizes")
    explore.add_argument("--epoch-churn", type=int, default=None,
                         metavar="SEGMENTS",
                         help="churn-driven epochs: a --stream-epochs "
                              "boundary re-checkpoints a node but ships a "
                              "delta only when at least SEGMENTS table "
                              "segments changed since its current image; "
                              "quiet nodes keep their epoch (counted as "
                              "epochs_skipped_quiet)")
    explore.add_argument("--stream-epochs", type=int, default=1,
                         help="split each node's seed corpus into this "
                              "many re-checkpoint epochs (federated "
                              "--stream only)")
    explore.set_defaults(func=cmd_explore)

    scenarios = commands.add_parser(
        "scenarios", help="list the matrix axes: topologies, workloads, "
                          "wave checkers"
    )
    scenarios.set_defaults(func=cmd_scenarios)

    matrix = commands.add_parser(
        "matrix", help="sweep a (topology × workload × checker) matrix"
    )
    matrix.add_argument("--topologies", default=None,
                        help="comma-separated topology names (default: every "
                             "registered generated topology)")
    matrix.add_argument("--workloads", default=None,
                        help="comma-separated workload names (default: all)")
    matrix.add_argument("--checkers", default=None,
                        help="comma-separated wave-checker names applied to "
                             "EVERY cell (default: each workload's paired "
                             "checkers)")
    matrix.add_argument("--seed", type=int, default=2010_04_01)
    matrix.add_argument("--executions", type=int, default=4,
                        help="exploration budget per cell")
    matrix.add_argument("--max-seeds", type=int, default=1,
                        help="exploration seeds per cell (0 skips the "
                             "exploration wave and runs the workload only)")
    matrix.add_argument("--workers", type=int, default=1)
    matrix.add_argument("--stream", action="store_true",
                        help="run each cell's exploration wave through the "
                             "streaming pipeline (finding sets match the "
                             "serial run)")
    matrix.add_argument("--smoke", action="store_true",
                        help="fixed CI slice: line-3 and star-6 across every "
                             "workload, 1 seed per cell, tiny budget")
    matrix.set_defaults(func=cmd_matrix)

    gen = commands.add_parser("trace-gen", help="synthesize a RouteViews-style trace")
    gen.add_argument("output", help="output file")
    gen.add_argument("--prefixes", type=int, default=20_000)
    gen.add_argument("--updates", type=int, default=2_000)
    gen.add_argument("--duration", type=float, default=900.0)
    gen.add_argument("--seed", type=int, default=2010_04_01)
    gen.set_defaults(func=cmd_trace_gen)

    info = commands.add_parser("trace-info", help="summarize a trace file")
    info.add_argument("trace", help="trace file")
    info.set_defaults(func=cmd_trace_info)

    check = commands.add_parser("check-config", help="validate a router config")
    check.add_argument("config", help="configuration file")
    check.set_defaults(func=cmd_check_config)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
