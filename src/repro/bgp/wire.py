"""Low-level wire-format helpers shared by the BGP codecs.

The same parsing code must run in two modes (paper section 3.2):

* **production** — over plain ``bytes``, at full speed;
* **exploration** — over :class:`~repro.concolic.symbolic.SymBytes`, where
  multi-byte reads yield :class:`SymInt` values whose use in branches
  records path constraints (the whole-message-symbolic ablation parses
  through here; the selective policy marks fields after a concrete parse).

:class:`Cursor` abstracts over both buffer kinds.  Reads used as lengths
or offsets concretize through ``__index__`` — recorded as concretization
constraints, keeping the path condition sound.
"""

from __future__ import annotations

from typing import List, Union

from repro.concolic.symbolic import SymBytes, SymInt
from repro.util.errors import WireFormatError

Buffer = Union[bytes, SymBytes]
IntLike = Union[int, SymInt]


def as_concrete_int(value: IntLike) -> int:
    """Silently strip the symbolic layer for serialization purposes.

    Encoding happens after the decision logic exploration cares about, and
    encoded exploratory messages never leave the isolation sandbox, so no
    constraint is recorded here (unlike ``__index__``).
    """
    if isinstance(value, SymInt):
        return value.concrete
    return int(value)


def pack_u8(value: IntLike) -> bytes:
    concrete = as_concrete_int(value)
    if not 0 <= concrete <= 0xFF:
        raise WireFormatError(f"u8 out of range: {concrete}")
    return bytes((concrete,))


def pack_u16(value: IntLike) -> bytes:
    concrete = as_concrete_int(value)
    if not 0 <= concrete <= 0xFFFF:
        raise WireFormatError(f"u16 out of range: {concrete}")
    return concrete.to_bytes(2, "big")


def pack_u32(value: IntLike) -> bytes:
    concrete = as_concrete_int(value)
    if not 0 <= concrete <= 0xFFFFFFFF:
        raise WireFormatError(f"u32 out of range: {concrete}")
    return concrete.to_bytes(4, "big")


class Cursor:
    """A read cursor over ``bytes`` or ``SymBytes``.

    Every read advances the position; running off the end raises
    :class:`WireFormatError` (the malformed-message error a BGP speaker
    would answer with a NOTIFICATION).
    """

    def __init__(self, buffer: Buffer, position: int = 0):
        self.buffer = buffer
        self.position = position

    def __len__(self) -> int:
        return len(self.buffer)

    @property
    def remaining(self) -> int:
        return len(self.buffer) - self.position

    def _require(self, count: int) -> None:
        if count < 0 or self.position + count > len(self.buffer):
            raise WireFormatError(
                f"truncated message: need {count} bytes at offset "
                f"{self.position}, have {self.remaining}",
                code=1, subcode=2,  # Message Header Error / Bad Message Length
            )

    def read_u8(self) -> IntLike:
        self._require(1)
        value = self._field(self.position, 1)
        self.position += 1
        return value

    def read_u16(self) -> IntLike:
        self._require(2)
        value = self._field(self.position, 2)
        self.position += 2
        return value

    def read_u32(self) -> IntLike:
        self._require(4)
        value = self._field(self.position, 4)
        self.position += 4
        return value

    def read_bytes(self, count: int) -> Buffer:
        count = int(count)  # concretizes a SymInt length (recorded)
        self._require(count)
        chunk = self.buffer[self.position:self.position + count]
        self.position += count
        return chunk

    def skip(self, count: int) -> None:
        count = int(count)
        self._require(count)
        self.position += count

    def at_end(self) -> bool:
        return self.position >= len(self.buffer)

    def _field(self, offset: int, width: int) -> IntLike:
        if isinstance(self.buffer, SymBytes):
            return self.buffer.to_uint(offset, width)
        return int.from_bytes(self.buffer[offset:offset + width], "big")


def concat(parts: List[Buffer]) -> Buffer:
    """Join buffer fragments, staying symbolic if any part is symbolic."""
    if any(isinstance(part, SymBytes) for part in parts):
        out = SymBytes([])
        for part in parts:
            out = out + (part if isinstance(part, SymBytes) else bytes(part))
        return out
    return b"".join(bytes(part) for part in parts)


def to_plain_bytes(buffer: Buffer) -> bytes:
    """The concrete bytes of a possibly-symbolic buffer."""
    if isinstance(buffer, SymBytes):
        return buffer.concrete
    return bytes(buffer)
