"""A deterministic discrete-event simulator.

The paper's testbed runs three BIRD instances over virtual interfaces on
one machine; our equivalent executes router nodes inside a single-threaded
event loop with explicit simulated time.  Determinism matters more than
wall-clock fidelity here — every experiment must replay identically from a
seed — so events at equal timestamps are ordered by insertion sequence,
and nothing ever reads the host clock.

The queue is sized for federation-scale waves (a 1000-AS exploratory
wave schedules hundreds of thousands of deliveries), so the internal
representation is deliberately flat: each heap entry is a plain list
``[time, seq, callback, state, payload]`` — no per-event object, and
comparison never reaches the callback because ``seq`` is unique.
:meth:`schedule_batch` is the bulk fast path: it enqueues many
deliveries for one shared handler without allocating an
:class:`EventHandle` (batch deliveries are uncancellable by contract),
and :attr:`pending` is a maintained live-event counter rather than a
scan over the heap's cancellation tombstones.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterable, List, Optional, Tuple

from repro.util.errors import SimulationError

EventCallback = Callable[[], None]

#: ``entry[3]`` lifecycle states.
_LIVE = 0
_CANCELLED = 1
_DONE = 2

#: ``entry[4]`` marker for classic no-argument callbacks; batch entries
#: carry their payload there instead and are invoked as ``callback(payload)``.
_NO_PAYLOAD = None

# Entry layout indices (entries are lists, not objects — see module doc).
_TIME, _SEQ, _CALLBACK, _STATE, _PAYLOAD = range(5)


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: list, sim: "Simulator"):
        self._entry = entry
        self._sim = sim

    def cancel(self) -> None:
        # Only a still-live event can be cancelled: cancelling twice, or
        # cancelling after the event fired, must not corrupt the live
        # counter.
        if self._entry[_STATE] == _LIVE:
            self._entry[_STATE] = _CANCELLED
            self._sim._live -= 1

    @property
    def cancelled(self) -> bool:
        return self._entry[_STATE] == _CANCELLED

    @property
    def time(self) -> float:
        return self._entry[_TIME]


class Simulator:
    """Single-threaded priority-queue event loop with simulated time."""

    def __init__(self) -> None:
        self._queue: List[list] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._running = False
        #: Scheduled-but-not-yet-executed events, cancellations excluded.
        #: Maintained incrementally so :attr:`pending` is O(1) — the old
        #: implementation scanned the whole heap (tombstones included)
        #: on every call, which convergence loops pay per wave.
        self._live = 0
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: EventCallback) -> EventHandle:
        """Run ``callback`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        entry = [self._now + delay, next(self._sequence), callback, _LIVE,
                 _NO_PAYLOAD]
        heapq.heappush(self._queue, entry)
        self._live += 1
        return EventHandle(entry, self)

    def schedule_at(self, when: float, callback: EventCallback) -> EventHandle:
        """Run ``callback`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(f"cannot schedule at {when} < now {self._now}")
        entry = [when, next(self._sequence), callback, _LIVE, _NO_PAYLOAD]
        heapq.heappush(self._queue, entry)
        self._live += 1
        return EventHandle(entry, self)

    def schedule_batch(
        self,
        entries: Iterable[Tuple[float, object]],
        handler: Callable[[object], None],
    ) -> int:
        """Bulk-schedule ``handler(payload)`` for every ``(delay, payload)``.

        The fast path for fabric waves: one shared handler, one flat
        payload per delivery, no closure and no :class:`EventHandle`
        per message.  Batch deliveries cannot be cancelled — the fabric
        models a message already on the wire, and the only consumer that
        ever needed cancellation (timer re-arming) goes through
        :meth:`schedule`.  Returns the number of events enqueued.
        """
        queue = self._queue
        sequence = self._sequence
        now = self._now
        count = 0
        for delay, payload in entries:
            if delay < 0:
                raise SimulationError(f"cannot schedule {delay}s in the past")
            heapq.heappush(
                queue, [now + delay, next(sequence), handler, _LIVE, payload]
            )
            count += 1
        self._live += count
        return count

    def schedule_repeating(
        self, start: float, interval: float, count: int, callback: Callable[[int], None]
    ) -> List[EventHandle]:
        """Schedule ``count`` firings of ``callback(i)`` every ``interval``s.

        All occurrences are enqueued up front (not re-armed from the
        callback), so cancelling the returned handles reliably stops the
        train — the shape fault workloads (flap storms, rolling
        reconfigurations) need.
        """
        if interval <= 0:
            raise SimulationError(f"repeating interval must be > 0, got {interval}")
        if count < 0:
            raise SimulationError(f"repeat count must be >= 0, got {count}")
        return [
            self.schedule_at(
                start + i * interval, (lambda i=i: callback(i))
            )
            for i in range(count)
        ]

    def _pop_live(self) -> Optional[list]:
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            if entry[_STATE] == _LIVE:
                entry[_STATE] = _DONE
                self._live -= 1
                return entry
        return None

    def step(self) -> bool:
        """Execute the next pending event; False if the queue is empty."""
        entry = self._pop_live()
        if entry is None:
            return False
        self._now = entry[_TIME]
        self.events_executed += 1
        if entry[_PAYLOAD] is _NO_PAYLOAD:
            entry[_CALLBACK]()
        else:
            entry[_CALLBACK](entry[_PAYLOAD])
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue (up to ``max_events``); returns events executed."""
        if self._running:
            raise SimulationError("simulator re-entered from within an event")
        self._running = True
        executed = 0
        # Hot loop: bind once, pop inline.  Equivalent to repeated
        # step() calls but without the per-event method dispatch.
        queue = self._queue
        heappop = heapq.heappop
        try:
            while queue if max_events is None else (
                queue and executed < max_events
            ):
                entry = heappop(queue)
                if entry[_STATE] != _LIVE:
                    continue
                entry[_STATE] = _DONE
                self._live -= 1
                self._now = entry[_TIME]
                payload = entry[_PAYLOAD]
                if payload is _NO_PAYLOAD:
                    entry[_CALLBACK]()
                else:
                    entry[_CALLBACK](payload)
                executed += 1
        finally:
            self.events_executed += executed
            self._running = False
        return executed

    def run_until(self, deadline: float) -> int:
        """Execute events with time <= ``deadline``; clock ends at deadline."""
        if deadline < self._now:
            raise SimulationError(f"deadline {deadline} is in the past")
        executed = 0
        while self._queue:
            head = self._queue[0]
            if head[_STATE] != _LIVE:
                heapq.heappop(self._queue)
                continue
            if head[_TIME] > deadline:
                break
            self.step()
            executed += 1
        self._now = max(self._now, deadline)
        return executed

    @property
    def pending(self) -> int:
        """Events scheduled and not yet executed (cancellations excluded)."""
        return self._live

    def idle(self) -> bool:
        return self._live == 0
