"""HOTPATH — expression interning, incremental query keys, seed scheduling.

The exploration loop's solver-facing costs, measured head-to-head:

* **key-computation throughput** — the cache key for negating branch i
  of an n-branch path used to re-canonicalize the whole conjunction
  (O(n²) per session); the rolling per-prefix digests make it O(n).
  Acceptance: >=3x reduction on paths of >=200 branches, plus a
  regression gate against ``baseline_hotpath.json``;
* **interning hit rate** — re-running a trace rebuilds structurally
  identical constraints; hash consing must serve them from the intern
  table instead of fresh allocations;
* **propagate-stage throughput** — a fig1-style negation sweep is one
  shared-prefix conjunction per branch; the batched sibling path
  (:meth:`ConstraintSolver.solve_batch`) propagates the prefix once and
  forks per negation, and the domain-box memo replays repeated
  ``narrow`` steps.  Acceptance: >=2x propagate-stage reduction vs the
  per-branch unmemoized sweep, plus a solves/s regression gate;
* **stream-vs-batch findings/s** — the coverage-guided streaming
  pipeline must find the same faults as the batch engine over the same
  seeds, at a competitive rate.

The regression gates compare measured throughput against checked-in
baselines (``baseline_hotpath.json``) recorded on the development
machine, scaled by 0.25 to absorb slower CI hardware, then require
measurements to stay within 30% of that floor.  Recalibrate with
``REPRO_BENCH_WRITE_BASELINE=1`` after an intentional perf change
(read-modify-write: only the keys a run measures are rewritten).

Set ``REPRO_BENCH_SMOKE=1`` for the tiny-budget CI smoke run.
"""

import os
import time

import pytest

from baseline_gate import WRITE_BASELINE, gate_floor, load_baseline, write_baseline
from repro.concolic import ExplorationBudget
from repro.concolic.expr import (
    Const,
    Var,
    intern_info,
    make_binary,
    reset_intern_counters,
)
from repro.concolic.path import PathCondition
from repro.concolic.solver import ConstraintSolver
from repro.concolic.solver.cache import canonical_query_key, query_key_tail
from repro.concolic.solver.intervals import propagate_memo_disabled
from repro.concolic.tracer import BranchSite
from repro.core import get_scenario
from repro.parallel import ParallelExplorer, StreamingExplorer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

PATH_BRANCHES = 200 if SMOKE else 400
VAR_POOL = 8


def build_path(branches: int) -> PathCondition:
    """An engine-shaped path: comparison constraints over a variable pool."""
    path = PathCondition()
    variables = [Var(f"x{i}", 32) for i in range(VAR_POOL)]
    for i in range(branches):
        constraint = make_binary(
            "lt",
            make_binary(
                "add",
                make_binary("mul", variables[i % VAR_POOL], Const(3)),
                variables[(i + 1) % VAR_POOL],
            ),
            Const(10_000 + i),
        )
        path.append(BranchSite("handler.py", 100 + i), constraint, bool(i % 2))
    return path


def measure_key_throughput(branches: int):
    """(from-scratch seconds, rolling seconds, keys) over one full sweep."""
    domains = {f"x{i}": (0, 2**32 - 1) for i in range(VAR_POOL)}
    hint = {f"x{i}": i * 17 for i in range(VAR_POOL)}

    scratch_path = build_path(branches)
    started = time.perf_counter()
    scratch_keys = [
        canonical_query_key(scratch_path.constraints_to_negate(i), domains, hint)
        for i in range(branches)
    ]
    scratch_seconds = time.perf_counter() - started

    rolling_path = build_path(branches)
    started = time.perf_counter()
    tail = query_key_tail(domains, hint)
    rolling_keys = [rolling_path.negation_key(i, tail) for i in range(branches)]
    rolling_seconds = time.perf_counter() - started

    assert rolling_keys == scratch_keys, "incremental keys diverged"
    return scratch_seconds, rolling_seconds, branches


@pytest.mark.benchmark(group="hotpath")
def test_incremental_keys_at_least_3x_faster(benchmark, paper_rows):
    """Acceptance: >=3x key-computation reduction on >=200-branch paths."""
    # Warm once so node-level canonical renderings exist in both arms.
    measure_key_throughput(PATH_BRANCHES)
    scratch, rolling, keys = benchmark.pedantic(
        measure_key_throughput, args=(PATH_BRANCHES,), rounds=3, iterations=1
    )
    speedup = scratch / rolling if rolling else float("inf")
    paper_rows.add(
        "HOTPATH", f"query-key time, {keys}-branch path",
        ">=3x reduction (acceptance)",
        f"{scratch * 1e3:.1f}ms -> {rolling * 1e3:.1f}ms ({speedup:.1f}x, "
        f"{keys / rolling:.0f} keys/s)",
        note="smoke" if SMOKE else "",
    )
    assert speedup >= 3.0, (
        f"incremental keys only {speedup:.2f}x faster "
        f"({scratch * 1e3:.2f}ms vs {rolling * 1e3:.2f}ms)"
    )


@pytest.mark.benchmark(group="hotpath")
def test_key_throughput_regression_gate(benchmark, paper_rows):
    """Fail CI when rolling keys/s regresses >30% against the baseline."""
    measure_key_throughput(PATH_BRANCHES)  # warm renderings
    _, rolling, keys = benchmark.pedantic(
        measure_key_throughput, args=(PATH_BRANCHES,), rounds=3, iterations=1
    )
    measured = keys / rolling if rolling else float("inf")

    if WRITE_BASELINE:
        write_baseline(rolling_keys_per_sec=measured, branches=keys)
        pytest.skip(f"baseline rewritten: {measured:.0f} keys/s")

    recorded = load_baseline().get("rolling_keys_per_sec", 0.0)
    floor = gate_floor("rolling_keys_per_sec")
    paper_rows.add(
        "HOTPATH", "rolling keys/s vs regression floor",
        f">= {floor:.0f} (baseline {recorded:.0f} scaled, 30% tolerance)",
        f"{measured:.0f}",
        note="smoke" if SMOKE else "",
    )
    assert measured >= floor, (
        f"key throughput {measured:.0f}/s regressed below floor {floor:.0f}/s "
        f"(baseline {recorded:.0f}/s)"
    )


PROPAGATE_BRANCHES = 100 if SMOKE else 200
PROPAGATE_HI = 2**20


def build_propagate_profile(branches: int):
    """A fig1-style negation sweep: tightening bounds over a variable pool.

    ``prefix[i]`` is the held constraint of branch i (``3x + c <=
    bound``, bounds decreasing per round over the pool); negating branch
    i asks for ``prefix[:i] ∧ 3x + c > bound_i`` — satisfiable in the
    gap below the previous round's bound on the same variable, so every
    query is SAT and propagate-dominated (the hint misses, linear
    inversion finishes).
    """
    variables = [Var(f"p{i}", 32) for i in range(VAR_POOL)]
    prefix, negations = [], []
    for i in range(branches):
        var = variables[i % VAR_POOL]
        expr = make_binary(
            "add", make_binary("mul", var, Const(3)), Const(7 + i % 5)
        )
        bound = Const(PROPAGATE_HI - i * 37)
        prefix.append(make_binary("le", expr, bound))
        negations.append((i, make_binary("gt", expr, bound)))
    domains = {var.name: (0, 2**32 - 1) for var in variables}
    hint = {var.name: 0 for var in variables}
    return prefix, negations, domains, hint


def measure_propagate_throughput(branches: int):
    """Per-branch unmemoized sweep vs batched+memoized, with model parity."""
    prefix, negations, domains, hint = build_propagate_profile(branches)

    serial = ConstraintSolver(deterministic_rng=True)
    with propagate_memo_disabled():
        started = time.perf_counter()
        serial_models = [
            serial.solve(list(prefix[:length]) + [negation], domains, hint=hint)
            for length, negation in negations
        ]
        serial_seconds = time.perf_counter() - started

    batched = ConstraintSolver(deterministic_rng=True)
    started = time.perf_counter()
    batch_models = batched.solve_batch(prefix, negations, domains, hint=hint)
    batched_seconds = time.perf_counter() - started

    assert batch_models == serial_models, "batched negation sweep diverged"
    assert all(model is not None for model in batch_models), "sweep went UNSAT"
    return {
        "serial_seconds": serial_seconds,
        "batched_seconds": batched_seconds,
        "serial_propagate": serial.stats.propagate_time,
        "batched_propagate": batched.stats.propagate_time,
        "solves": branches,
    }


@pytest.mark.benchmark(group="hotpath")
def test_batched_propagate_at_least_2x_faster(benchmark, paper_rows):
    """Acceptance: >=2x propagate-stage reduction on a fig1-style sweep."""
    measure_propagate_throughput(PROPAGATE_BRANCHES)  # warm renderings + memo
    timing = benchmark.pedantic(
        measure_propagate_throughput,
        args=(PROPAGATE_BRANCHES,),
        rounds=3,
        iterations=1,
    )
    speedup = (
        timing["serial_propagate"] / timing["batched_propagate"]
        if timing["batched_propagate"]
        else float("inf")
    )
    paper_rows.add(
        "HOTPATH", f"propagate time, {timing['solves']}-branch sweep",
        ">=2x reduction (acceptance)",
        f"{timing['serial_propagate'] * 1e3:.1f}ms -> "
        f"{timing['batched_propagate'] * 1e3:.1f}ms ({speedup:.1f}x, "
        f"{timing['solves'] / timing['batched_seconds']:.0f} solves/s)",
        note="smoke" if SMOKE else "",
    )
    assert speedup >= 2.0, (
        f"batched propagate only {speedup:.2f}x faster "
        f"({timing['serial_propagate'] * 1e3:.2f}ms vs "
        f"{timing['batched_propagate'] * 1e3:.2f}ms)"
    )


@pytest.mark.benchmark(group="hotpath")
def test_propagate_throughput_regression_gate(benchmark, paper_rows):
    """Fail CI when batched solves/s regresses >30% against the baseline."""
    measure_propagate_throughput(PROPAGATE_BRANCHES)  # warm renderings + memo
    timing = benchmark.pedantic(
        measure_propagate_throughput,
        args=(PROPAGATE_BRANCHES,),
        rounds=3,
        iterations=1,
    )
    measured = (
        timing["solves"] / timing["batched_seconds"]
        if timing["batched_seconds"]
        else float("inf")
    )

    if WRITE_BASELINE:
        write_baseline(propagate_solves_per_sec=measured)
        pytest.skip(f"baseline rewritten: {measured:.0f} solves/s")

    recorded = load_baseline().get("propagate_solves_per_sec", 0.0)
    floor = gate_floor("propagate_solves_per_sec")
    paper_rows.add(
        "HOTPATH", "batched solves/s vs regression floor",
        f">= {floor:.0f} (baseline {recorded:.0f} scaled, 30% tolerance)",
        f"{measured:.0f}",
        note="smoke" if SMOKE else "",
    )
    assert measured >= floor, (
        f"propagate throughput {measured:.0f}/s regressed below floor "
        f"{floor:.0f}/s (baseline {recorded:.0f}/s)"
    )


def graded_handler(inputs):
    masklen = inputs.masklen
    network = inputs.network
    if masklen > 32:
        return "invalid-length"
    if masklen < 8:
        return "too-coarse"
    if (network >> 24) == 10:
        if masklen >= 24:
            return "private-specific"
        return "private-coarse"
    if masklen == 32:
        return "host-route"
    return "accepted"


@pytest.mark.benchmark(group="hotpath")
def test_interning_hit_rate_on_repeated_traces(benchmark, paper_rows):
    """Re-executing a trace must hit the intern table, not re-allocate."""
    from repro.concolic import ConcolicEngine, InputSpec, VarSpec

    def explore_twice():
        spec = InputSpec([
            VarSpec("network", bits=32, initial=0x0A0A0100),
            VarSpec("masklen", bits=6, initial=24),
        ])
        engine = ConcolicEngine()
        engine.explore(graded_handler, spec,
                       budget=ExplorationBudget(max_executions=32))
        reset_intern_counters()
        engine2 = ConcolicEngine()
        engine2.explore(graded_handler, spec,
                        budget=ExplorationBudget(max_executions=32))
        return intern_info()

    info = benchmark.pedantic(explore_twice, rounds=1, iterations=1)
    lookups = info["hits"] + info["misses"]
    rate = info["hits"] / lookups if lookups else 0.0
    paper_rows.add(
        "HOTPATH", "intern-table hit rate, repeated exploration",
        "structurally identical nodes shared (design goal)",
        f"{info['hits']}/{lookups} ({rate:.0%}), {info['entries']} live entries",
    )
    assert rate > 0.5, f"interning hit rate {rate:.0%} on an identical re-run"


@pytest.mark.benchmark(group="hotpath")
def test_stream_vs_batch_findings_rate(benchmark, paper_rows):
    """Coverage-guided stream: same finding set as batch, competitive rate."""
    scenario = get_scenario("fig2").build(
        filter_mode="erroneous",
        prefix_count=150 if SMOKE else 400,
        update_count=30 if SMOKE else 80,
    )
    scenario.converge()
    seeds = scenario.dice.batch_seeds(all_seeds=True)[: (6 if SMOKE else 16)]
    budget = ExplorationBudget(max_executions=6 if SMOKE else 24)

    batch = ParallelExplorer(workers=2).explore_batch(
        scenario.provider, seeds, budget=budget
    )
    batch_rate = (
        len(batch.findings()) / batch.wall_seconds if batch.wall_seconds else 0.0
    )

    def run_stream():
        stream = StreamingExplorer(
            workers=2, budget=budget, queue_capacity=len(seeds)
        )
        stream.start(scenario.provider)
        for peer, observed in seeds:
            stream.submit(peer, observed)
        return stream.close()

    report = benchmark.pedantic(run_stream, rounds=1, iterations=1)
    stream_rate = (
        len(report.findings()) / report.wall_seconds if report.wall_seconds else 0.0
    )
    assert {f.dedup_key() for f in report.findings()} == {
        f.dedup_key() for f in batch.findings()
    }, "coverage-guided stream changed the finding set"
    paper_rows.add(
        "HOTPATH", "findings/s, coverage-guided stream vs batch",
        "same finding set, competitive rate",
        f"{stream_rate:.2f} vs {batch_rate:.2f} "
        f"({len(report.findings())} findings)",
        note="smoke" if SMOKE else "",
    )
