"""Executors for exploration batches.

Two implementations behind the ``concurrent.futures`` submit/shutdown
surface:

* :class:`concurrent.futures.ProcessPoolExecutor` — real parallelism
  across cores (exploration is CPU-bound pure Python, so threads cannot
  help and processes are the unit of scale, matching the paper's
  one-explorer-per-spare-core deployment);
* :class:`SerialExecutor` — a deterministic in-process fallback that
  runs each submission immediately at ``submit`` time.  Used for
  ``workers=1``, for tests (no fork nondeterminism, full tracebacks),
  and automatically when the host cannot spawn subprocesses.

:func:`make_executor` picks between them and reports which one you got,
so callers can record whether a batch actually ran multi-process.
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, Tuple


class SerialExecutor:
    """Runs submissions inline, in submission order, deterministically."""

    def __init__(self, *args: object, **kwargs: object) -> None:
        self._shutdown = False

    def submit(self, fn: Callable, /, *args, **kwargs) -> "concurrent.futures.Future":
        if self._shutdown:
            raise RuntimeError("cannot submit after shutdown")
        future: concurrent.futures.Future = concurrent.futures.Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - mirror pool semantics
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        self._shutdown = True

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


def make_executor(
    workers: int, force_serial: bool = False
) -> Tuple[object, bool, str]:
    """An executor for ``workers`` slots.

    Returns ``(executor, is_process_pool, fallback_reason)``; the reason
    is non-empty only when a pool was wanted but could not be created.
    Process pools need a working ``fork``/``spawn``; sandboxed or
    single-core hosts may refuse, in which case exploration still runs —
    serially — rather than failing the round, and the reason surfaces in
    the batch report so degraded throughput is explainable.
    """
    if force_serial or workers <= 1:
        return SerialExecutor(), False, ""
    try:
        return concurrent.futures.ProcessPoolExecutor(max_workers=workers), True, ""
    except (OSError, PermissionError, ValueError) as exc:
        return SerialExecutor(), False, f"{type(exc).__name__}: {exc}"
