"""Synthetic RouteViews-style trace generation.

The paper's evaluation loads 319,355 prefixes from a RouteViews dump of
route-views.eqix (2010-04-01) and replays a 15-minute update trace.  The
real dataset is an external artifact (and full Internet scale is
gratuitous in pure Python), so this module synthesizes traces that
preserve the properties the experiments depend on:

* a large table with realistic mask-length mix (heavily /24, then
  /16-/23, few short prefixes) spread across public address space;
* AS paths of realistic depth drawn from a skewed (Zipf-like) AS
  popularity distribution, giving every prefix a stable origin AS —
  the structure hijack detection keys on;
* a timestamped update stream over a configurable window mixing
  re-announcements with changed paths, fresh more-specifics,
  withdrawals, and flap re-announcements.

Everything is deterministic in the seed.  ``prefix_count`` scales the
table: 20,000 keeps the full pipeline fast in CI; passing 319_355
reproduces the paper's scale when you have minutes to spare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bgp.attributes import (
    AsPath,
    ORIGIN_EGP,
    ORIGIN_IGP,
    ORIGIN_INCOMPLETE,
    PathAttributes,
)
from repro.trace.mrt import Trace, TraceRecord
from repro.util.ip import Prefix
from repro.util.rng import derive_rng

#: Mask-length distribution loosely matching Internet tables: (length, weight).
MASKLEN_WEIGHTS: Sequence[Tuple[int, float]] = (
    (24, 0.55), (23, 0.07), (22, 0.08), (21, 0.05), (20, 0.06),
    (19, 0.05), (18, 0.04), (17, 0.02), (16, 0.05), (15, 0.01),
    (14, 0.01), (13, 0.005), (12, 0.005), (11, 0.004), (10, 0.003),
    (9, 0.002), (8, 0.006),
)

#: First octets treated as public and usable by the generator.
PUBLIC_FIRST_OCTETS = tuple(
    octet for octet in range(1, 224)
    if octet not in (10, 127, 169, 172, 192)
)


@dataclass
class TraceConfig:
    """Knobs for synthetic trace generation."""

    prefix_count: int = 20_000
    update_count: int = 2_000
    duration: float = 900.0            # the paper's 15-minute window
    as_count: int = 600                # size of the AS population
    origin_as_count: int = 400         # ASes that originate prefixes
    max_path_len: int = 6
    seed: int = 2010_04_01
    #: Mix of update event kinds (must sum to 1.0).
    p_reannounce: float = 0.60
    p_new_specific: float = 0.12
    p_withdraw: float = 0.18
    p_flap: float = 0.10


class RouteViewsGenerator:
    """Builds deterministic synthetic full-dump + update traces."""

    def __init__(self, config: Optional[TraceConfig] = None):
        self.config = config or TraceConfig()
        weights_total = (
            self.config.p_reannounce
            + self.config.p_new_specific
            + self.config.p_withdraw
            + self.config.p_flap
        )
        if abs(weights_total - 1.0) > 1e-9:
            raise ValueError(f"update-kind probabilities sum to {weights_total}")

    # -- building blocks --------------------------------------------------------

    def _as_population(self) -> List[int]:
        """ASNs with Zipf-like popularity: earlier entries appear more."""
        rng = derive_rng(self.config.seed, "as-population")
        asns = rng.sample(range(1000, 64000), self.config.as_count)
        return asns

    def _pick_transit(self, rng, population: List[int]) -> int:
        """Skewed pick: low indices (big transit ASes) dominate."""
        index = min(
            int(rng.paretovariate(1.3)) - 1, len(population) - 1
        )
        return population[index]

    def _make_path(self, rng, population: List[int], origin: int) -> AsPath:
        """A loop-free AS_SEQUENCE ending at ``origin``."""
        hops = rng.randint(1, self.config.max_path_len)
        path: List[int] = []
        for _ in range(hops - 1):
            candidate = self._pick_transit(rng, population)
            if candidate != origin and candidate not in path:
                path.append(candidate)
        path.append(origin)
        return AsPath.sequence(path)

    def _make_attributes(self, rng, population: List[int], origin: int) -> PathAttributes:
        origin_code = rng.choices(
            (ORIGIN_IGP, ORIGIN_EGP, ORIGIN_INCOMPLETE), weights=(0.85, 0.02, 0.13)
        )[0]
        med = rng.randint(0, 200) if rng.random() < 0.25 else None
        communities: Tuple[int, ...] = ()
        if rng.random() < 0.15:
            communities = tuple(
                (self._pick_transit(rng, population) << 16) | rng.randint(1, 999)
                for _ in range(rng.randint(1, 3))
            )
        return PathAttributes(
            origin=origin_code,
            as_path=self._make_path(rng, population, origin),
            next_hop=0x0A000001,  # rewritten by the announcing peer anyway
            med=med,
            communities=communities,
        )

    def _sample_prefix(self, rng, taken: set) -> Prefix:
        lengths, weights = zip(*MASKLEN_WEIGHTS)
        while True:
            length = rng.choices(lengths, weights=weights)[0]
            first = rng.choice(PUBLIC_FIRST_OCTETS)
            rest = rng.getrandbits(24)
            prefix = Prefix((first << 24) | rest, length)
            if prefix not in taken:
                taken.add(prefix)
                return prefix

    # -- the full dump -------------------------------------------------------------

    def generate(self) -> Trace:
        """The full trace: table dump at t=0 plus the update stream."""
        config = self.config
        population = self._as_population()
        origin_pool = population[:config.origin_as_count]
        dump_rng = derive_rng(config.seed, "dump")
        taken: set = set()
        origin_of: Dict[Prefix, int] = {}
        dump: List[TraceRecord] = []
        for _ in range(config.prefix_count):
            prefix = self._sample_prefix(dump_rng, taken)
            origin = dump_rng.choice(origin_pool)
            origin_of[prefix] = origin
            attributes = self._make_attributes(dump_rng, population, origin)
            dump.append(TraceRecord.announce(0.0, prefix, attributes))

        updates = self._generate_updates(population, origin_pool, origin_of, taken)
        return Trace(dump, updates)

    def _generate_updates(
        self,
        population: List[int],
        origin_pool: List[int],
        origin_of: Dict[Prefix, int],
        taken: set,
    ) -> List[TraceRecord]:
        config = self.config
        rng = derive_rng(config.seed, "updates")
        known = list(origin_of)
        withdrawn: List[Prefix] = []
        updates: List[TraceRecord] = []
        # Poisson-ish arrivals: exponential gaps normalized to the window.
        gaps = [rng.expovariate(1.0) for _ in range(config.update_count)]
        scale = config.duration / (sum(gaps) or 1.0)
        now = 0.0
        for gap in gaps:
            now += gap * scale
            kind = rng.random()
            if kind < config.p_reannounce and known:
                # Path change on an existing prefix (same origin).
                prefix = rng.choice(known)
                origin = origin_of[prefix]
                updates.append(
                    TraceRecord.announce(
                        now, prefix, self._make_attributes(rng, population, origin)
                    )
                )
            elif kind < config.p_reannounce + config.p_new_specific:
                # A fresh, typically more-specific announcement.
                prefix = self._sample_prefix(rng, taken)
                origin = rng.choice(origin_pool)
                origin_of[prefix] = origin
                known.append(prefix)
                updates.append(
                    TraceRecord.announce(
                        now, prefix, self._make_attributes(rng, population, origin)
                    )
                )
            elif kind < (
                config.p_reannounce + config.p_new_specific + config.p_withdraw
            ) and known:
                prefix = rng.choice(known)
                known.remove(prefix)
                withdrawn.append(prefix)
                updates.append(TraceRecord.withdraw(now, prefix))
            elif withdrawn:
                # Flap: a withdrawn prefix comes back.
                prefix = withdrawn.pop(rng.randrange(len(withdrawn)))
                known.append(prefix)
                origin = origin_of[prefix]
                updates.append(
                    TraceRecord.announce(
                        now, prefix, self._make_attributes(rng, population, origin)
                    )
                )
            elif known:
                prefix = rng.choice(known)
                origin = origin_of[prefix]
                updates.append(
                    TraceRecord.announce(
                        now, prefix, self._make_attributes(rng, population, origin)
                    )
                )
        return updates


def seed_updates_from_trace(trace: Trace, count: int = 8):
    """The first ``count`` announcements as exploration seed UPDATEs.

    Trace-derived scenarios use real(istic) update structure — paths,
    MEDs, communities straight from the RouteViews-style stream —
    instead of hand-crafted rogue announcements, so exploration budgets
    land on the attribute shapes a deployed router actually sees.
    Deterministic for a deterministic trace; withdrawals are skipped
    (only announcements carry the symbolic-input surface the marking
    policies derive from).
    """
    from repro.bgp.messages import UpdateMessage
    from repro.bgp.nlri import NlriEntry

    updates = []
    for record in trace.updates:
        if not record.is_announce:
            continue
        updates.append(
            UpdateMessage(
                attributes=record.attributes,
                nlri=[NlriEntry.from_prefix(record.prefix)],
            )
        )
        if len(updates) >= count:
            break
    return updates


def generate_trace(
    prefix_count: int = 20_000,
    update_count: int = 2_000,
    duration: float = 900.0,
    seed: int = 2010_04_01,
) -> Trace:
    """Convenience wrapper around :class:`RouteViewsGenerator`."""
    config = TraceConfig(
        prefix_count=prefix_count,
        update_count=update_count,
        duration=duration,
        seed=seed,
    )
    return RouteViewsGenerator(config).generate()
