"""FIG2 — the experimental topology: build, converge, load the table.

Figure 2 shows the 3-router testbed: Customer -> Provider (DiCE-enabled)
<- Rest-of-Internet, with the provider loading a full table from a
RouteViews replay (319,355 prefixes in the paper; scaled here).  This
benchmark measures topology construction + full-table convergence and
verifies the structural properties every other experiment relies on.
"""

import pytest

from repro.core import get_scenario
from repro.util.ip import Prefix

P = Prefix.parse

SCALE = 5_000  # prefixes; the paper used 319,355 on a 48-core testbed


def build_and_converge(prefix_count=SCALE, update_count=500):
    scenario = get_scenario("fig2").build(
        filter_mode="correct",
        prefix_count=prefix_count,
        update_count=update_count,
    )
    scenario.converge()
    return scenario


@pytest.mark.benchmark(group="fig2")
def test_fig2_full_table_load(benchmark, paper_rows):
    scenario = benchmark.pedantic(build_and_converge, rounds=1, iterations=1)
    table = scenario.provider_table_size
    assert table >= SCALE * 0.97  # a few prefixes end withdrawn by the tail
    assert sorted(scenario.provider.established_peers()) == ["customer", "internet"]
    assert P("10.10.1.0/24") in scenario.provider.loc_rib
    paper_rows.add(
        "FIG2", "prefixes loaded from 'rest of the Internet'",
        "319,355 (RouteViews eqix 2010-04-01)",
        f"{table} (synthetic, scale parameter)",
        note="scaled for pure-Python runtime",
    )
    paper_rows.add(
        "FIG2", "topology",
        "Customer - Provider(DiCE) - Internet",
        "same 3-node layout, all sessions established",
    )


@pytest.mark.benchmark(group="fig2")
def test_fig2_update_processing_rate(benchmark, paper_rows):
    """Raw live-path throughput: updates processed per wall second."""
    scenario = build_and_converge(prefix_count=2_000, update_count=0)
    provider = scenario.provider
    replayer = scenario.replayer

    from repro.bgp.messages import UpdateMessage
    from repro.bgp.nlri import NlriEntry
    from repro.trace.routeviews import RouteViewsGenerator, TraceConfig

    extra = RouteViewsGenerator(
        TraceConfig(prefix_count=1_000, update_count=0, seed=99)
    ).generate()

    updates = [
        UpdateMessage(
            attributes=record.attributes,
            nlri=[NlriEntry.from_prefix(record.prefix)],
        )
        for record in extra.dump
    ]

    def process_batch():
        for update in updates:
            provider.handle_update("internet", update)

    benchmark.pedantic(process_batch, rounds=3, iterations=1)
    seconds = benchmark.stats.stats.mean
    rate = len(updates) / seconds
    paper_rows.add(
        "FIG2", "single-node update processing rate",
        "n/a (C implementation)",
        f"{rate:,.0f} updates/s",
        note="pure-Python router, no exploration",
    )
