"""FED — scenario construction cost and fabric propagation throughput.

The declarative scenario layer must stay cheap in both dimensions that
gate federated exploration at scale:

* **construction** — ``Scenario.build`` + convergence for the registry
  topologies (clique-4, tiered-8); generated federations carry no trace
  replay, so building one should cost milliseconds, and the content-hash
  config parse cache must actually absorb repeated builds;
* **propagation** — the :class:`IsolatedFabric` event queue: exploratory
  waves over the clone ensemble, measured in delivered messages and
  simulator events per wall second;
* **end-to-end** — a full federated exploration (per-AS concolic fan-out
  + wave + digest comparison) at smoke scale, asserting serial/streamed
  finding parity so the benchmark doubles as a determinism gate.

Set ``REPRO_BENCH_SMOKE=1`` for a tiny-budget smoke run (used by CI to
keep this script from rotting without paying the full measurement).
"""

import os
import time

import pytest

from repro.bgp.config import clear_parse_cache, parse_cache_info
from repro.concolic import ExplorationBudget
from repro.core import get_scenario

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

SCENARIO_NAMES = ("clique-4", "tiered-8")
SEED = 42
BUDGET = ExplorationBudget(max_executions=4 if SMOKE else 16)
WAVE_REPEATS = 2 if SMOKE else 10


def build_converged(name):
    built = get_scenario(name).build(seed=SEED)
    built.converge()
    return built


@pytest.mark.benchmark(group="federation")
@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_scenario_construction_time(benchmark, paper_rows, name):
    built = benchmark.pedantic(build_converged, args=(name,), rounds=1, iterations=1)
    shape = built.graph.summary()
    assert built.check_invariants() == []
    paper_rows.add(
        "FED", f"{name} construction + convergence",
        "n/a (paper hand-built one 3-node testbed)",
        f"{built.construction_seconds * 1e3:.1f}ms build, "
        f"{shape['nodes']} ASes / {shape['edges']} edges",
        note="smoke budget" if SMOKE else "",
    )


@pytest.mark.benchmark(group="federation")
def test_parse_cache_absorbs_repeated_builds(paper_rows):
    clear_parse_cache()
    build_converged("tiered-8")
    cold = parse_cache_info()
    build_converged("tiered-8")
    warm = parse_cache_info()
    hits = warm["hits"] - cold["hits"]
    assert hits >= 8, f"rebuild should hit the parse cache per AS, got {hits}"
    assert warm["misses"] == cold["misses"]
    paper_rows.add(
        "FED", "config parse cache on scenario rebuild",
        "n/a",
        f"{hits} hits / 0 new parses for 8 ASes",
    )


@pytest.mark.benchmark(group="federation")
@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_fabric_propagation_throughput(benchmark, paper_rows, name):
    """Handler executions per wall second through the isolated wave.

    Throughput counts every exploratory handler run the fabric drives —
    the injections plus each latency-delayed clone-to-clone delivery.
    The split matters per topology: tiered-8 relays hijacks down its
    transit tree (transit deliveries dominate), while clique-4's pure
    peering relays *nothing* — zero transit events is the no-valley
    property holding on the clone ensemble, and the wave cost is all
    checkpoint + clone + injection.
    """
    built = build_converged(name)
    corpus = built.seed_corpus()
    federation = built.federation()

    def wave():
        delivered = handlers = 0
        started = time.perf_counter()
        for _ in range(WAVE_REPEATS):
            fabric = federation._fabric(max_rounds=16)
            for node, peer, update in corpus:
                fabric.inject(node, peer, update)
            stats = fabric.propagate()
            assert stats.converged
            delivered += stats.delivered
            handlers += len(corpus) + stats.delivered
        return delivered, handlers, time.perf_counter() - started

    delivered, handlers, wall = benchmark.pedantic(wave, rounds=1, iterations=1)
    assert handlers >= len(corpus) * WAVE_REPEATS and wall > 0
    if name == "clique-4":
        assert delivered == 0, "peer-learned routes must not transit a clique"
    else:
        assert delivered > 0, "a transit hierarchy must relay the wave"
    rate = handlers / wall
    paper_rows.add(
        "FED", f"{name} fabric propagation",
        "n/a (sketch only in section 2.4)",
        f"{rate:,.0f} handler-events/s ({delivered} transit deliveries over "
        f"{WAVE_REPEATS} waves, checkpoint+clone included)",
        note="smoke budget" if SMOKE else "",
    )


@pytest.mark.benchmark(group="federation")
def test_shared_pool_vs_per_as_pools_streamed(benchmark, paper_rows):
    """One shared streaming pool vs the legacy one-pool-per-AS layout.

    Workers are held constant on both sides (the point of the refactor:
    an 8-AS federation used to pay 8 pool start-ups and 8×workers
    processes contending for the same cores; now it pays one), and the
    comparison doubles as a parity gate — the per-AS finding sets must
    be identical whichever layout ran.  The smoke run keeps the shape
    check (pool counts + parity) on the serial executor; wall-clock
    numbers are only meaningful on the full run with real processes.
    """
    built = build_converged("tiered-8")
    corpus = built.seed_corpus()
    federation = built.federation()
    workers = 2

    def shared():
        return federation.explore(
            corpus, budget=BUDGET, workers=workers, stream=True,
            force_serial=SMOKE,
        )

    shared_report = benchmark.pedantic(shared, rounds=1, iterations=1)
    per_as_report = federation.explore(
        corpus, budget=BUDGET, workers=workers, stream=True,
        force_serial=SMOKE, shared_pool=False,
    )
    assert shared_report.pools == 1
    assert per_as_report.pools == len(built.routers)
    assert shared_report.finding_keys() == per_as_report.finding_keys(), (
        "shared-pool streamed exploration diverged from the per-AS-pools "
        "finding set"
    )
    deltas = shared_report.stream_summary["deltas_by_node"]
    assert set(deltas) <= set(built.routers)
    paper_rows.add(
        "FED", f"tiered-8 shared pool vs per-AS pools ({workers} workers)",
        "n/a (single-node prototype in the paper)",
        f"1 pool {shared_report.wall_seconds:.2f}s vs "
        f"{per_as_report.pools} pools {per_as_report.wall_seconds:.2f}s, "
        f"identical {len(shared_report.finding_keys())}-key finding set",
        note="smoke budget (serial executor)" if SMOKE else "",
    )


@pytest.mark.benchmark(group="federation")
def test_federated_exploration_end_to_end(benchmark, paper_rows):
    """Full pipeline: per-AS fan-out, wave, digests — with parity gate."""
    built = build_converged("tiered-8")
    corpus = built.seed_corpus()

    def run():
        return built.federation().explore(
            corpus, budget=BUDGET, workers=1, force_serial=True
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.sessions and report.converged
    streamed = built.federation().explore(
        corpus, budget=BUDGET, workers=2, stream=True, force_serial=True
    )
    assert streamed.finding_keys() == report.finding_keys(), (
        "streamed federated exploration diverged from the serial finding set"
    )
    paper_rows.add(
        "FED", "tiered-8 federated exploration",
        "sketched in section 2.4, never built",
        f"{len(report.sessions)} per-AS sessions, "
        f"{len(report.findings())} findings, "
        f"{len(report.global_findings)} cross-AS digest conflicts in "
        f"{report.wall_seconds:.2f}s",
        note="smoke budget" if SMOKE else "",
    )
