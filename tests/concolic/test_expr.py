"""Tests for the symbolic expression DAG."""

import pytest
from hypothesis import given, strategies as st

from repro.concolic.expr import (
    BinOp,
    Const,
    EvalError,
    UnaryOp,
    Var,
    as_boolean,
    evaluate_bool,
    make_binary,
    make_unary,
    negate,
)
from repro.util.errors import SymbolicError


class TestNodes:
    def test_const_evaluates_to_itself(self):
        assert Const(42).evaluate({}) == 42

    def test_const_folds_bool(self):
        assert Const(True).value == 1

    def test_const_rejects_non_int(self):
        with pytest.raises(SymbolicError):
            Const("x")

    def test_var_evaluates_from_env(self):
        assert Var("x").evaluate({"x": 7}) == 7

    def test_var_missing_binding(self):
        with pytest.raises(EvalError):
            Var("x").evaluate({})

    def test_var_domain_from_bits(self):
        assert Var("x", bits=8).domain == (0, 255)

    def test_var_bad_width(self):
        with pytest.raises(SymbolicError):
            Var("x", bits=0)
        with pytest.raises(SymbolicError):
            Var("x", bits=65)

    def test_structural_equality_and_hash(self):
        a = make_binary("add", Var("x"), Const(1))
        b = make_binary("add", Var("x"), Const(1))
        assert a == b
        assert hash(a) == hash(b)
        assert a != make_binary("add", Var("x"), Const(2))

    def test_variables_collected(self):
        expr = make_binary("add", Var("x"), make_binary("mul", Var("y"), Const(3)))
        assert expr.variables() == {"x", "y"}

    def test_walk_and_size(self):
        expr = make_binary("add", Var("x"), Const(0))  # folds to Var
        assert expr.size() == 1
        expr = BinOp("add", Var("x"), Var("y"))
        assert expr.size() == 3
        assert expr.depth() == 2


class TestConstantFolding:
    def test_binary_folding(self):
        assert make_binary("add", Const(2), Const(3)) == Const(5)
        assert make_binary("mul", Const(4), Const(5)) == Const(20)
        assert make_binary("eq", Const(1), Const(1)) == Const(1)

    def test_unary_folding(self):
        assert make_unary("neg", Const(5)) == Const(-5)
        assert make_unary("lnot", Const(0)) == Const(1)

    def test_identity_simplifications(self):
        x = Var("x")
        assert make_binary("add", x, Const(0)) is x
        assert make_binary("mul", x, Const(1)) is x
        assert make_binary("mul", x, Const(0)) == Const(0)
        assert make_binary("shl", x, Const(0)) is x
        assert make_binary("add", Const(0), x) is x

    def test_division_by_zero_not_folded(self):
        expr = make_binary("floordiv", Const(1), Const(0))
        assert isinstance(expr, BinOp)
        with pytest.raises(EvalError):
            expr.evaluate({})

    def test_double_negation_removed(self):
        cond = make_binary("eq", Var("x"), Const(1))
        assert make_unary("lnot", make_unary("lnot", cond)) == cond

    def test_double_arith_negation_removed(self):
        x = Var("x")
        assert make_unary("neg", make_unary("neg", x)) is x


class TestEvaluation:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 3, 4, 7), ("sub", 3, 4, -1), ("mul", 3, 4, 12),
            ("floordiv", 7, 2, 3), ("mod", 7, 2, 1),
            ("and", 0b110, 0b011, 0b010), ("or", 0b110, 0b011, 0b111),
            ("xor", 0b110, 0b011, 0b101), ("shl", 1, 4, 16), ("shr", 16, 4, 1),
            ("eq", 2, 2, 1), ("ne", 2, 2, 0), ("lt", 1, 2, 1), ("le", 2, 2, 1),
            ("gt", 3, 2, 1), ("ge", 1, 2, 0), ("land", 1, 0, 0), ("lor", 1, 0, 1),
        ],
    )
    def test_binary_semantics(self, op, a, b, expected):
        expr = BinOp(op, Var("a"), Var("b"))
        assert expr.evaluate({"a": a, "b": b}) == expected

    def test_huge_shift_guarded(self):
        expr = BinOp("shl", Const(1), Var("x"))
        with pytest.raises(EvalError):
            expr.evaluate({"x": 10**9})

    def test_negative_shift_guarded(self):
        expr = BinOp("shr", Const(1), Var("x"))
        with pytest.raises(EvalError):
            expr.evaluate({"x": -1})

    def test_mod_by_zero(self):
        expr = BinOp("mod", Var("x"), Const(0))
        with pytest.raises(EvalError):
            expr.evaluate({"x": 5})


class TestNegation:
    @pytest.mark.parametrize(
        "op,flipped", [("eq", "ne"), ("ne", "eq"), ("lt", "ge"), ("ge", "lt"),
                       ("gt", "le"), ("le", "gt")]
    )
    def test_comparisons_flip(self, op, flipped):
        expr = BinOp(op, Var("x"), Const(5))
        negated = negate(expr)
        assert isinstance(negated, BinOp) and negated.op == flipped

    def test_negate_lnot_unwraps(self):
        cond = BinOp("eq", Var("x"), Const(1))
        assert negate(make_unary("lnot", cond)) == cond

    def test_negate_const(self):
        assert negate(Const(0)) == Const(1)
        assert negate(Const(7)) == Const(0)

    @given(st.integers(min_value=0, max_value=100), st.integers(min_value=0, max_value=100))
    def test_negation_is_semantic_complement(self, x, c):
        for op in ("eq", "ne", "lt", "le", "gt", "ge"):
            expr = BinOp(op, Var("x"), Const(c))
            env = {"x": x}
            assert bool(expr.evaluate(env)) != bool(negate(expr).evaluate(env))

    def test_as_boolean_wraps_arithmetic(self):
        expr = as_boolean(Var("x"))
        assert expr.is_boolean
        assert evaluate_bool(expr, {"x": 3})
        assert not evaluate_bool(expr, {"x": 0})

    def test_as_boolean_keeps_boolean(self):
        cond = BinOp("lt", Var("x"), Const(1))
        assert as_boolean(cond) is cond


@given(
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=1000),
    st.sampled_from(["add", "sub", "mul", "and", "or", "xor", "eq", "lt"]),
)
def test_folding_preserves_semantics(a, b, op):
    """make_binary(Const, Const) must equal evaluating the unfolded node."""
    folded = make_binary(op, Const(a), Const(b))
    unfolded = BinOp(op, Const(a), Const(b))
    assert folded.evaluate({}) == unfolded.evaluate({})
