"""Tests for the session FSM and the BGP router node."""

import pickle

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.config import NeighborConfig
from repro.bgp.fsm import Session, SessionFsm, SessionState
from repro.bgp.messages import (
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)
from repro.bgp.nlri import NlriEntry
from repro.bgp.router import BgpRouter
from repro.checkpoint.snapshot import Checkpoint
from repro.concolic.env import ExplorationEnvironment
from repro.net.node import NodeHost
from repro.util.ip import Prefix

P = Prefix.parse


def make_fsm(passive=False, hold_time=90):
    neighbor = NeighborConfig("peer", remote_as=65002, passive=passive,
                              hold_time=hold_time)
    session = Session(neighbor, hold_time=hold_time)
    return SessionFsm(session, local_asn=65001, router_id=0x0A000001), session


class TestSessionFsm:
    def test_active_start_sends_open(self):
        fsm, session = make_fsm()
        messages = fsm.start(now=0.0)
        assert len(messages) == 1 and isinstance(messages[0], OpenMessage)
        assert session.state == SessionState.OPEN_SENT

    def test_passive_start_sends_nothing(self):
        fsm, session = make_fsm(passive=True)
        assert fsm.start(0.0) == []
        assert session.state == SessionState.IDLE

    def test_full_active_handshake(self):
        fsm, session = make_fsm()
        fsm.start(0.0)
        replies, established = fsm.on_open(OpenMessage(my_as=65002), 0.1)
        assert [type(m) for m in replies] == [KeepaliveMessage]
        assert session.state == SessionState.OPEN_CONFIRM
        replies, established = fsm.on_keepalive(0.2)
        assert established
        assert session.state == SessionState.ESTABLISHED
        assert session.established_at == 0.2

    def test_passive_handshake_replies_open_and_keepalive(self):
        fsm, session = make_fsm(passive=True)
        replies, _ = fsm.on_open(OpenMessage(my_as=65002), 0.1)
        assert [type(m) for m in replies] == [OpenMessage, KeepaliveMessage]
        assert session.state == SessionState.OPEN_CONFIRM

    def test_wrong_remote_as_rejected(self):
        fsm, session = make_fsm()
        fsm.start(0.0)
        replies, _ = fsm.on_open(OpenMessage(my_as=66666), 0.1)
        assert isinstance(replies[0], NotificationMessage)
        assert session.state == SessionState.IDLE
        assert session.resets == 1

    def test_hold_time_negotiated_to_minimum(self):
        fsm, session = make_fsm(hold_time=90)
        fsm.start(0.0)
        fsm.on_open(OpenMessage(my_as=65002, hold_time=30), 0.1)
        assert session.hold_time == 30

    def test_unexpected_open_resets(self):
        fsm, session = make_fsm()
        fsm.start(0.0)
        fsm.on_open(OpenMessage(my_as=65002), 0.1)
        fsm.on_keepalive(0.2)
        replies, _ = fsm.on_open(OpenMessage(my_as=65002), 0.3)
        assert isinstance(replies[0], NotificationMessage)
        assert session.state == SessionState.IDLE

    def test_keepalive_before_open_resets(self):
        fsm, session = make_fsm()
        replies, established = fsm.on_keepalive(0.0)
        assert not established
        assert isinstance(replies[0], NotificationMessage)

    def test_update_allowed_only_established(self):
        fsm, session = make_fsm()
        assert not fsm.on_update_allowed(0.0)
        fsm2, session2 = make_fsm()
        fsm2.start(0.0)
        fsm2.on_open(OpenMessage(my_as=65002), 0.1)
        fsm2.on_keepalive(0.2)
        assert fsm2.on_update_allowed(0.3)

    def test_hold_timer_expiry(self):
        fsm, session = make_fsm(hold_time=10)
        fsm.start(0.0)
        fsm.on_open(OpenMessage(my_as=65002, hold_time=10), 0.0)
        fsm.on_keepalive(0.0)
        assert fsm.check_hold_timer(5.0) == []
        messages = fsm.check_hold_timer(11.0)
        assert isinstance(messages[0], NotificationMessage)
        assert messages[0].code == 4
        assert session.state == SessionState.IDLE

    def test_hold_time_zero_disables_timer(self):
        fsm, session = make_fsm(hold_time=0)
        fsm.start(0.0)
        assert fsm.check_hold_timer(1e9) == []

    def test_notification_resets(self):
        fsm, session = make_fsm()
        fsm.start(0.0)
        fsm.on_notification(NotificationMessage(code=6))
        assert session.state == SessionState.IDLE

    def test_keepalive_tick(self):
        fsm, session = make_fsm()
        assert fsm.keepalive_tick(0.0) == []  # idle: nothing
        fsm.start(0.0)
        fsm.on_open(OpenMessage(my_as=65002), 0.1)
        assert [type(m) for m in fsm.keepalive_tick(1.0)] == [KeepaliveMessage]


PROVIDER = """
router bgp 65010;
router-id 10.0.0.1;
network 203.0.113.0/24;
prefix-set CUSTOMERS { 10.10.0.0/16 le 24; }
filter customer-in { if net in CUSTOMERS then accept; reject; }
neighbor customer {
    remote-as 65020;
    import filter customer-in;
    export filter accept-all;
}
neighbor transit {
    remote-as 64999;
    passive;
}
"""

CUSTOMER = """
router bgp 65020;
router-id 10.0.0.2;
network 10.10.1.0/24;
network 192.0.2.0/24;
neighbor provider { remote-as 65010; passive; }
"""

TRANSIT = """
router bgp 64999;
router-id 10.0.0.3;
network 8.8.8.0/24;
neighbor provider { remote-as 65010; }
"""


@pytest.fixture
def triangle():
    """Provider with a customer and a transit peer, fully converged."""
    host = NodeHost()
    provider = host.add_node("provider", lambda n, e: BgpRouter(n, e, PROVIDER))
    customer = host.add_node("customer", lambda n, e: BgpRouter(n, e, CUSTOMER))
    transit = host.add_node("transit", lambda n, e: BgpRouter(n, e, TRANSIT))
    host.add_link("provider", "customer", latency=0.001)
    host.add_link("provider", "transit", latency=0.001)
    host.start()
    host.run()
    return host, provider, customer, transit


class TestRouter:
    def test_sessions_establish(self, triangle):
        _, provider, customer, transit = triangle
        assert sorted(provider.established_peers()) == ["customer", "transit"]
        assert customer.established_peers() == ["provider"]
        assert transit.established_peers() == ["provider"]

    def test_import_filter_applied(self, triangle):
        _, provider, *_ = triangle
        assert P("10.10.1.0/24") in provider.loc_rib      # allowed by filter
        assert P("192.0.2.0/24") not in provider.loc_rib  # filtered out
        assert provider.counters["routes_filtered"] >= 1

    def test_static_routes_originated_and_propagated(self, triangle):
        _, provider, customer, transit = triangle
        assert P("203.0.113.0/24") in provider.loc_rib
        assert P("203.0.113.0/24") in customer.loc_rib
        assert P("203.0.113.0/24") in transit.loc_rib

    def test_transit_routes_flow_to_customer(self, triangle):
        _, _, customer, _ = triangle
        route = customer.loc_rib.get(P("8.8.8.0/24"))
        assert route is not None
        # Path: provider prepended itself onto transit's announcement.
        assert route.attributes.as_path.as_list() == [65010, 64999]

    def test_customer_route_reaches_transit_with_origin_intact(self, triangle):
        _, _, _, transit = triangle
        route = transit.loc_rib.get(P("10.10.1.0/24"))
        assert route is not None
        assert route.attributes.as_path.as_list() == [65010, 65020]
        assert route.origin_as() == 65020

    def test_next_hop_rewritten_on_export(self, triangle):
        _, _, customer, _ = triangle
        route = customer.loc_rib.get(P("8.8.8.0/24"))
        assert route.attributes.next_hop == customer.sessions["provider"].remote_id

    def test_withdrawal_propagates(self, triangle):
        host, provider, customer, transit = triangle
        update = UpdateMessage(withdrawn=[NlriEntry.from_prefix(P("10.10.1.0/24"))])
        customer.env.send("provider", update.encode())
        host.run()
        assert P("10.10.1.0/24") not in provider.loc_rib
        assert P("10.10.1.0/24") not in transit.loc_rib

    def test_as_path_loop_rejected(self, triangle):
        host, provider, _, transit = triangle
        looped = UpdateMessage(
            attributes=PathAttributes(
                as_path=AsPath.sequence([64999, 65010, 7]), next_hop=5
            ),
            nlri=[NlriEntry.from_prefix(P("77.0.0.0/8"))],
        )
        transit.env.send("provider", looped.encode())
        host.run()
        assert P("77.0.0.0/8") not in provider.loc_rib
        assert provider.counters["loop_rejected"] >= 1

    def test_update_missing_next_hop_triggers_notification(self, triangle):
        host, provider, _, transit = triangle
        bad = UpdateMessage(
            attributes=PathAttributes(as_path=AsPath.sequence([64999])),
            nlri=[NlriEntry.from_prefix(P("77.0.0.0/8"))],
        )
        provider.handle_update("transit", bad)
        assert provider.counters["update_errors"] == 1

    def test_update_from_unknown_peer_ignored(self, triangle):
        _, provider, *_ = triangle
        update = UpdateMessage(nlri=[NlriEntry.from_prefix(P("5.0.0.0/8"))])
        provider.handle_update("stranger", update)
        assert provider.counters["messages_from_unknown_peer"] == 1

    def test_update_before_established_resets(self):
        host = NodeHost()
        provider = host.add_node("provider", lambda n, e: BgpRouter(n, e, PROVIDER))
        host.add_node("customer", lambda n, e: BgpRouter(n, e, CUSTOMER))
        host.add_link("provider", "customer")
        # No handshake ran: session idle.
        update = UpdateMessage(
            attributes=PathAttributes(as_path=AsPath.sequence([65020]), next_hop=2),
            nlri=[NlriEntry.from_prefix(P("10.10.1.0/24"))],
        )
        provider.handle_update("customer", update)
        assert provider.counters["updates_out_of_establish"] == 1

    def test_session_loss_withdraws_routes(self, triangle):
        host, provider, customer, transit = triangle
        assert P("10.10.1.0/24") in transit.loc_rib
        # Customer notifies: session down; its routes must vanish everywhere.
        customer.env.send("provider", NotificationMessage(code=6).encode())
        host.run()
        assert P("10.10.1.0/24") not in provider.loc_rib
        assert P("10.10.1.0/24") not in transit.loc_rib

    def test_better_route_replaces(self, triangle):
        host, provider, _, transit = triangle
        # Transit announces a shorter path to the customer prefix space?
        # Use a fresh prefix announced by both peers with different path lengths.
        long_path = UpdateMessage(
            attributes=PathAttributes(
                as_path=AsPath.sequence([64999, 5, 6, 7]), next_hop=3
            ),
            nlri=[NlriEntry.from_prefix(P("55.0.0.0/8"))],
        )
        transit.env.send("provider", long_path.encode())
        host.run()
        assert provider.loc_rib.get(P("55.0.0.0/8")).attributes.as_path.hop_count() == 4
        short_path = UpdateMessage(
            attributes=PathAttributes(as_path=AsPath.sequence([64999, 5]), next_hop=3),
            nlri=[NlriEntry.from_prefix(P("55.0.0.0/8"))],
        )
        transit.env.send("provider", short_path.encode())
        host.run()
        assert provider.loc_rib.get(P("55.0.0.0/8")).attributes.as_path.hop_count() == 2

    def test_counters_exposed(self, triangle):
        _, provider, *_ = triangle
        snapshot = provider.counters.snapshot()
        assert snapshot["updates_received"] >= 2
        assert snapshot["sessions_established"] == 2

    def test_tick_emits_keepalives(self, triangle):
        host, provider, *_ = triangle
        before = provider.counters["sent_KeepaliveMessage"]
        provider.tick()
        assert provider.counters["sent_KeepaliveMessage"] > before


class TestRouterCheckpointing:
    def test_checkpoint_roundtrip_preserves_state(self, triangle):
        _, provider, *_ = triangle
        checkpoint = Checkpoint.capture(provider, "test")
        clone = checkpoint.restore(ExplorationEnvironment())
        assert clone.table_size() == provider.table_size()
        assert clone.config.asn == provider.config.asn
        assert sorted(clone.established_peers()) == sorted(provider.established_peers())
        assert clone.counters.snapshot() == provider.counters.snapshot()

    def test_clone_processes_updates_in_isolation(self, triangle):
        _, provider, *_ = triangle
        checkpoint = Checkpoint.capture(provider, "test")
        env = ExplorationEnvironment(checkpoint_time=checkpoint.node_time)
        clone = checkpoint.restore(env)
        before = provider.table_size()
        update = UpdateMessage(
            attributes=PathAttributes(as_path=AsPath.sequence([65020]), next_hop=2),
            nlri=[NlriEntry.from_prefix(P("10.10.9.0/24"))],
        )
        clone.handle_update("customer", update)
        assert clone.table_size() == before + 1
        assert provider.table_size() == before       # live untouched
        assert len(env.captured) >= 1                # propagation intercepted
        destinations = {m.destination for m in env.captured}
        assert "transit" in destinations

    def test_segments_cover_major_state(self, triangle):
        _, provider, *_ = triangle
        segments = provider.snapshot_segments()
        roots = {name.split("/")[0] for name in segments}
        assert {"config", "sessions", "adj_rib_in", "loc_rib", "adj_rib_out",
                "counters"} <= roots
        for blob in segments.values():
            if blob:
                pickle.loads(blob)  # every segment is a valid pickle

    def test_rib_buckets_are_change_local(self, triangle):
        """One route change dirties only its bucket, not the whole RIB."""
        _, provider, *_ = triangle
        # Grow the table so bucket locality is observable.
        for index in range(200):
            provider.handle_update("transit", UpdateMessage(
                attributes=PathAttributes(
                    as_path=AsPath.sequence([64999, 20000 + index]), next_hop=9
                ),
                nlri=[NlriEntry.from_prefix(Prefix((45 << 24) | (index << 8), 24))],
            ))
        before = provider.snapshot_segments()
        update = UpdateMessage(
            attributes=PathAttributes(
                as_path=AsPath.sequence([64999, 31337]), next_hop=9
            ),
            nlri=[NlriEntry.from_prefix(P("44.44.0.0/16"))],
        )
        provider.handle_update("transit", update)
        after = provider.snapshot_segments()
        changed = [
            name for name in after
            if before.get(name) != after[name]
        ]
        loc_changed = [n for n in changed if n.startswith("loc_rib/")]
        total_loc = [n for n in after if n.startswith("loc_rib/")]
        assert 1 <= len(loc_changed) <= 3
        assert len(loc_changed) < len(total_loc) / 4

    def test_config_accepts_parsed_object(self):
        from repro.bgp.config import parse_config

        config = parse_config(PROVIDER)
        host = NodeHost()
        node = host.add_node("r", lambda n, e: BgpRouter(n, e, config))
        assert node.config.asn == 65010
