"""The streaming exploration pipeline: persistent workers fed by a seed stream.

The batch engine (:class:`repro.parallel.ParallelExplorer`) fans one
synchronous batch out per scheduler round: every job carries a full
checkpoint pickle, results return at a barrier, and between rounds the
workers do not exist.  The paper's deployment is *continuous* — "DiCE
runs in the Provider's router" — so this module replaces the batch with
a pipeline:

* **persistent workers** — long-lived processes pull jobs from
  per-worker FIFO queues and push reports to a shared result queue; the
  pool survives across epochs instead of being rebuilt per round;
* **incremental checkpoint shipping** — each worker receives the full
  :class:`~repro.checkpoint.delta.CheckpointImage` once, and every
  re-checkpoint thereafter ships a :class:`CheckpointDelta` carrying
  only the segments whose page digests changed (a small RIB change
  ships kilobytes, not the whole table);
* **bounded per-peer seed queues with coalescing backpressure** — seeds
  are enqueued as observed; when a peer's queue is full the *oldest*
  unscheduled seed is superseded by the newest (the same ring-buffer
  discipline as the DiCE observation buffers) and counted, so a chatty
  peer can neither grow memory nor starve the stream;
* **asynchronous harvest** — completed session reports are absorbed into
  a :class:`StreamReport` as they arrive (``BatchReport.add_report``);
  aggregate views are valid mid-stream, with no barrier;
* **sharded constraint cache** — workers share a
  :class:`~repro.parallel.cache.ShardedConstraintCache` so solver IPC
  spreads across manager processes instead of serializing through one.

**Federation-wide sharing.**  The worker protocol is node-aware: every
:class:`StreamJob` names the federation node it explores and workers
hold a ``{(node, epoch): image}`` table, so *one* persistent pool can
serve every AS of a federation — :meth:`StreamingExplorer.start_nodes`
ships each node's epoch-0 image once, :meth:`advance_epoch` ships
per-node deltas against per-node bases, and dispatch budget rotates
across ASes by recent finding yield
(:class:`~repro.concolic.coverage.FederationScheduler`).  An 8-AS
federation therefore runs on ``workers`` processes total, not
``8 * workers`` pools fighting for the same cores.

Determinism is preserved from the batch engine: each seed gets a
per-node arrival index, the per-job strategy RNG derives from that index
exactly as batch jobs derive from their batch position, sessions are
independent, and cache hits are bit-identical to local solves.  For a
fixed observed-seed sequence within one epoch, the harvested finding set
equals ``ParallelExplorer.explore_batch`` over the same seeds — with one
worker, N workers, or the in-process serial fallback
(``tests/parallel/test_streaming.py`` asserts all three).

Failure containment mirrors the batch engine's salvage: a worker process
that dies has its in-flight jobs re-run on an in-process fallback worker
(per-job determinism makes the salvage exact); a host that cannot fork
at all runs the whole stream inline.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_module
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.bgp.messages import UpdateMessage
from repro.bgp.router import BgpRouter
from repro.checkpoint.delta import CheckpointDelta, CheckpointImage
from repro.checkpoint.snapshot import Checkpoint
from repro.concolic.coverage import CoverageScheduler, FederationScheduler
from repro.concolic.engine import ExplorationBudget, ExplorationReport
from repro.concolic.solver.cache import DictConstraintCache
from repro.core.inputs import seed_signature
from repro.core.checkers import FaultChecker
from repro.core.report import SessionReport
from repro.parallel.cache import ShardedConstraintCache, sharded_cache
from repro.parallel.explorer import BatchReport
from repro.parallel.worker import SessionJob, run_session_job
from repro.util.errors import CheckpointError, ExplorationError
from repro.util.ip import Prefix

Seed = Tuple[str, UpdateMessage]

#: ``(node, index)`` — the globally unique identity of one streamed job.
#: Indices are assigned per node so each AS's sessions derive the same
#: strategy RNG as that AS's batch jobs would, whatever else shares the
#: pool.
JobKey = Tuple[str, int]

# Worker-bound messages and worker-emitted results are small tagged
# tuples: cheap to pickle, trivially version-free within one process
# tree.
_MSG_EPOCH = "epoch"
_MSG_JOB = "job"
_MSG_STOP = "stop"
_RES_REPORT = "report"
_RES_ERROR = "error"

#: Sentinel job key for errors not attributable to a single job
#: (e.g. a delta arriving before its base image).
_NO_JOB = ("", -1)

#: The node key of a single-node stream (``start(live_router)``).
DEFAULT_NODE = ""


@dataclass
class StreamJob:
    """One seed's exploration session, shipped *without* its checkpoint.

    The checkpoint is resident in the worker (shipped once per epoch per
    node); the job names the ``(node, epoch)`` image it runs against.
    ``index`` is the seed's arrival number *within its node* — the
    strategy RNG derives from it exactly as a batch job derives from its
    batch position, which is what makes the stream's finding set equal
    the batch engine's, per AS, even when many ASes share the pool.
    """

    index: int
    epoch: int
    peer: str
    observed: UpdateMessage
    node: str = DEFAULT_NODE
    policy: str = "selective"
    model_kwargs: Dict[str, object] = field(default_factory=dict)
    budget: Optional[ExplorationBudget] = None
    strategy: str = "generational"
    strategy_seed: int = 0
    anycast_whitelist: Tuple[Prefix, ...] = ()
    checkers: Optional[Sequence[FaultChecker]] = None

    @property
    def key(self) -> JobKey:
        return (self.node, self.index)

    @property
    def image_key(self) -> Tuple[str, int]:
        return (self.node, self.epoch)


@dataclass
class StreamReport(BatchReport):
    """A :class:`BatchReport` grown incrementally, plus stream provenance.

    Reports land in *arrival* order; ``indices`` records each report's
    ``(node, index)`` job key so :meth:`reports_in_index_order` can
    reconstruct the batch engine's per-node submission ordering for
    comparison.
    """

    indices: List[JobKey] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    epochs: int = 0
    seeds_submitted: int = 0
    seeds_coalesced: int = 0
    jobs_dispatched: int = 0
    jobs_recovered: int = 0
    #: Seeds popped from the pending queues but never handed to a worker
    #: (unpicklable payloads); their per-node index is a hole the harvest
    #: will never fill, so ``jobs_completed + jobs_dropped`` — not
    #: ``jobs_completed`` alone — is what accounts for every dispatch
    #: attempt.
    jobs_dropped: int = 0
    checkpoint_bytes_shipped: int = 0
    checkpoint_segments_shipped: int = 0
    full_checkpoint_bytes: int = 0
    #: Epoch boundaries crossed per federation node: how many deltas have
    #: been shipped against each node's image chain.
    deltas_by_node: Dict[str, int] = field(default_factory=dict)

    @property
    def jobs_completed(self) -> int:
        return len(self.reports)

    @property
    def node_count(self) -> int:
        """Distinct federation nodes that have harvested sessions."""
        return len({node for node, _ in self.indices})

    @property
    def checkpoint_bytes_per_job(self) -> float:
        """Average checkpoint transport cost per completed job.

        The batch engine's equivalent is the full checkpoint pickle —
        every job carries one — so this is the number to hold against
        ``full_checkpoint_bytes`` when judging the shipping refactor.
        """
        if not self.reports:
            return float(self.checkpoint_bytes_shipped)
        return self.checkpoint_bytes_shipped / len(self.reports)

    def add_stream_report(self, key: JobKey, report: SessionReport) -> None:
        self.add_report(report)
        self.indices.append(key)

    def reports_in_index_order(
        self, node: Optional[str] = None
    ) -> List[SessionReport]:
        """Harvested reports re-sorted into submission order.

        With ``node`` given, only that federation node's reports are
        returned (in that node's arrival-index order) — the exact list a
        per-AS batch over the same seeds would produce.  Index holes
        (dropped jobs) are tolerated: ordering needs only relative
        positions, not density.
        """
        pairs = sorted(
            (key, report)
            for key, report in zip(self.indices, self.reports)
            if node is None or key[0] == node
        )
        return [report for _, report in pairs]

    def exploration_totals(self) -> ExplorationReport:
        """Merged cross-session exploration counters (incremental-style)."""
        total = ExplorationReport()
        for report in self.reports:
            total.absorb(report.exploration)
        return total

    def summary(self) -> Dict[str, object]:
        base = super().summary()
        base.update(
            {
                "epochs": self.epochs,
                "nodes": self.node_count,
                "seeds_submitted": self.seeds_submitted,
                "seeds_coalesced": self.seeds_coalesced,
                "jobs_completed": self.jobs_completed,
                "jobs_recovered": self.jobs_recovered,
                "jobs_dropped": self.jobs_dropped,
                "errors": len(self.errors),
                "checkpoint_bytes_shipped": self.checkpoint_bytes_shipped,
                "checkpoint_bytes_per_job": round(self.checkpoint_bytes_per_job),
                "full_checkpoint_bytes": self.full_checkpoint_bytes,
                "deltas_by_node": dict(self.deltas_by_node),
            }
        )
        return base


class _WorkerState:
    """Per-``(node, epoch)`` images, rebuilt checkpoints, job execution.

    Shared by the process worker loop and the in-process fallback so the
    two transports cannot drift.  The image table is keyed by
    ``(node, epoch)`` — one worker holds every federation member's chain
    side by side.  ``prune`` is safe only for process workers, whose
    single FIFO queue guarantees that by the time a node's epoch message
    is handled every earlier job *of that node* is done; pruning is
    strictly per node, so advancing one AS's epoch never drops another
    AS's resident image.  The inline fallback receives salvaged jobs out
    of band and keeps everything it was given.
    """

    def __init__(self, cache: Optional[object], prune: bool) -> None:
        self.cache = cache
        self.prune = prune
        self.images: Dict[Tuple[str, int], CheckpointImage] = {}
        self.checkpoints: Dict[Tuple[str, int], Checkpoint] = {}

    def handle(self, msg: tuple) -> Optional[tuple]:
        """Process one coordinator message; job messages return a result."""
        kind = msg[0]
        if kind == _MSG_EPOCH:
            try:
                self._apply_epoch(msg[1])
            except Exception as exc:
                return (_RES_ERROR, _NO_JOB, f"{type(exc).__name__}: {exc}")
            return None
        if kind == _MSG_JOB:
            job: StreamJob = msg[1]
            try:
                return (_RES_REPORT, job.key, self._run(job))
            except Exception as exc:
                return (_RES_ERROR, job.key, f"{type(exc).__name__}: {exc}")
        return None

    def _apply_epoch(self, payload) -> None:
        if isinstance(payload, CheckpointDelta):
            base = self.images.get(payload.base_key)
            if base is None:
                raise CheckpointError(
                    f"delta for node {payload.node!r} epoch {payload.epoch} "
                    f"arrived before its base image "
                    f"(epoch {payload.base_epoch})"
                )
            image = payload.apply(base)
        else:
            image = payload
        key = image.image_key
        self.images[key] = image
        if self.prune:
            stale = [
                k for k in self.images if k[0] == key[0] and k[1] < key[1]
            ]
            for k in stale:
                del self.images[k]
                self.checkpoints.pop(k, None)

    def _run(self, job: StreamJob) -> SessionReport:
        checkpoint = self.checkpoints.get(job.image_key)
        if checkpoint is None:
            image = self.images.get(job.image_key)
            if image is None:
                raise CheckpointError(
                    f"job {job.index} references node {job.node!r} epoch "
                    f"{job.epoch}, but no image for it is resident"
                )
            # Rebuilt once per (node, epoch) per worker: the clone-per-
            # execution loop unpickles state_bytes repeatedly, so the
            # monolithic form is worth the one-time local assembly.
            checkpoint = image.as_checkpoint()
            self.checkpoints[job.image_key] = checkpoint
        return run_session_job(
            SessionJob(
                index=job.index,
                checkpoint=checkpoint,
                peer=job.peer,
                observed=job.observed,
                policy=job.policy,
                model_kwargs=dict(job.model_kwargs),
                budget=job.budget,
                strategy=job.strategy,
                strategy_seed=job.strategy_seed,
                anycast_whitelist=job.anycast_whitelist,
                checkers=job.checkers,
                cache=self.cache,
                node=job.node,
            )
        )


def stream_worker_main(job_queue, result_queue, cache) -> None:
    """Entry point of one persistent streaming worker process."""
    state = _WorkerState(cache, prune=True)
    while True:
        try:
            msg = job_queue.get()
        except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover
            break
        if msg[0] == _MSG_STOP:
            break
        result = state.handle(msg)
        if result is not None:
            try:
                result_queue.put(result)
            except Exception:  # pragma: no cover - coordinator gone
                break


class _ProcessWorker:
    """A persistent worker process and its dedicated FIFO job queue."""

    def __init__(self, slot: int, result_queue, cache) -> None:
        self.slot = slot
        self.salvaged = False
        self.queue: multiprocessing.Queue = multiprocessing.Queue()
        self.process = multiprocessing.Process(
            target=stream_worker_main,
            args=(self.queue, result_queue, cache),
            daemon=True,
            name=f"repro-stream-worker-{slot}",
        )
        self.process.start()

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def send(self, msg: tuple) -> None:
        self.queue.put(msg)

    def stop(self, grace: float = 2.0) -> None:
        if self.process.is_alive():
            try:
                self.queue.put((_MSG_STOP,))
            except Exception:
                pass
            self.process.join(grace)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(1.0)
        try:
            # The worker is gone either way; anything still buffered in
            # the queue has no reader.  Without cancel_join_thread a
            # feeder thread wedged mid-send (worker killed with a full
            # pipe) deadlocks interpreter exit in the queue finalizer.
            self.queue.cancel_join_thread()
            self.queue.close()
        except Exception:  # pragma: no cover
            pass


class _InlineWorker:
    """In-process stand-in: same message protocol, executed on pump().

    Messages accumulate in a mailbox and run only when the coordinator
    pumps (``poll``/``drain``), never at submit time — preserving the
    stream's enqueue-now-explore-later shape so backpressure and
    coalescing behave identically under the serial fallback.

    ``prune`` follows the process workers' rule when the inline worker
    *is* the pool (the no-fork fallback): its FIFO mailbox gives the
    same ordering guarantee, so superseded epochs drop per node and a
    long-lived serial stream does not retain every epoch's image.  The
    salvage fallback keeps ``prune=False``: it receives re-run jobs out
    of band, possibly referencing epochs its mailbox already advanced
    past (the coordinator re-ships a missing base via
    ``_fallback_images``, but only for images *it* still retains).
    """

    slot = -1

    def __init__(self, cache: Optional[object], prune: bool = False) -> None:
        self._state = _WorkerState(cache, prune=prune)
        self._mailbox: Deque[tuple] = deque()
        self.alive = True
        self.salvaged = False

    def send(self, msg: tuple) -> None:
        self._mailbox.append(msg)

    def pump(self) -> List[tuple]:
        results = []
        while self._mailbox:
            result = self._state.handle(self._mailbox.popleft())
            if result is not None:
                results.append(result)
        return results

    def stop(self, grace: float = 0.0) -> None:
        self.alive = False


class StreamingExplorer:
    """Continuous exploration: observed seeds in, findings out, no barrier.

    Lifecycle::

        explorer = StreamingExplorer(workers=4)
        explorer.start(live_router)            # epoch 0: full image to workers
        explorer.submit(peer, update)          # as traffic is observed
        explorer.poll()                        # non-blocking harvest
        explorer.advance_epoch()               # re-checkpoint: ships the delta
        report = explorer.close()              # drain, stop workers, final report

    or, bound to a DiCE facade, ``with dice.stream(workers=4): ...`` —
    which routes every observed UPDATE into :meth:`submit` automatically.

    For a federation, :meth:`start_nodes` registers many live routers on
    the *same* pool::

        explorer = StreamingExplorer(workers=4)
        explorer.start_nodes({"as0": r0, "as1": r1, ...})
        explorer.submit(peer, update, node="as1")
        explorer.advance_epoch(node="as1")     # per-node delta base
        report = explorer.close()

    Every worker holds a ``{(node, epoch): image}`` table, so the
    federation costs one pool of ``workers`` processes total; dispatch
    rotates across ASes by recent finding yield (``as_rotation``).
    """

    def __init__(
        self,
        workers: int = 1,
        policy: str = "selective",
        model_kwargs: Optional[dict] = None,
        checkers: Optional[Sequence[FaultChecker]] = None,
        anycast_whitelist: Optional[Sequence[Prefix]] = None,
        strategy: str = "generational",
        strategy_seed: int = 0,
        constraint_cache: bool = True,
        force_serial: bool = False,
        budget: Optional[ExplorationBudget] = None,
        queue_capacity: int = 32,
        max_inflight: Optional[int] = None,
        cache_shards: int = 0,
        coverage_guided: bool = True,
        as_rotation: str = "yield",
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {queue_capacity}")
        if as_rotation not in ("yield", "round-robin"):
            raise ValueError(
                f"as_rotation must be 'yield' or 'round-robin', got {as_rotation!r}"
            )
        self.workers = workers
        self.policy = policy
        self.model_kwargs = dict(model_kwargs or {})
        self.checkers = list(checkers) if checkers is not None else None
        self.anycast_whitelist = tuple(anycast_whitelist or ())
        self.strategy = strategy
        self.strategy_seed = strategy_seed
        self.constraint_cache = constraint_cache
        self.force_serial = force_serial
        self.budget = budget
        #: Per-(node, peer) pending-seed bound; overflowing coalesces the
        #: oldest.
        self.queue_capacity = queue_capacity
        #: Dispatched-but-unfinished bound; keeps seeds in the pending
        #: queues (where they can still coalesce) instead of piling up
        #: inside worker queues where they cannot.
        self.max_inflight = max_inflight if max_inflight is not None else 2 * workers
        #: 0 = auto (min(4, workers)); shards of the shared solver cache.
        self.cache_shards = cache_shards
        #: Coverage-guided dispatch: score pending seeds by predicted
        #: new-branch coverage (novelty-weighted rotation) instead of
        #: blind per-peer round-robin.  Job indices are assigned at
        #: *submission*, so dispatch order never changes what any single
        #: session computes — the drained finding set stays identical to
        #: the batch engine's whatever order the scheduler picks.
        self.coverage_guided = coverage_guided
        #: Cross-AS dispatch policy for multi-node streams: "yield"
        #: rotates budget toward ASes whose recent sessions produced
        #: findings (FederationScheduler); "round-robin" is blind
        #: rotation.  Single-node streams never consult it.
        self.as_rotation = as_rotation
        self._scheduler = CoverageScheduler() if coverage_guided else None
        self._fed_scheduler = (
            FederationScheduler() if as_rotation == "yield" else None
        )

        self.report = StreamReport(workers=workers)
        self._pending: Dict[Tuple[str, str], Deque[Tuple[int, UpdateMessage]]] = {}
        self._last_peer: Optional[str] = None
        self._last_node: Optional[str] = None
        self._next_index: Dict[str, int] = {}
        self._inflight: Dict[JobKey, StreamJob] = {}
        self._assignment: Dict[JobKey, int] = {}
        self._workers: List[object] = []
        self._fallback: Optional[_InlineWorker] = None
        #: ``(node, epoch)`` images already delivered to the fallback, so
        #: salvage can ship a missing base instead of failing the re-run.
        self._fallback_images: Set[Tuple[str, int]] = set()
        self._result_queue = None
        #: Retained images by ``(node, epoch)``: each node's current
        #: epoch plus any epoch an in-flight job still references.
        self._images: Dict[Tuple[str, int], CheckpointImage] = {}
        #: Each node's latest image — the delta base for the next epoch.
        self._current: Dict[str, CheckpointImage] = {}
        self._epochs: Dict[str, int] = {}
        self._routers: Dict[str, BgpRouter] = {}
        self._cache = None
        self._cache_managers: list = []
        self._started = False
        self._closed = False
        self._started_at = 0.0

    # -- lifecycle -----------------------------------------------------------

    def start(self, live_router: BgpRouter) -> "StreamingExplorer":
        """Capture epoch 0, spin up the worker pool, ship the full image."""
        return self.start_nodes({DEFAULT_NODE: live_router})

    def start_nodes(
        self, live_routers: Dict[str, BgpRouter]
    ) -> "StreamingExplorer":
        """Register a whole federation on one pool.

        Captures every node's epoch-0 image, starts the (single) worker
        pool, and ships each image — node-tagged — to every worker.
        """
        if self._started:
            raise ExplorationError("stream already started")
        if not live_routers:
            raise ExplorationError("start_nodes needs at least one live router")
        self._routers = dict(live_routers)
        self._started_at = time.perf_counter()

        capture_started = time.perf_counter()
        for node, router in self._routers.items():
            label = f"stream-ckpt-{node}" if node else "stream-ckpt"
            image = CheckpointImage.capture(router, label, epoch=0, node_id=node)
            self._epochs[node] = 0
            self._current[node] = image
            self._images[(node, 0)] = image
        self.report.checkpoint_seconds += time.perf_counter() - capture_started
        self._refresh_image_economics()

        multiprocess = not self.force_serial
        self._setup_cache(multiprocess)
        if multiprocess:
            try:
                self._result_queue = multiprocessing.Queue()
                for slot in range(self.workers):
                    self._workers.append(
                        _ProcessWorker(slot, self._result_queue, self._cache)
                    )
                self.report.used_processes = True
            except (OSError, PermissionError, ValueError) as exc:
                for worker in self._workers:
                    worker.stop(grace=0.1)
                self._workers = []
                self._result_queue = None
                self.report.fallback_reason = f"{type(exc).__name__}: {exc}"
        if not self._workers:
            self._workers = [_InlineWorker(self._cache, prune=True)]
            self.report.used_processes = False
        for worker in self._workers:
            for node in sorted(self._current):
                self._ship(worker, self._current[node])
        self._started = True
        return self

    def __enter__(self) -> "StreamingExplorer":
        if not self._started:
            raise ExplorationError("start(live_router) the stream before entering it")
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _setup_cache(self, multiprocess: bool) -> None:
        if not self.constraint_cache:
            return
        if multiprocess:
            shards = self.cache_shards or min(4, self.workers)
            try:
                stack_cm = sharded_cache(shards)
                self._cache = stack_cm.__enter__()
                self._cache_managers.append(stack_cm)
                return
            except (OSError, PermissionError):
                # No manager processes available: per-process L1-only is
                # still correct (a miss is always safe), so degrade to a
                # local dict each worker deep-copies at spawn.
                self._cache_managers = []
        self._cache = DictConstraintCache()

    def _refresh_image_economics(self) -> None:
        """Report-side view of what a full re-ship of every node costs."""
        self.report.full_checkpoint_bytes = sum(
            image.total_bytes for image in self._current.values()
        )
        self.report.checkpoint_pages = sum(
            len(image.pages) for image in self._current.values()
        )

    # -- seed intake ---------------------------------------------------------

    def submit(
        self, peer: str, update: UpdateMessage, node: str = DEFAULT_NODE
    ) -> int:
        """Enqueue an observed seed; returns its per-node arrival index.

        Non-blocking: if the ``(node, peer)`` pending queue is full, the
        oldest unscheduled seed from that queue is superseded (coalescing
        backpressure) — mirroring the DiCE ring buffers — rather than
        blocking the observer, which sits on the live message path.
        """
        self._require_open()
        if node not in self._routers:
            raise ExplorationError(
                f"seed for unregistered node {node!r} "
                f"(stream serves {sorted(self._routers)})"
            )
        index = self._next_index.get(node, 0)
        self._next_index[node] = index + 1
        buffer = self._pending.setdefault((node, peer), deque())
        if len(buffer) >= self.queue_capacity:
            buffer.popleft()
            self.report.seeds_coalesced += 1
        buffer.append((index, update))
        self.report.seeds_submitted += 1
        # Opportunistically harvest finished work (frees in-flight slots)
        # and top the workers up; inline workers do NOT execute here —
        # submit must stay cheap on the observation path.
        self._collect(pump_inline=False)
        self._dispatch()
        return index

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def nodes(self) -> List[str]:
        """The registered federation nodes (``[""]`` for single-node)."""
        return sorted(self._routers)

    @property
    def pending_seeds(self) -> int:
        return sum(len(buffer) for buffer in self._pending.values())

    @property
    def inflight_jobs(self) -> int:
        return len(self._inflight)

    @property
    def idle(self) -> bool:
        """No seed waiting and no job running."""
        return not self.pending_seeds and not self._inflight

    def federation_yields(self) -> Dict[str, float]:
        """Per-AS finding-yield EWMAs driving cross-AS dispatch rotation."""
        if self._fed_scheduler is None:
            return {}
        return self._fed_scheduler.yields()

    # -- dispatch / harvest --------------------------------------------------

    @staticmethod
    def _scheduler_key(node: str, peer: str) -> str:
        """Coverage-scheduler identity for one (node, peer) seed source.

        Qualified by node so two ASes' same-named peers (every generated
        topology names neighbors by AS id) keep separate EWMAs.
        """
        return f"{node}\x00{peer}" if node else peer

    def _pick_node(self) -> Optional[str]:
        """Which federation node's queues to serve next.

        Single-node streams short-circuit.  Multi-node dispatch rotates
        by recent finding yield (:class:`FederationScheduler`) or blind
        round-robin, per ``as_rotation``; either way job results are
        placement-independent, so this only shapes latency.
        """
        nodes = sorted({node for (node, _), buf in self._pending.items() if buf})
        if not nodes:
            return None
        if len(nodes) == 1:
            choice = nodes[0]
        elif self._fed_scheduler is not None:
            picked = self._fed_scheduler.pick(
                [(node, None) for node in nodes], after=self._last_node
            )
            choice = nodes[picked]
        else:
            start = 0
            if self._last_node in nodes:
                start = (nodes.index(self._last_node) + 1) % len(nodes)
            choice = nodes[start]
        self._last_node = choice
        return choice

    def _next_seed(self) -> Optional[Tuple[str, int, str, UpdateMessage]]:
        """The most promising pending seed (coverage-guided), else rotation.

        Node first (finding-yield rotation across ASes), then peer within
        the node: candidates are each peer's oldest unscheduled seed,
        scored by the peer's recent new-coverage EWMA and the seed's
        novelty, falling back to the original per-peer round-robin on
        ties (and exactly reproducing it until the first harvested
        report arrives).  The scheduler's ``mark_scheduled`` is *not*
        called here — dispatch marks a seed only once a worker actually
        accepted it, so a dropped job never leaks a permanently-
        "scheduled" signature.
        """
        node = self._pick_node()
        if node is None:
            return None
        peers = [
            peer for (n, peer), buffer in self._pending.items()
            if n == node and buffer
        ]
        if self._scheduler is not None:
            candidates = [
                (
                    self._scheduler_key(node, peer),
                    seed_signature(self._pending[(node, peer)][0][1]),
                )
                for peer in peers
            ]
            choice = self._scheduler.pick(candidates, after=self._last_peer)
            peer = peers[choice]
        else:
            start = 0
            scoped = [self._scheduler_key(node, peer) for peer in peers]
            if self._last_peer in scoped:
                start = (scoped.index(self._last_peer) + 1) % len(peers)
            peer = peers[start]
        self._last_peer = self._scheduler_key(node, peer)
        index, update = self._pending[(node, peer)].popleft()
        return node, index, peer, update

    def _pick_worker(self):
        alive = [worker for worker in self._workers if worker.alive]
        if not alive:
            return self._ensure_fallback()
        # Rotate by dispatch count so load spreads without bookkeeping
        # per worker; job placement does not affect results.
        return alive[self.report.jobs_dispatched % len(alive)]

    def _dispatch(self) -> int:
        dispatched = 0
        while len(self._inflight) < self.max_inflight:
            seed = self._next_seed()
            if seed is None:
                break
            node, index, peer, update = seed
            job = StreamJob(
                index=index,
                epoch=self._epochs[node],
                peer=peer,
                observed=update,
                node=node,
                policy=self.policy,
                model_kwargs=dict(self.model_kwargs),
                budget=self.budget,
                strategy=self.strategy,
                strategy_seed=self.strategy_seed,
                anycast_whitelist=self.anycast_whitelist,
                checkers=self.checkers,
            )
            worker = self._pick_worker()
            if isinstance(worker, _ProcessWorker):
                # Fail loudly *here*: an unpicklable payload handed to
                # mp.Queue is dropped by the feeder thread with only a
                # stderr traceback, leaving the job in-flight forever
                # and drain() spinning.  The job is small (no checkpoint
                # inside), so the validation pickle is cheap.
                try:
                    pickle.dumps(job)
                except Exception as exc:
                    # The seed was already popped and its index consumed:
                    # account the hole so completed+dropped adds up, and
                    # leave the scheduler untouched — the signature was
                    # never marked scheduled, so its novelty bookkeeping
                    # cannot leak a seed no worker ever ran.
                    self.report.jobs_dropped += 1
                    self.report.errors.append(
                        f"job {index} ({self._describe(node, peer)}) is not "
                        f"picklable: {type(exc).__name__}: {exc}"
                    )
                    continue
            worker.send((_MSG_JOB, job))
            if self._scheduler is not None:
                self._scheduler.mark_scheduled(seed_signature(update))
            self._inflight[job.key] = job
            self._assignment[job.key] = worker.slot
            self.report.jobs_dispatched += 1
            dispatched += 1
        return dispatched

    @staticmethod
    def _describe(node: str, peer: str) -> str:
        return f"{node}:{peer}" if node else peer

    def _touch_wall(self) -> None:
        """Keep the report's wall clock live so mid-stream summaries work."""
        if self._started and not self._closed:
            self.report.wall_seconds = time.perf_counter() - self._started_at

    def _collect(self, pump_inline: bool, block_seconds: float = 0.0) -> bool:
        """Drain ready results; returns True if anything progressed."""
        progressed = False
        self._touch_wall()
        if self._result_queue is not None:
            while True:
                try:
                    if block_seconds > 0.0:
                        msg = self._result_queue.get(timeout=block_seconds)
                        block_seconds = 0.0
                    else:
                        msg = self._result_queue.get_nowait()
                except (queue_module.Empty, EOFError, OSError):
                    break
                self._handle_result(msg)
                progressed = True
            progressed |= self._salvage_dead_workers()
        if pump_inline:
            for worker in self._inline_workers():
                for msg in worker.pump():
                    self._handle_result(msg)
                    progressed = True
        return progressed

    def _inline_workers(self) -> List[_InlineWorker]:
        inline = [w for w in self._workers if isinstance(w, _InlineWorker)]
        if self._fallback is not None:
            inline.append(self._fallback)
        return inline

    def _handle_result(self, msg: tuple) -> None:
        kind, key = msg[0], msg[1]
        if kind == _RES_REPORT:
            if key not in self._inflight:
                return  # already salvaged elsewhere; first result won
            del self._inflight[key]
            self._assignment.pop(key, None)
            self.report.add_stream_report(key, msg[2])
            session = msg[2]
            if self._scheduler is not None:
                self._scheduler.note_session(
                    self._scheduler_key(key[0], session.peer),
                    session.exploration.coverage,
                )
            if self._fed_scheduler is not None:
                self._fed_scheduler.note_findings(key[0], len(session.findings))
        elif kind == _RES_ERROR:
            if key == _NO_JOB:
                self.report.errors.append(str(msg[2]))
                return
            job = self._inflight.pop(key, None)
            self._assignment.pop(key, None)
            if job is not None:
                self.report.errors.append(
                    f"job {job.index} ({self._describe(job.node, job.peer)}): "
                    f"{msg[2]}"
                )
        self._prune_images()

    def _ensure_fallback(self) -> _InlineWorker:
        """The in-process salvage worker, created (and primed) on demand."""
        if self._fallback is None:
            cache = self._cache if self._cache is not None else None
            self._fallback = _InlineWorker(cache)
            # Prime it with full images for every (node, epoch) still
            # retained; deltas are useless to a worker with no base
            # image.  _fallback_images records what it holds so a later
            # salvage can ship any base the retention table has that the
            # fallback missed.
            for key in sorted(self._images):
                self._fallback.send((_MSG_EPOCH, self._images[key]))
                self._fallback_images.add(key)
        return self._fallback

    def _salvage_dead_workers(self) -> bool:
        """Re-run a dead worker's in-flight jobs on the inline fallback."""
        salvaged = False
        for worker in self._workers:
            if not isinstance(worker, _ProcessWorker):
                continue
            if worker.alive or worker.salvaged:
                continue
            worker.salvaged = True
            lost = [
                key
                for key, slot in self._assignment.items()
                if slot == worker.slot and key in self._inflight
            ]
            fallback = self._ensure_fallback()
            for key in lost:
                job = self._inflight[key]
                # The retention invariant (_prune_images keeps every
                # in-flight job's (node, epoch)) guarantees the base is
                # still here; ship it if the fallback predates it or was
                # primed before this epoch existed.
                if job.image_key not in self._fallback_images:
                    image = self._images.get(job.image_key)
                    if image is None:  # pragma: no cover - invariant broken
                        self.report.errors.append(
                            f"job {job.index} "
                            f"({self._describe(job.node, job.peer)}): salvage "
                            f"impossible, image for epoch {job.epoch} evicted"
                        )
                        del self._inflight[key]
                        self._assignment.pop(key, None)
                        continue
                    fallback.send((_MSG_EPOCH, image))
                    self._fallback_images.add(job.image_key)
                fallback.send((_MSG_JOB, job))
                self._assignment[key] = fallback.slot
                self.report.jobs_recovered += 1
            if not self.report.fallback_reason:
                self.report.fallback_reason = (
                    f"worker {worker.slot} died; in-flight jobs re-run in-process"
                )
            salvaged = True
        if salvaged and not any(
            w.alive for w in self._workers if isinstance(w, _ProcessWorker)
        ):
            self.report.used_processes = False
        return salvaged

    def _prune_images(self) -> None:
        """Drop retained images nothing references.

        Retained = each node's current epoch (the next delta's base)
        plus every ``(node, epoch)`` an *in-flight* job still names — a
        dead-worker salvage may need to prime the fallback with exactly
        that base image, so eviction must wait for the job to finish,
        not merely for its epoch to be superseded.
        """
        needed = {(node, epoch) for node, epoch in self._epochs.items()}
        needed |= {job.image_key for job in self._inflight.values()}
        for key in [k for k in self._images if k not in needed]:
            del self._images[key]

    # -- epochs --------------------------------------------------------------

    def _ship(self, worker, payload) -> None:
        worker.send((_MSG_EPOCH, payload))
        if isinstance(payload, CheckpointDelta):
            self.report.checkpoint_bytes_shipped += payload.bytes_shipped
            self.report.checkpoint_segments_shipped += payload.segments_shipped
        else:
            self.report.checkpoint_bytes_shipped += payload.total_bytes
            self.report.checkpoint_segments_shipped += len(payload.segments)

    def advance_epoch(self, node: str = DEFAULT_NODE) -> Dict[str, object]:
        """Epoch boundary for one node: re-checkpoint, ship only the diff.

        Every live worker gets the node-tagged delta (its resident image
        for that node plus the changed segments reassemble the new epoch
        byte-identically); jobs for this node dispatched from here on
        reference the new epoch.  Other nodes' images and epochs are
        untouched — per-node delta bases are the whole point of the
        ``(node, epoch)`` keying.  Returns the shipping economics for
        logging/benchmarks.
        """
        self._require_open()
        if node not in self._routers:
            raise ExplorationError(
                f"advance_epoch for unregistered node {node!r} "
                f"(stream serves {sorted(self._routers)})"
            )
        capture_started = time.perf_counter()
        next_epoch = self._epochs[node] + 1
        label = f"stream-ckpt-{node}-{next_epoch}" if node else (
            f"stream-ckpt-{next_epoch}"
        )
        image = CheckpointImage.capture(
            self._routers[node], label, epoch=next_epoch, node_id=node
        )
        self.report.checkpoint_seconds += time.perf_counter() - capture_started
        delta = image.diff(self._current[node])
        self._epochs[node] = image.epoch
        self._current[node] = image
        self._images[image.image_key] = image
        for worker in self._workers:
            if worker.alive and not worker.salvaged:
                self._ship(worker, delta)
        if self._fallback is not None:
            self._ship(self._fallback, delta)
            self._fallback_images.add(image.image_key)
        self.report.epochs += 1
        self.report.deltas_by_node[node] = (
            self.report.deltas_by_node.get(node, 0) + 1
        )
        self._refresh_image_economics()
        self._prune_images()
        return {
            "node": node,
            "epoch": image.epoch,
            "segments_shipped": delta.segments_shipped,
            "segments_total": len(image.segments),
            "bytes_shipped": delta.bytes_shipped,
            "bytes_full": image.total_bytes,
        }

    # -- harvest -------------------------------------------------------------

    def poll(self) -> List[SessionReport]:
        """Dispatch whatever fits, harvest whatever is ready; no blocking.

        Under the inline fallback this executes all dispatchable work
        (serial semantics); with process workers it only drains the
        result queue.  Returns every report harvested so far.
        """
        self._require_open()
        while True:
            progressed = self._collect(pump_inline=True)
            progressed |= self._dispatch() > 0
            if not progressed:
                break
        return list(self.report.reports)

    def drain(
        self,
        timeout: Optional[float] = None,
        progress=None,
        progress_interval: float = 1.0,
    ) -> StreamReport:
        """Block until every pending seed and in-flight job completes.

        ``progress`` (optional) is called with the live report at most
        every ``progress_interval`` seconds — the CLI uses it for its
        periodic status line.
        """
        self._require_open()
        deadline = None if timeout is None else time.monotonic() + timeout
        last_progress = time.monotonic()
        while not self.idle:
            progressed = self._collect(pump_inline=True)
            progressed |= self._dispatch() > 0
            if not progressed and self._inflight and self._result_queue is not None:
                self._collect(pump_inline=True, block_seconds=0.05)
            if progress is not None and (
                time.monotonic() - last_progress >= progress_interval
            ):
                progress(self.report)
                last_progress = time.monotonic()
            if deadline is not None and time.monotonic() > deadline:
                raise ExplorationError(
                    f"stream drain timed out with {len(self._inflight)} jobs "
                    f"in flight and {self.pending_seeds} seeds pending"
                )
        if progress is not None:
            progress(self.report)
        return self.report

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> StreamReport:
        """Drain (by default), stop the workers, release the cache managers."""
        if self._closed:
            return self.report
        if self._started and drain:
            self.drain(timeout=timeout)
        for worker in self._workers:
            worker.stop()
        if self._fallback is not None:
            self._fallback.stop()
        for manager_cm in self._cache_managers:
            try:
                manager_cm.__exit__(None, None, None)
            except Exception:
                pass
        self._cache_managers = []
        self.report.wall_seconds = time.perf_counter() - self._started_at
        self._closed = True
        return self.report

    def _require_open(self) -> None:
        if not self._started:
            raise ExplorationError("stream not started (call start(live_router))")
        if self._closed:
            raise ExplorationError("stream already closed")
