"""The BGP session finite-state machine (RFC 4271 section 8, simplified).

The simulator's links stand in for TCP, so the Connect/Active dance
collapses: an active speaker sends OPEN immediately on start, a passive
one answers with its own OPEN.  The state ladder kept is::

    IDLE -> OPEN_SENT -> OPEN_CONFIRM -> ESTABLISHED

with NOTIFICATION or hold-timer expiry dropping back to IDLE.  The FSM is
a pure transition engine: handlers mutate the :class:`Session` record and
return the messages to transmit, leaving all I/O to the router — which is
what lets checkpoint clones replay FSM logic in isolation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.bgp.config import NeighborConfig
from repro.bgp.messages import (
    ERR_FSM,
    ERR_HOLD_TIMER_EXPIRED,
    ERR_OPEN_MESSAGE,
    KeepaliveMessage,
    Message,
    NotificationMessage,
    OpenMessage,
)
from repro.bgp.wire import as_concrete_int


class SessionState(enum.Enum):
    IDLE = "idle"
    OPEN_SENT = "open-sent"
    OPEN_CONFIRM = "open-confirm"
    ESTABLISHED = "established"


@dataclass
class Session:
    """Per-peer session bookkeeping (picklable; part of checkpoints)."""

    peer: NeighborConfig
    state: SessionState = SessionState.IDLE
    hold_time: int = 90
    hold_deadline: Optional[float] = None
    keepalive_interval: float = 30.0
    remote_id: int = 0
    established_at: Optional[float] = None
    messages_in: int = 0
    messages_out: int = 0
    resets: int = 0

    @property
    def established(self) -> bool:
        return self.state == SessionState.ESTABLISHED

    def touch(self, now: float) -> None:
        """Any received message restarts the hold timer."""
        if self.hold_time > 0:
            self.hold_deadline = now + self.hold_time


class SessionFsm:
    """Transition logic for one session."""

    def __init__(self, session: Session, local_asn: int, router_id: int):
        self.session = session
        self.local_asn = local_asn
        self.router_id = router_id

    # -- helpers ----------------------------------------------------------------

    def _open_message(self) -> OpenMessage:
        return OpenMessage(
            my_as=self.local_asn,
            hold_time=self.session.peer.hold_time,
            bgp_identifier=self.router_id,
        )

    def _reset(self) -> None:
        session = self.session
        session.state = SessionState.IDLE
        session.hold_deadline = None
        session.established_at = None
        session.resets += 1

    # -- events -------------------------------------------------------------------

    def start(self, now: float) -> List[Message]:
        """Bring the session up; active side transmits its OPEN."""
        session = self.session
        if session.state != SessionState.IDLE:
            return []
        if session.peer.passive:
            return []
        session.state = SessionState.OPEN_SENT
        session.touch(now)
        return [self._open_message()]

    def on_open(self, msg: OpenMessage, now: float) -> Tuple[List[Message], bool]:
        """Handle a received OPEN; returns (replies, reached_established).

        ``reached_established`` is always False here (establishment happens
        on KEEPALIVE receipt) but kept in the signature for symmetry with
        :meth:`on_keepalive`.
        """
        session = self.session
        session.messages_in += 1
        remote_as = as_concrete_int(msg.my_as)
        if remote_as != session.peer.remote_as:
            self._reset()
            return (
                [NotificationMessage(ERR_OPEN_MESSAGE, 2)],  # Bad Peer AS
                False,
            )
        session.remote_id = as_concrete_int(msg.bgp_identifier)
        negotiated = min(session.peer.hold_time, as_concrete_int(msg.hold_time))
        session.hold_time = negotiated
        session.touch(now)
        if session.state == SessionState.IDLE:
            # Passive side: answer with our OPEN plus a KEEPALIVE.
            session.state = SessionState.OPEN_CONFIRM
            return ([self._open_message(), KeepaliveMessage()], False)
        if session.state == SessionState.OPEN_SENT:
            session.state = SessionState.OPEN_CONFIRM
            return ([KeepaliveMessage()], False)
        # OPEN in OPEN_CONFIRM/ESTABLISHED is an FSM error.
        self._reset()
        return ([NotificationMessage(ERR_FSM, 0)], False)

    def on_keepalive(self, now: float) -> Tuple[List[Message], bool]:
        """Handle a received KEEPALIVE; may complete establishment."""
        session = self.session
        session.messages_in += 1
        session.touch(now)
        if session.state == SessionState.OPEN_CONFIRM:
            session.state = SessionState.ESTABLISHED
            session.established_at = now
            return ([], True)
        if session.state == SessionState.ESTABLISHED:
            return ([], False)
        # KEEPALIVE before OPEN exchange completes is an FSM error.
        self._reset()
        return ([NotificationMessage(ERR_FSM, 0)], False)

    def on_notification(self, msg: NotificationMessage) -> None:
        """Peer reported an error: tear the session down."""
        self.session.messages_in += 1
        self._reset()

    def on_update_allowed(self, now: float) -> bool:
        """UPDATEs are only legal in ESTABLISHED; otherwise reset."""
        session = self.session
        session.messages_in += 1
        if session.state == SessionState.ESTABLISHED:
            session.touch(now)
            return True
        self._reset()
        return False

    def check_hold_timer(self, now: float) -> List[Message]:
        """If the hold timer expired, emit the NOTIFICATION and reset."""
        session = self.session
        if (
            session.state != SessionState.IDLE
            and session.hold_deadline is not None
            and now > session.hold_deadline
        ):
            self._reset()
            return [NotificationMessage(ERR_HOLD_TIMER_EXPIRED, 0)]
        return []

    def keepalive_tick(self, now: float) -> List[Message]:
        """Periodic keepalive emission while established."""
        if self.session.state in (SessionState.OPEN_CONFIRM, SessionState.ESTABLISHED):
            self.session.messages_out += 1
            return [KeepaliveMessage()]
        return []
