"""The checkpoint manager: lifecycle and memory accounting of clones.

Orchestrates the paper's section 3.2 checkpoint mechanics for DiCE:

* ``checkpoint(node)`` — fork: capture the live node's state;
* ``clone(checkpoint, env)`` — spawn an exploration process from the
  checkpoint onto an isolated environment;
* ``refresh(name, node)`` — re-measure a process image after it ran, so
  dirty pages show up in the copy-on-write accounting;
* ``memory_report()`` — the section 4.1 metrics: unique-page fraction of
  the checkpoint vs. its parent, and page growth of each clone vs. the
  checkpoint.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checkpoint.snapshot import Checkpoint, Checkpointable, snapshot_pages
from repro.concolic.env import Environment, ExplorationEnvironment
from repro.util.errors import CheckpointError
from repro.util.pages import PAGE_SIZE, PageSet, PageStore
from repro.util.stats import RunningStats


class CloneRecord:
    """Bookkeeping for one live clone.

    ``pages`` is measured lazily: hashing a clone's whole image costs
    real CPU per clone, and callers that only need the restored node
    (the streaming pipeline's clone-per-execution churn) should not pay
    it.  The first access snapshots the node *at that moment* and
    registers the image with the manager's page store; accounting
    callers (``memory_report``, ``refresh``) therefore see exactly the
    numbers they ask for, and node-only callers pay nothing.
    """

    def __init__(
        self,
        name: str,
        node: Checkpointable,
        checkpoint_name: str,
        env: Environment,
        page_size: int = PAGE_SIZE,
        store: Optional[PageStore] = None,
    ):
        self.name = name
        self.node = node
        self.checkpoint_name = checkpoint_name
        self.env = env
        self._page_size = page_size
        self._store = store
        self._pages: Optional[PageSet] = None

    @property
    def pages_measured(self) -> bool:
        """Whether this clone's image has been hashed yet."""
        return self._pages is not None

    @property
    def pages(self) -> PageSet:
        if self._pages is None:
            self.remeasure()
        return self._pages

    @pages.setter
    def pages(self, value: PageSet) -> None:
        self._pages = value
        if self._store is not None:
            self._store.register(self.name, value)

    def remeasure(self) -> PageSet:
        """Snapshot the node's current image (and register it)."""
        self.pages = snapshot_pages(self.node, self._page_size)
        return self._pages


@dataclass
class MemoryReport:
    """The section 4.1 memory-overhead numbers for one manager."""

    live_pages: int
    checkpoint_unique_fraction: float
    clone_growth_mean: float
    clone_growth_max: float
    clone_count: int
    resident_pages: int
    virtual_pages: int
    sharing_ratio: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "live_pages": self.live_pages,
            "checkpoint_unique_fraction": self.checkpoint_unique_fraction,
            "clone_growth_mean": self.clone_growth_mean,
            "clone_growth_max": self.clone_growth_max,
            "clone_count": self.clone_count,
            "resident_pages": self.resident_pages,
            "virtual_pages": self.virtual_pages,
            "sharing_ratio": self.sharing_ratio,
        }


class CheckpointManager:
    """Creates checkpoints and clones, tracking page sharing across them."""

    def __init__(self, page_size: int = PAGE_SIZE):
        self.page_size = page_size
        self.store = PageStore()
        self.checkpoints: Dict[str, Checkpoint] = {}
        self.clones: Dict[str, CloneRecord] = {}
        self._live_pages: Optional[PageSet] = None
        self._sequence = itertools.count()

    # -- live node -------------------------------------------------------------

    def register_live(self, node: Checkpointable) -> None:
        """Record the live (parent) node's current page image."""
        self._live_pages = snapshot_pages(node, self.page_size)
        self.store.register("live", self._live_pages)

    # -- checkpoints -----------------------------------------------------------

    def checkpoint(self, node: Checkpointable, name: Optional[str] = None) -> Checkpoint:
        """Fork: capture ``node`` and register its page image."""
        seq = next(self._sequence)
        name = name or f"ckpt-{seq}"
        if name in self.checkpoints:
            raise CheckpointError(f"checkpoint name {name!r} already in use")
        checkpoint = Checkpoint.capture(node, name, self.page_size, sequence=seq)
        self.checkpoints[name] = checkpoint
        self.store.register(name, checkpoint.pages)
        if self._live_pages is None:
            self.register_live(node)
        return checkpoint

    def drop_checkpoint(self, name: str) -> None:
        if name not in self.checkpoints:
            raise CheckpointError(f"no checkpoint named {name!r}")
        del self.checkpoints[name]
        self.store.unregister(name)

    # -- clones ------------------------------------------------------------------

    def clone(
        self,
        checkpoint: Checkpoint,
        env: Optional[Environment] = None,
        name: Optional[str] = None,
    ) -> CloneRecord:
        """Spawn an exploration clone from ``checkpoint``.

        The default environment is a fresh :class:`ExplorationEnvironment`
        with the clock frozen at the checkpoint instant — the paper's
        forked child with its inherited sockets closed.
        """
        if checkpoint.name not in self.checkpoints:
            raise CheckpointError(
                f"checkpoint {checkpoint.name!r} is not registered with this manager"
            )
        env = env or ExplorationEnvironment(checkpoint_time=checkpoint.node_time)
        node = checkpoint.restore(env)
        name = name or f"{checkpoint.name}/clone-{next(self._sequence)}"
        if name in self.clones:
            raise CheckpointError(f"clone name {name!r} already in use")
        # Pages are NOT snapshotted here: hashing the image per clone is
        # the dominant clone cost, and callers that only need the node
        # (streaming workers churning clones per job) never ask for it.
        # The first ``record.pages`` access measures and registers.
        record = CloneRecord(
            name, node, checkpoint.name, env, self.page_size, self.store
        )
        self.clones[name] = record
        return record

    def refresh(self, name: str) -> PageSet:
        """Re-measure a clone's image after it executed (dirty pages)."""
        if name not in self.clones:
            raise CheckpointError(f"no clone named {name!r}")
        return self.clones[name].remeasure()

    def release(self, name: str) -> None:
        """Terminate a clone and release its pages."""
        if name not in self.clones:
            raise CheckpointError(f"no clone named {name!r}")
        del self.clones[name]
        self.store.unregister(name)

    def release_all_clones(self) -> None:
        for name in list(self.clones):
            self.release(name)

    # -- accounting ----------------------------------------------------------------

    def memory_report(self) -> MemoryReport:
        """The paper's memory-overhead metrics over current images.

        ``checkpoint_unique_fraction`` compares the most recent checkpoint
        against the live parent image ("the checkpoint process has 3.45%
        unique memory pages"); clone growth compares each clone against its
        checkpoint ("the processes forked for exploring ... consume on
        average 36.93% pages more").
        """
        if self._live_pages is None:
            raise CheckpointError("no live node registered")
        checkpoint_fraction = 0.0
        if self.checkpoints:
            latest = max(self.checkpoints.values(), key=lambda c: c.sequence)
            checkpoint_fraction = latest.pages.unique_fraction(self._live_pages)
        growth = RunningStats()
        for record in self.clones.values():
            base = self.checkpoints.get(record.checkpoint_name)
            if base is None:
                continue
            growth.add(record.pages.growth_fraction(base.pages))
        return MemoryReport(
            live_pages=len(self._live_pages),
            checkpoint_unique_fraction=checkpoint_fraction,
            clone_growth_mean=growth.mean,
            clone_growth_max=growth.maximum or 0.0,
            clone_count=growth.count,
            resident_pages=self.store.resident_pages,
            virtual_pages=self.store.virtual_pages,
            sharing_ratio=self.store.sharing_ratio,
        )
