"""RESILIENCE — supervision must be (nearly) free, recovery must pay off.

The streaming pool's resilience layer (worker supervision, heartbeat
hang sweeps, retry bookkeeping) runs on the hot dispatch/collect path of
every stream — faulted or not.  This benchmark keeps it honest:

* **supervision overhead** — the acceptance gate: a supervised stream's
  throughput (executions/sec, best of N interleaved runs) must be
  within **5%** of the same stream with ``supervise=False``.  The
  supervised figure is also recorded in ``baseline_hotpath.json`` and
  floor-gated like the other hot-path figures;
* **recovery economics** — a stream that loses a worker to a chaos kill
  must still complete every job with the same finding set, and finish
  in bounded time (recovery, not graceful degradation into a crawl).

Set ``REPRO_BENCH_SMOKE=1`` for a tiny-budget smoke run (used by CI to
keep this script from rotting without paying the full measurement).
``REPRO_BENCH_WRITE_BASELINE=1`` recalibrates the recorded figure after
an intentional perf change.
"""

import os

import pytest

from baseline_gate import WRITE_BASELINE, gate_floor, write_baseline
from repro.concolic import ExplorationBudget
from repro.core import get_scenario
from repro.parallel import StreamingExplorer, get_chaos_plan

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

WORKERS = 2
SEEDS = 8 if SMOKE else 16
ROUNDS = 2 if SMOKE else 3
BUDGET = ExplorationBudget(max_executions=6 if SMOKE else 16)

#: The acceptance gate: supervised throughput within 5% of unsupervised.
MAX_OVERHEAD = 0.05


@pytest.fixture(scope="module")
def scenario():
    built = get_scenario("fig2").build(
        filter_mode="erroneous",
        prefix_count=150 if SMOKE else 400,
        update_count=30 if SMOKE else 80,
    )
    built.converge()
    return built


def observed_seeds(scenario, count):
    seeds = scenario.dice.batch_seeds(all_seeds=True)
    assert len(seeds) >= min(count, 4)
    return [seeds[i % len(seeds)] for i in range(count)]


def run_stream(scenario, seeds, supervise=True, chaos=None):
    stream = StreamingExplorer(
        workers=WORKERS,
        budget=BUDGET,
        queue_capacity=len(seeds),
        supervise=supervise,
        chaos=chaos,
        restart_backoff=0.01,
    )
    stream.start(scenario.provider)
    for peer, observed in seeds:
        stream.submit(peer, observed)
    return stream.close()


def _rate(report):
    return report.total_executions / max(report.wall_seconds, 1e-9)


def finding_keys(report):
    return frozenset(f.dedup_key() for f in report.findings())


@pytest.mark.benchmark(group="resilience")
def test_supervised_pool_overhead_under_five_percent(paper_rows, scenario):
    """The acceptance gate: heartbeats + supervision cost < 5% throughput."""
    seeds = observed_seeds(scenario, SEEDS)
    probe = run_stream(scenario, seeds, supervise=False)
    if not probe.used_processes:
        pytest.skip("no process workers on this host")
    # Interleave the two configurations so machine drift (thermal, page
    # cache) hits both equally; best-of-N discards scheduling noise.
    unsupervised = [_rate(probe)]
    supervised = []
    for _ in range(ROUNDS):
        supervised.append(_rate(run_stream(scenario, seeds, supervise=True)))
        unsupervised.append(_rate(run_stream(scenario, seeds, supervise=False)))
    sup_rate, unsup_rate = max(supervised), max(unsupervised)
    overhead = 1.0 - sup_rate / unsup_rate
    paper_rows.add(
        "resilience",
        "supervised-pool throughput overhead",
        f"< {MAX_OVERHEAD:.0%}",
        f"{overhead:.1%} ({sup_rate:.1f} vs {unsup_rate:.1f} exec/s)",
        note=f"best of {ROUNDS} interleaved runs",
    )
    assert sup_rate >= unsup_rate * (1.0 - MAX_OVERHEAD), (
        f"supervision overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%} "
        f"({sup_rate:.1f} vs {unsup_rate:.1f} exec/s)"
    )
    if WRITE_BASELINE:
        write_baseline(stream_supervised_execs_per_sec=sup_rate)
        return
    floor = gate_floor("stream_supervised_execs_per_sec")
    assert sup_rate >= floor, (
        f"supervised stream throughput {sup_rate:.1f} exec/s fell below "
        f"the baseline floor {floor:.1f}"
    )


@pytest.mark.benchmark(group="resilience")
def test_recovery_completes_without_collapsing(paper_rows, scenario):
    """Losing a worker mid-stream costs a respawn, not the run: every
    job completes, findings match the unfaulted stream, and the wall
    clock stays within a small multiple of the healthy run's."""
    seeds = observed_seeds(scenario, SEEDS)
    healthy = run_stream(scenario, seeds, supervise=True)
    if not healthy.used_processes:
        pytest.skip("no process workers on this host")
    chaotic = run_stream(
        scenario, seeds, supervise=True, chaos=get_chaos_plan("kill-one-worker")
    )
    assert chaotic.jobs_completed == len(seeds)
    assert not chaotic.quarantined
    assert finding_keys(chaotic) == finding_keys(healthy)
    # Generous bound: the kill costs one respawn backoff and some
    # re-shipped images, never a serial re-run of the whole corpus.
    assert chaotic.wall_seconds < max(healthy.wall_seconds * 3.0, 5.0)
    paper_rows.add(
        "resilience",
        "worker-kill recovery slowdown",
        "< 3x healthy wall clock",
        f"{chaotic.wall_seconds / max(healthy.wall_seconds, 1e-9):.2f}x "
        f"(restarts {chaotic.workers_restarted})",
    )
