"""Federated exploration: extending DiCE's horizon across the network.

Section 2.4 sketches how single-node exploration becomes system-wide:
"we could intercept all messages and let them go through isolated
communication channels.  In addition, we would enable remote nodes to
checkpoint their state and process these messages in isolation over
their checkpointed states.  Effectively, this would extend the scope of
the concolic execution engine to reach across the network."

This module implements that sketch on our substrates:

* every participating node (across administrative domains) is
  checkpointed and cloned onto an isolated environment;
* an :class:`IsolatedFabric` shuttles the messages clones generate to
  the destination *clones* — never to live nodes — over a private
  :class:`~repro.net.sim.Simulator` event queue whose deliveries honor
  the topology's per-edge latencies, until the exploratory wave
  quiesces or the hop budget runs out (in which case the wave reports
  ``converged=False`` instead of silently stopping);
* per-AS concolic exploration is dispatched through the parallel and
  streaming engines (:meth:`FederatedExploration.explore`), so a
  generated federation of N ASes explores with the same worker pools,
  shared constraint cache, and determinism guarantees as a single
  node's batch;
* system-wide checks then run over the clone ensemble, using only the
  privacy-preserving digests of :mod:`repro.core.privacy` for
  cross-domain comparisons.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # avoids the runtime core <-> topology import cycle
    from repro.core.workload import WorkloadPlan
    from repro.parallel.chaos import ChaosPlan
    from repro.topology.graph import AsGraph

from repro.bgp.messages import NotificationMessage, UpdateMessage
from repro.bgp.nlri import NlriEntry
from repro.bgp.router import BgpRouter
from repro.bgp.wire import as_concrete_int
from repro.checkpoint.snapshot import Checkpoint
from repro.concolic.engine import ExplorationBudget
from repro.concolic.env import ExplorationEnvironment
from repro.core.checkers import WaveContext, get_wave_checker
from repro.core.privacy import OriginDigest, conflict_pairs
from repro.core.report import Finding, SessionReport
from repro.net.sim import Simulator
from repro.util.errors import ExplorationError, IsolationViolation, WorkloadError
from repro.util.ip import Prefix

#: One federated exploration seed: run ``update`` (as if from ``peer``)
#: at the clone of ``node`` — the unit both the per-AS concolic fan-out
#: and the fabric wave consume.
FederatedSeed = Tuple[str, str, UpdateMessage]


@dataclass(frozen=True)
class InjectionEvent:
    """One timed fault/churn action inside a propagation wave.

    ``at`` is seconds of wave-simulator time (the wave starts at 0);
    ``action`` receives the fabric and may call any of its injection
    surface — :meth:`IsolatedFabric.inject`, :meth:`~IsolatedFabric.fail_link`,
    :meth:`~IsolatedFabric.reset_session`, or the clones' operator
    actions.  After the action runs, every clone's freshly captured
    output is scheduled onto the wave, so a mid-wave fault cascades
    exactly like organic traffic.  Workloads are lists of these.
    """

    at: float
    label: str
    action: Callable[["IsolatedFabric"], None] = field(compare=False)


def _split_chunks(items: Sequence, count: int) -> List[list]:
    """``items`` in ``count`` contiguous chunks (early chunks larger).

    Chunking only moves *when* a seed enters the stream relative to the
    epoch boundaries — per-node arrival order (and thus every job index)
    is unchanged, which is why epoch-chunked streamed runs keep finding
    parity with serial ones.
    """
    base, extra = divmod(len(items), count)
    chunks: List[list] = []
    cursor = 0
    for i in range(count):
        size = base + (1 if i < extra else 0)
        chunks.append(list(items[cursor:cursor + size]))
        cursor += size
    return chunks


@dataclass
class FabricStats:
    """Message propagation counters for one exploratory wave.

    ``rounds`` is the deepest hop count any delivered message reached
    (the event-queue analogue of the old fixed propagation rounds);
    ``converged`` is False when the wave was cut off by the hop or
    event budget with messages still in flight — a non-quiescent wave
    previously indistinguishable from a converged one.

    :meth:`IsolatedFabric.propagate` returns a fresh instance *per
    wave*; the fabric's own :attr:`IsolatedFabric.stats` accumulates
    waves via :meth:`merge`.  Before this split, a reused fabric's
    second wave inherited the first wave's ``converged=False``/
    ``rounds``/``sim_seconds`` and every downstream consumer
    (``FederatedReport.summary``, the CLI ``[federated]`` line) reported
    stale verdicts.
    """

    delivered: int = 0
    rounds: int = 0
    dropped_no_target: int = 0
    dropped_link_down: int = 0
    injected_events: int = 0
    events: int = 0
    suppressed_hop_budget: int = 0
    converged: bool = True
    sim_seconds: float = 0.0

    def merge(self, wave: "FabricStats") -> "FabricStats":
        """Fold one wave into a cumulative view.

        Counters add; ``rounds`` keeps the deepest hop any wave reached;
        ``converged`` is the conjunction — a fabric that ever cut a wave
        short has a non-converged history even if later waves quiesced.
        """
        self.delivered += wave.delivered
        self.rounds = max(self.rounds, wave.rounds)
        self.dropped_no_target += wave.dropped_no_target
        self.dropped_link_down += wave.dropped_link_down
        self.injected_events += wave.injected_events
        self.events += wave.events
        self.suppressed_hop_budget += wave.suppressed_hop_budget
        self.converged = self.converged and wave.converged
        self.sim_seconds += wave.sim_seconds
        return self


class IsolatedFabric:
    """Clones of many nodes plus the isolated channels between them.

    Construction checkpoints and clones every node.  ``inject`` runs an
    exploratory input at one clone, then :meth:`propagate` drives the
    captured outbound messages through a private discrete-event queue:
    each delivery is scheduled at the sending clone's virtual time plus
    the edge latency (taken from the scenario's :class:`AsGraph` when
    one is supplied), delivered messages trigger their target's handler,
    and newly captured output is scheduled in turn — the isolated
    communication channels of section 2.4 with real timing, not
    lock-step rounds.
    """

    def __init__(
        self,
        routers: Dict[str, BgpRouter],
        max_rounds: int = 16,
        graph: Optional["AsGraph"] = None,
        default_latency: float = 0.001,
        max_events: int = 1_000_000,
        vectorized: bool = True,
    ):
        self.max_rounds = max_rounds
        self.max_events = max_events
        self.graph = graph
        self.default_latency = default_latency
        #: ``vectorized=False`` restores the original one-closure-per-
        #: delivery scheduling.  It exists only as the baseline side of
        #: ``bench_federation.py``'s throughput comparison (like
        #: ``shared_pool=False`` on the explorer) and should not be used
        #: otherwise — both paths deliver identical waves.
        self.vectorized = vectorized
        #: Per-edge latencies, both directions, resolved once at build
        #: time: the hot path must not pay a frozenset + two dict hops
        #: per delivered message.
        self._latency_table: Dict[Tuple[str, str], float] = {}
        if graph is not None:
            for edge in graph.edges:
                self._latency_table[(edge.a, edge.b)] = edge.latency
                self._latency_table[(edge.b, edge.a)] = edge.latency
        self.checkpoints: Dict[str, Checkpoint] = {}
        self.clones: Dict[str, BgpRouter] = {}
        self.envs: Dict[str, ExplorationEnvironment] = {}
        #: Cumulative across every wave this fabric ran; each
        #: :meth:`propagate` call *returns* its own per-wave snapshot.
        self.stats = FabricStats()
        #: The wave currently being driven (delivery closures write here
        #: so a second wave starts from zeroed counters, not the first
        #: wave's).
        self._wave_stats = FabricStats()
        #: Links an :class:`InjectionEvent` has taken down: messages
        #: crossing a failed link are silently dropped (the isolated
        #: analogue of a cut fibre), counted in ``dropped_link_down``.
        self.failed_links: Set[FrozenSet[str]] = set()
        for node_id, router in routers.items():
            checkpoint = Checkpoint.capture(router, f"fed-{node_id}")
            self.checkpoints[node_id] = checkpoint
            env = ExplorationEnvironment(checkpoint_time=checkpoint.node_time)
            clone = checkpoint.restore(env)
            if not isinstance(clone, BgpRouter):
                raise IsolationViolation(
                    f"federated clone of {node_id!r} is not a BgpRouter"
                )
            self.clones[node_id] = clone
            self.envs[node_id] = env
        self._checkpoint_times = {
            node_id: checkpoint.node_time
            for node_id, checkpoint in self.checkpoints.items()
        }
        #: The wave simulator currently driving deliveries (set per
        #: :meth:`propagate` call; batched delivery records re-enter
        #: :meth:`_schedule_outbound` through it).
        self._wave_sim: Optional[Simulator] = None
        #: Per-clone mutation versions backing :meth:`digest_tables`:
        #: bumped by every path that can change a clone's RIBs (inject,
        #: delivery, session reset, and :meth:`clone_of` — the public
        #: handle workload actions mutate through), so cached digests
        #: are reused exactly for clones the wave did not touch.
        self._clone_versions: Dict[str, int] = {
            node_id: 0 for node_id in routers
        }
        self._digest_cache: Dict[bytes, Dict[str, Tuple[int, OriginDigest]]] = {}

    def inject(self, node_id: str, peer_id: str, update: UpdateMessage) -> None:
        """Run an exploratory UPDATE at one clone's handler."""
        if node_id not in self.clones:
            raise ExplorationError(f"no clone for node {node_id!r}")
        self._clone_versions[node_id] += 1
        self.clones[node_id].handle_update(peer_id, update)

    # -- fault-injection surface (used by InjectionEvent actions) ---------

    def fail_link(self, a: str, b: str) -> None:
        """Cut the isolated channel between two clones (both directions).

        Neither endpoint is told — exactly like a silent fibre cut, the
        failure is only observable through traffic that stops arriving.
        Session-level faults (where the peers *do* find out) go through
        :meth:`reset_session` instead.
        """
        for node in (a, b):
            if node not in self.clones:
                raise WorkloadError(f"fail_link: no clone for node {node!r}")
        self.failed_links.add(frozenset((a, b)))

    def restore_link(self, a: str, b: str) -> None:
        """Undo :meth:`fail_link`; no-op if the link is already up."""
        self.failed_links.discard(frozenset((a, b)))

    def reset_session(
        self, node_id: str, peer_id: str, code: int = 6, subcode: int = 0
    ) -> None:
        """Deliver a NOTIFICATION at ``node_id``'s clone, as if from ``peer_id``.

        The clone runs its real teardown path: the session drops to IDLE
        and every route learned from that peer is flushed (RFC 4271
        section 6 — default code 6 is *Cease*).
        """
        if node_id not in self.clones:
            raise WorkloadError(f"reset_session: no clone for node {node_id!r}")
        clone = self.clones[node_id]
        if peer_id not in clone.sessions:
            raise WorkloadError(
                f"reset_session: {node_id!r} has no session with {peer_id!r}"
            )
        self._clone_versions[node_id] += 1
        clone.handle_notification(peer_id, NotificationMessage(code, subcode))

    def _latency(self, a: str, b: str) -> float:
        return self._latency_table.get((a, b), self.default_latency)

    def _schedule_outbound(self, sim: Simulator, source_id: str, hop: int) -> None:
        """Capture ``source_id``'s fresh output as latency-delayed events.

        The vectorized path turns each captured message into one flat
        delivery record ``(src, dst, payload, hop)`` and bulk-enqueues
        the batch through :meth:`Simulator.schedule_batch` — one shared
        bound-method handler, no per-message closure, no
        :class:`~repro.net.sim.EventHandle` (wave deliveries are never
        cancelled).  At 1000-AS wave volumes the per-message closure +
        handle allocation of the original path dominated the queue cost.
        """
        captured = self.envs[source_id].drain_captured()
        if not captured:
            return
        if not self.vectorized:
            self._schedule_outbound_legacy(sim, source_id, hop, captured)
            return
        stats = self._wave_stats
        clones = self.clones
        failed = self.failed_links
        latency = self._latency_table
        default_latency = self.default_latency
        batch = []
        if hop > self.max_rounds:
            # Hop budget exhausted: the wave is being cut short, and
            # that must be visible — a non-converged wave means the
            # post-propagation digest comparison ran on a federation
            # still in motion.
            for message in captured:
                target_id = message.destination
                if target_id not in clones:
                    stats.dropped_no_target += 1
                elif failed and frozenset((source_id, target_id)) in failed:
                    stats.dropped_link_down += 1
                else:
                    stats.suppressed_hop_budget += 1
                    stats.converged = False
            return
        for message in captured:
            target_id = message.destination
            if target_id not in clones:
                stats.dropped_no_target += 1
                continue
            if failed and frozenset((source_id, target_id)) in failed:
                stats.dropped_link_down += 1
                continue
            batch.append((
                latency.get((source_id, target_id), default_latency),
                (source_id, target_id, message.payload, hop),
            ))
        if batch:
            sim.schedule_batch(batch, self._deliver_record)

    def _deliver_record(self, record: Tuple[str, str, bytes, int]) -> None:
        """Deliver one batched wave record and schedule the response."""
        src, dst, data, hop = record
        sim = self._wave_sim
        # Advance the receiving clone's virtual clock to the arrival
        # instant so learned_at timestamps (and any time-observing
        # handler code) see wave time flowing.
        env = self.envs[dst]
        lag = (self._checkpoint_times[dst] + sim.now) - env.now()
        if lag > 0:
            env.advance(lag)
        self._clone_versions[dst] += 1
        self.clones[dst].on_message(src, data)
        stats = self._wave_stats
        stats.delivered += 1
        if hop > stats.rounds:
            stats.rounds = hop
        self._schedule_outbound(sim, dst, hop + 1)

    def _schedule_outbound_legacy(
        self, sim: Simulator, source_id: str, hop: int, captured
    ) -> None:
        """The original per-message-closure scheduling (benchmark baseline)."""
        for message in captured:
            target_id = message.destination
            if target_id not in self.clones:
                self._wave_stats.dropped_no_target += 1
                continue
            if frozenset((source_id, target_id)) in self.failed_links:
                self._wave_stats.dropped_link_down += 1
                continue
            if hop > self.max_rounds:
                self._wave_stats.suppressed_hop_budget += 1
                self._wave_stats.converged = False
                continue
            payload = message.payload

            def deliver(
                src: str = source_id, dst: str = target_id,
                data: bytes = payload, this_hop: int = hop,
            ) -> None:
                env = self.envs[dst]
                lag = (self.checkpoints[dst].node_time + sim.now) - env.now()
                if lag > 0:
                    env.advance(lag)
                self._clone_versions[dst] += 1
                self.clones[dst].on_message(src, data)
                self._wave_stats.delivered += 1
                self._wave_stats.rounds = max(self._wave_stats.rounds, this_hop)
                self._schedule_outbound(sim, dst, this_hop + 1)

            sim.schedule(self._latency(source_id, target_id), deliver)

    def propagate(self, events: Sequence[InjectionEvent] = ()) -> FabricStats:
        """Drive captured messages through the event queue to quiescence.

        Returns *this wave's* counters — a fresh :class:`FabricStats`,
        so a reused fabric's second wave reports its own ``converged``/
        ``rounds``/``sim_seconds`` rather than inheriting the first
        wave's.  Cumulative totals across waves live in :attr:`stats`.

        ``events`` interleaves timed fault/churn injections with the
        organic traffic: each :class:`InjectionEvent` fires at its
        wave-time ``at``, its action runs against this fabric, and any
        output the clones produce in response is scheduled back onto the
        same queue at ``hop=1`` (injected faults get a fresh hop budget —
        they model operator/environment actions, not relayed messages).
        """
        wave = FabricStats()
        self._wave_stats = wave
        sim = Simulator()
        self._wave_sim = sim
        for source_id in self.envs:
            self._schedule_outbound(sim, source_id, hop=1)
        for event in events:

            def fire(event: InjectionEvent = event) -> None:
                event.action(self)
                self._wave_stats.injected_events += 1
                for node_id in self.envs:
                    self._schedule_outbound(sim, node_id, hop=1)

            sim.schedule_at(event.at, fire)
        executed = sim.run(max_events=self.max_events)
        wave.events += executed
        wave.sim_seconds = sim.now
        if not sim.idle():
            wave.converged = False
        wave.rounds = max(wave.rounds, 1)
        self.stats.merge(wave)
        return wave

    def clone_of(self, node_id: str) -> BgpRouter:
        # Handing out the clone is the sanctioned mutation surface
        # (workload actions run ``action(clone_of(node))``), so assume
        # the caller changes it and invalidate its cached digests.
        self._clone_versions[node_id] += 1
        return self.clones[node_id]

    def digest_tables(self, salt: bytes) -> Dict[str, OriginDigest]:
        """Every clone's published origin digest, cached per salt.

        A wave's pre- and post-propagation comparisons hash the same
        few hundred RIB entries per *untouched* clone twice; at 200+
        domains that re-hashing dominates the whole wave.  Digests are
        recomputed only for clones whose mutation version moved since
        the last call with this salt — every mutation path (inject,
        delivery, session reset, :meth:`clone_of`) bumps the version,
        so a cached digest is exactly the one ``OriginDigest.
        from_router`` would rebuild.
        """
        cache = self._digest_cache.setdefault(salt, {})
        versions = self._clone_versions
        tables: Dict[str, OriginDigest] = {}
        for node_id, clone in self.clones.items():
            version = versions[node_id]
            cached = cache.get(node_id)
            if cached is None or cached[0] != version:
                cached = (version, OriginDigest.from_router(clone, salt))
                cache[node_id] = cached
            tables[node_id] = cached[1]
        return tables


@dataclass
class GlobalFinding:
    """A cross-domain inconsistency detected over digests.

    ``stage`` records when the disagreement was visible: right after the
    exploratory injection (``"pre-propagation"`` — the inconsistency
    window a hijack opens) or after the wave quiesced
    (``"post-propagation"`` — a standing disagreement like a MOAS
    conflict).
    """

    prefix_digest: bytes
    nodes: Tuple[str, str]
    summary: str
    stage: str = "post-propagation"


@dataclass
class FederatedReport:
    """Outcome of one federated exploratory wave.

    The first three fields keep the original wave-report shape; the
    rest carry the per-AS concolic sessions when the wave was driven by
    :meth:`FederatedExploration.explore` through the parallel/streaming
    engines.
    """

    stats: FabricStats
    global_findings: List[GlobalFinding] = field(default_factory=list)
    per_node_table_delta: Dict[str, int] = field(default_factory=dict)
    sessions: List[SessionReport] = field(default_factory=list)
    per_as_sessions: Dict[str, List[SessionReport]] = field(default_factory=dict)
    workers: int = 1
    streamed: bool = False
    used_processes: bool = False
    wall_seconds: float = 0.0
    #: Worker pools the exploration opened: 1 for the shared federation
    #: pool (and for any batch run), one per AS only under the legacy
    #: ``shared_pool=False`` comparison path.
    pools: int = 0
    #: Per-AS finding-yield EWMAs from the federation dispatch scheduler
    #: (empty for batch runs or ``as_rotation="round-robin"``).
    scheduler_yield: Dict[str, float] = field(default_factory=dict)
    #: The shared stream's ``StreamReport.summary()`` when streamed —
    #: shipping economics, per-node deltas, drop/recovery counters.
    stream_summary: Optional[Dict[str, object]] = None
    #: Wave-checker findings from the fault-workload wave (empty when no
    #: workload ran).  The workload wave runs on its *own* fresh fabric,
    #: separate from the exploration-corpus wave, so its checkers judge
    #: the injected pathology alone — not corpus-induced state.
    workload_findings: List[Finding] = field(default_factory=list)
    #: The workload wave's own propagation counters (None when no
    #: workload ran).
    workload_stats: Optional[FabricStats] = None
    #: Name of the workload that ran ("" when none).
    workload: str = ""

    @property
    def converged(self) -> bool:
        return self.stats.converged

    def findings(self) -> List[Finding]:
        """Unique findings across every exploration session.

        Deduplication is scoped *per AS*: ``Finding.dedup_key`` carries
        no node identity, and the same fault surfacing in two
        administrative domains (two tier-2s accepting the same hijack
        from a shared customer) is two faults — each domain's operator
        has to fix their own import policy.
        """
        seen: Dict[tuple, Finding] = {}
        for node, reports in self._sessions_by_node():
            for report in reports:
                for finding in report.findings:
                    seen.setdefault((node, finding.dedup_key()), finding)
        for finding in self.workload_findings:
            seen.setdefault((finding.node, finding.dedup_key()), finding)
        return list(seen.values())

    def finding_keys(self) -> List[tuple]:
        """Order-independent identity of the finding set (for parity tests)."""
        keys = {
            (node, finding.dedup_key())
            for node, reports in self._sessions_by_node()
            for report in reports
            for finding in report.findings
        }
        keys.update(
            (finding.node, finding.dedup_key())
            for finding in self.workload_findings
        )
        # FindingKind members are not orderable across kinds; repr gives a
        # total, deterministic order once exploration and workload findings
        # mix in one set.
        return sorted(keys, key=repr)

    def _sessions_by_node(self):
        if self.per_as_sessions:
            return list(self.per_as_sessions.items())
        # Single-wave reports (run()) carry no per-AS sessions; treat the
        # flat list as one scope.
        return [("", self.sessions)] if self.sessions else []

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "ases_explored": len(self.per_as_sessions),
            "sessions": len(self.sessions),
            "findings": len(self.findings()),
            "global_findings": len(self.global_findings),
            "workers": self.workers,
            "pools": self.pools,
            "streamed": self.streamed,
            "used_processes": self.used_processes,
            "delivered": self.stats.delivered,
            "converged": self.stats.converged,
            "wall_seconds": round(self.wall_seconds, 4),
        }
        if self.workload:
            out["workload"] = self.workload
            out["workload_findings"] = len(self.workload_findings)
            if self.workload_stats is not None:
                out["workload_injected"] = self.workload_stats.injected_events
                out["workload_converged"] = self.workload_stats.converged
        return out


class FederatedExploration:
    """Cross-network exploratory waves plus system-wide checking.

    Two entry points:

    * :meth:`run` — the original single-injection wave: one exploratory
      UPDATE at one clone, propagation, digest comparison;
    * :meth:`explore` — the scenario-scale version: a whole seed corpus
      is first explored concolically *per AS* through
      :class:`~repro.parallel.ParallelExplorer` (one shared worker pool
      and constraint cache across all ASes) or per-AS
      :class:`~repro.parallel.stream.StreamingExplorer` pipelines, then
      every seed is injected into one fabric for the system-wide wave
      and digest check.

    The cross-domain check is the federation-wide origin check: domains
    compare *origin digests* (salted hashes; see
    :mod:`repro.core.privacy`) and any prefix on which two domains'
    views disagree about the origin AS is reported — without either
    domain revealing its table or config.
    """

    def __init__(
        self,
        routers: Dict[str, BgpRouter],
        salt: bytes = b"dice-federation",
        graph: Optional["AsGraph"] = None,
        default_latency: float = 0.001,
    ):
        self.routers = routers
        self.salt = salt
        self.graph = graph
        self.default_latency = default_latency

    def _fabric(self, max_rounds: int) -> IsolatedFabric:
        return IsolatedFabric(
            self.routers,
            max_rounds=max_rounds,
            graph=self.graph,
            default_latency=self.default_latency,
        )

    def run(
        self,
        inject_at: str,
        peer_id: str,
        update: UpdateMessage,
        max_rounds: int = 16,
    ) -> FederatedReport:
        started = time.perf_counter()
        fabric = self._fabric(max_rounds)
        report = self._wave(fabric, [(inject_at, peer_id, update)])
        report.wall_seconds = time.perf_counter() - started
        return report

    def run_workload(
        self, plan: "WorkloadPlan", max_rounds: int = 16
    ) -> Tuple[List[Finding], FabricStats]:
        """Drive one fault/churn workload wave and run its paired checkers.

        A *fresh* fabric is built (clean checkpoints of the live
        routers), the plan's timed :class:`InjectionEvent`\\ s are
        interleaved with organic propagation, and every checker the plan
        names judges the resulting clone ensemble.  Returns the checker
        findings plus the wave's own :class:`FabricStats`.
        """
        fabric = self._fabric(max_rounds)
        baseline: Dict[str, Dict[Prefix, int]] = {}
        for node_id, clone in fabric.clones.items():
            local_asn = as_concrete_int(clone.config.asn)
            origins: Dict[Prefix, int] = {}
            for prefix, route in clone.loc_rib.items():
                origin = route.origin_as()
                origins[prefix] = (
                    local_asn if origin is None else as_concrete_int(origin)
                )
            baseline[node_id] = origins
        stats = fabric.propagate(plan.events)
        context = WaveContext(
            clones=fabric.clones,
            stats=stats,
            baseline=baseline,
            graph=self.graph,
            deadline=plan.deadline,
            failed_links=set(fabric.failed_links),
            workload=plan.name,
        )
        findings: List[Finding] = []
        for name in plan.checkers:
            findings.extend(get_wave_checker(name).check(context))
        return findings, stats

    def explore(
        self,
        seeds: Sequence[FederatedSeed],
        budget: Optional[ExplorationBudget] = None,
        workers: int = 1,
        stream: bool = False,
        policy: str = "selective",
        strategy: str = "generational",
        strategy_seed: int = 0,
        max_rounds: int = 16,
        force_serial: bool = False,
        as_rotation: str = "yield",
        stream_epochs: int = 1,
        shared_pool: bool = True,
        workload: Optional["WorkloadPlan"] = None,
        chaos: Optional["ChaosPlan"] = None,
        epoch_churn: Optional[int] = None,
        autoscale: bool = False,
        autoscale_interval: float = 0.05,
    ) -> FederatedReport:
        """Explore a federated seed corpus, then run the system-wide wave.

        Per-AS exploration goes through the parallel machinery — a
        single :meth:`~repro.parallel.ParallelExplorer.explore_nodes`
        fan-out (all ASes' jobs in one pool) or, with ``stream=True``,
        **one** shared :class:`~repro.parallel.stream.StreamingExplorer`
        whose workers hold every AS's ``(node, epoch)`` image and whose
        dispatch budget rotates across ASes by recent finding yield
        (``as_rotation="yield"``; ``"round-robin"`` for blind rotation).
        Both assign the same per-AS job indices, so for a fixed corpus
        the finding set is identical across serial, batch, and streamed
        runs with any worker count.

        ``stream_epochs`` > 1 splits each AS's seed list into that many
        re-checkpoint epochs: every boundary captures each node again
        and ships only the per-node delta — the long-lived-deployment
        shape, exercised here over a finite corpus.  ``shared_pool=
        False`` keeps the legacy one-pipeline-per-AS layout (N pools of
        ``workers`` processes each); it exists for benchmarks comparing
        the two and should not be used otherwise.

        ``workload`` additionally runs a fault/churn wave
        (:meth:`run_workload`) after the corpus wave — on its *own*
        fresh fabric, so the workload's paired checkers judge the
        injected pathology in isolation from corpus-induced state.  The
        workload wave is serial and deterministic regardless of
        ``workers``/``stream``, so serial/streamed finding-set parity
        is preserved.

        ``chaos`` injects a deterministic fault plan
        (:class:`~repro.parallel.chaos.ChaosPlan`) into the shared
        streaming pool — the resilience layer's recovery counters come
        back in ``report.stream_summary``.  Only meaningful against the
        shared pool, so it requires ``stream=True`` and
        ``shared_pool=True``.

        ``epoch_churn`` makes the ``stream_epochs`` boundaries
        *churn-driven*: each boundary re-captures every node but only
        ships a delta for nodes whose table accumulated at least that
        many dirty segments since their current image — quiet nodes
        skip the ship and their epoch stands.  ``autoscale`` runs the
        shared pool elastically (grow from one worker up to ``workers``
        on observed backlog, shrink when drained).  Both require the
        shared streaming pool.
        """
        if not seeds:
            raise ExplorationError("federated exploration needs a seed corpus")
        if stream_epochs < 1:
            raise ExplorationError(
                f"stream_epochs must be >= 1, got {stream_epochs}"
            )
        if chaos is not None and not (stream and shared_pool):
            raise ExplorationError(
                "chaos injection targets the shared streaming pool; "
                "it requires stream=True with shared_pool=True"
            )
        if epoch_churn is not None and not (stream and shared_pool):
            raise ExplorationError(
                "epoch_churn gates the shared stream's epoch boundaries; "
                "it requires stream=True with shared_pool=True"
            )
        if autoscale and not (stream and shared_pool):
            raise ExplorationError(
                "autoscale elasticizes the shared streaming pool; "
                "it requires stream=True with shared_pool=True"
            )
        unknown = sorted({node for node, _, _ in seeds} - set(self.routers))
        if unknown:
            raise ExplorationError(f"seeds reference unknown nodes: {unknown}")
        started = time.perf_counter()
        by_node: Dict[str, List[Tuple[str, UpdateMessage]]] = {}
        for node, peer, update in seeds:
            by_node.setdefault(node, []).append((peer, update))

        scheduler_yield: Dict[str, float] = {}
        stream_summary: Optional[Dict[str, object]] = None
        if stream and shared_pool:
            per_as, used_processes, scheduler_yield, stream_summary = (
                self._explore_streamed(
                    by_node, budget, workers, policy, strategy, strategy_seed,
                    force_serial, as_rotation, stream_epochs, chaos,
                    epoch_churn, autoscale, autoscale_interval,
                )
            )
            pools = 1
        elif stream:
            per_as, used_processes = self._explore_streamed_per_as(
                by_node, budget, workers, policy, strategy, strategy_seed,
                force_serial,
            )
            pools = len(by_node)
        else:
            per_as, used_processes = self._explore_batched(
                by_node, budget, workers, policy, strategy, strategy_seed,
                force_serial,
            )
            pools = 1

        fabric = self._fabric(max_rounds)
        report = self._wave(fabric, seeds)
        report.per_as_sessions = per_as
        report.sessions = [r for reports in per_as.values() for r in reports]
        report.workers = workers
        report.streamed = stream
        report.used_processes = used_processes
        report.pools = pools
        report.scheduler_yield = scheduler_yield
        report.stream_summary = stream_summary
        if workload is not None:
            report.workload_findings, report.workload_stats = (
                self.run_workload(workload, max_rounds=max_rounds)
            )
            report.workload = workload.name
        report.wall_seconds = time.perf_counter() - started
        return report

    def _explore_batched(
        self, by_node, budget, workers, policy, strategy, strategy_seed,
        force_serial,
    ) -> Tuple[Dict[str, List[SessionReport]], bool]:
        from repro.parallel.explorer import ParallelExplorer

        explorer = ParallelExplorer(
            workers=workers,
            policy=policy,
            strategy=strategy,
            strategy_seed=strategy_seed,
            force_serial=force_serial,
        )
        batches = explorer.explore_nodes(
            [(node, self.routers[node], node_seeds)
             for node, node_seeds in by_node.items()],
            budget=budget,
        )
        per_as = {node: list(batch.reports) for node, batch in batches.items()}
        used = any(batch.used_processes for batch in batches.values())
        return per_as, used

    def _explore_streamed(
        self, by_node, budget, workers, policy, strategy, strategy_seed,
        force_serial, as_rotation, stream_epochs, chaos=None,
        epoch_churn=None, autoscale=False, autoscale_interval=0.05,
    ) -> Tuple[Dict[str, List[SessionReport]], bool, Dict[str, float],
               Dict[str, object]]:
        """One shared streaming pool for the whole federation.

        Every AS's epoch-0 image ships to the same ``workers`` worker
        processes; seeds enter node-tagged (per-node arrival indices keep
        batch parity), epoch boundaries ship per-node deltas, and the
        cross-AS dispatch rotation is the :class:`FederationScheduler`.
        """
        from repro.parallel.stream import StreamingExplorer

        pipeline = StreamingExplorer(
            workers=workers,
            policy=policy,
            strategy=strategy,
            strategy_seed=strategy_seed,
            budget=budget,
            queue_capacity=max((len(s) for s in by_node.values()), default=1),
            force_serial=force_serial,
            # Dispatch seeds in per-node arrival order: coverage-guided
            # reordering is profitable for open-ended streams, but a
            # federated corpus is finite and parity with the batch
            # engine's per-index sessions is what matters here.  Cross-AS
            # rotation (as_rotation) is still free to reorder across
            # nodes — indices are fixed at submission.
            coverage_guided=False,
            as_rotation=as_rotation,
            chaos=chaos,
            autoscale=autoscale,
            autoscale_interval=autoscale_interval,
        )
        pipeline.start_nodes({node: self.routers[node] for node in by_node})
        try:
            # Feed the corpus in stream_epochs chunks per node; every
            # boundary re-checkpoints each node and ships its delta
            # (or, with epoch_churn, only for nodes churned past the
            # threshold — quiet nodes keep their epoch).
            chunks = {
                node: _split_chunks(node_seeds, stream_epochs)
                for node, node_seeds in by_node.items()
            }
            for chunk_index in range(stream_epochs):
                if chunk_index > 0:
                    for node in sorted(by_node):
                        pipeline.advance_epoch(
                            node, churn_threshold=epoch_churn
                        )
                for node in by_node:
                    for peer, update in chunks[node][chunk_index]:
                        pipeline.submit(peer, update, node=node)
        finally:
            # close() drains by default, so the report is complete even
            # when a submit raises mid-corpus.
            stream_report = pipeline.close()
        per_as = {
            node: stream_report.reports_in_index_order(node) for node in by_node
        }
        return (
            per_as,
            stream_report.used_processes,
            pipeline.federation_yields(),
            stream_report.summary(),
        )

    def _explore_streamed_per_as(
        self, by_node, budget, workers, policy, strategy, strategy_seed,
        force_serial,
    ) -> Tuple[Dict[str, List[SessionReport]], bool]:
        """Legacy layout: one pipeline (and pool) per AS.

        Kept only as the baseline side of the shared-pool benchmark —
        an N-AS federation pays N pool start-ups and N×workers worker
        processes contending for the same cores.
        """
        from repro.parallel.stream import StreamingExplorer

        per_as: Dict[str, List[SessionReport]] = {}
        used_processes = False
        for node, node_seeds in by_node.items():
            pipeline = StreamingExplorer(
                workers=workers,
                policy=policy,
                strategy=strategy,
                strategy_seed=strategy_seed,
                budget=budget,
                queue_capacity=max(len(node_seeds), 1),
                force_serial=force_serial,
                coverage_guided=False,
            )
            pipeline.start(self.routers[node])
            try:
                for peer, update in node_seeds:
                    pipeline.submit(peer, update)
            finally:
                stream_report = pipeline.close()
            per_as[node] = stream_report.reports_in_index_order()
            used_processes = used_processes or stream_report.used_processes
        return per_as, used_processes

    def _wave(
        self, fabric: IsolatedFabric, seeds: Sequence[FederatedSeed]
    ) -> FederatedReport:
        baseline_sizes = {
            node_id: clone.table_size() for node_id, clone in fabric.clones.items()
        }
        for node, peer, update in seeds:
            fabric.inject(node, peer, update)
        # Check twice: right after the injections (the inconsistency
        # window the exploratory actions open) and again after the wave
        # quiesces (standing disagreements propagation does not resolve).
        findings = self._compare_digests(fabric, stage="pre-propagation")
        stats = fabric.propagate()
        post = self._compare_digests(fabric, stage="post-propagation")
        seen = {(f.prefix_digest, f.nodes) for f in findings}
        findings.extend(
            f for f in post if (f.prefix_digest, f.nodes) not in seen
        )
        deltas = {
            node_id: fabric.clones[node_id].table_size() - baseline_sizes[node_id]
            for node_id in fabric.clones
        }
        return FederatedReport(stats, findings, deltas)

    def _compare_digests(
        self, fabric: IsolatedFabric, stage: str
    ) -> List[GlobalFinding]:
        """Cross-domain origin check over an inverted digest index.

        One ``prefix digest -> origin digest -> carriers`` index replaces
        the old all-pairs :func:`digest_conflicts` walk, so the check
        costs O(nodes · table + conflicts) instead of O(nodes² · table) —
        the difference between a 1000-AS federation check finishing in
        milliseconds and dominating the whole wave.  The reported
        findings are exactly the old pairwise set, pair-major sorted.
        Digest tables come from :meth:`IsolatedFabric.digest_tables`,
        so the post-propagation pass re-hashes only the clones the wave
        actually touched.
        """
        digests = fabric.digest_tables(self.salt)
        findings: List[GlobalFinding] = []
        for (a, b), conflicts in conflict_pairs(digests).items():
            for conflict in conflicts:
                findings.append(
                    GlobalFinding(
                        prefix_digest=conflict,
                        nodes=(a, b),
                        summary=(
                            f"domains {a!r} and {b!r} disagree on the origin "
                            f"of a prefix (digest {conflict.hex()[:12]}..., "
                            f"{stage})"
                        ),
                        stage=stage,
                    )
                )
        return findings


def explore_tenants(
    tenants: Dict[str, Tuple[FederatedExploration, Sequence[FederatedSeed]]],
    budget: Optional[ExplorationBudget] = None,
    workers: int = 1,
    policy: str = "selective",
    strategy: str = "generational",
    strategy_seed: int = 0,
    max_rounds: int = 16,
    force_serial: bool = False,
    stream_epochs: int = 1,
    epoch_churn: Optional[int] = None,
    autoscale: bool = False,
    autoscale_interval: float = 0.05,
    chaos: Optional["ChaosPlan"] = None,
) -> Tuple[Dict[str, FederatedReport], Dict[str, object]]:
    """Run several federations through **one** shared streaming pool.

    Service mode's entry point: each item of ``tenants`` maps a tenant
    name to a ``(FederatedExploration, seed corpus)`` pair — typically
    one scenario each.  All tenants' seeds stream through a single
    worker pool (optionally autoscaled); node keys, worker image
    tables, scheduler state, and the constraint cache are tenant-scoped
    inside the pool, and cross-tenant dispatch is yield-weighted
    deficit rotation (:class:`~repro.concolic.coverage.TenantScheduler`)
    — a busy tenant wins proportionally more slots but can never starve
    a quiet one.

    Isolation is the contract: each tenant's :class:`FederatedReport`
    (its own sessions, findings, and system-wide wave over its own
    fabric) is byte-identical to the report the same scenario would
    produce running the pool alone.  Returns ``(per-tenant reports,
    shared-pool summary)`` — the summary is the pool's global
    :meth:`~repro.parallel.stream.StreamReport.summary`, where the
    service-level counters (pool sizing, resize events, per-tenant job
    counts) live.
    """
    from repro.parallel.stream import StreamingExplorer

    if not tenants:
        raise ExplorationError("explore_tenants needs at least one tenant")
    for name, (exploration, seeds) in tenants.items():
        if not name:
            raise ExplorationError("tenant names must be non-empty")
        if not seeds:
            raise ExplorationError(f"tenant {name!r} has an empty seed corpus")
        unknown = sorted(
            {node for node, _, _ in seeds} - set(exploration.routers)
        )
        if unknown:
            raise ExplorationError(
                f"tenant {name!r} seeds reference unknown nodes: {unknown}"
            )
    if stream_epochs < 1:
        raise ExplorationError(
            f"stream_epochs must be >= 1, got {stream_epochs}"
        )

    started = time.perf_counter()
    by_tenant_node: Dict[str, Dict[str, List[Tuple[str, UpdateMessage]]]] = {}
    for name, (_, seeds) in tenants.items():
        by_node: Dict[str, List[Tuple[str, UpdateMessage]]] = {}
        for node, peer, update in seeds:
            by_node.setdefault(node, []).append((peer, update))
        by_tenant_node[name] = by_node

    capacity = max(
        (len(node_seeds)
         for by_node in by_tenant_node.values()
         for node_seeds in by_node.values()),
        default=1,
    )
    pipeline = StreamingExplorer(
        workers=workers,
        policy=policy,
        strategy=strategy,
        strategy_seed=strategy_seed,
        budget=budget,
        queue_capacity=capacity,
        force_serial=force_serial,
        coverage_guided=False,  # finite corpora: parity over reordering
        as_rotation="yield",
        chaos=chaos,
        autoscale=autoscale,
        autoscale_interval=autoscale_interval,
    )
    names = list(tenants)
    first = names[0]
    pipeline.start_nodes(
        {node: tenants[first][0].routers[node]
         for node in by_tenant_node[first]},
        tenant=first,
    )
    try:
        for name in names[1:]:
            pipeline.add_tenant(
                name,
                {node: tenants[name][0].routers[node]
                 for node in by_tenant_node[name]},
            )
        chunks = {
            name: {
                node: _split_chunks(node_seeds, stream_epochs)
                for node, node_seeds in by_node.items()
            }
            for name, by_node in by_tenant_node.items()
        }
        for chunk_index in range(stream_epochs):
            if chunk_index > 0:
                for name in names:
                    for node in sorted(by_tenant_node[name]):
                        pipeline.advance_epoch(
                            node, tenant=name, churn_threshold=epoch_churn
                        )
            # Interleave tenants within each chunk so the fair-dispatch
            # rotation has real cross-tenant contention to arbitrate.
            for name in names:
                for node in by_tenant_node[name]:
                    for peer, update in chunks[name][node][chunk_index]:
                        pipeline.submit(peer, update, node=node, tenant=name)
    finally:
        pool_report = pipeline.close()

    reports: Dict[str, FederatedReport] = {}
    for name in names:
        exploration, seeds = tenants[name]
        treport = pipeline.tenant_report(name)
        per_as = {
            node: treport.reports_in_index_order(node)
            for node in by_tenant_node[name]
        }
        fabric = exploration._fabric(max_rounds)
        report = exploration._wave(fabric, seeds)
        report.per_as_sessions = per_as
        report.sessions = [r for rs in per_as.values() for r in rs]
        report.workers = workers
        report.streamed = True
        report.used_processes = pool_report.used_processes
        report.pools = 1
        report.scheduler_yield = pipeline.federation_yields(tenant=name)
        report.stream_summary = treport.summary()
        report.wall_seconds = time.perf_counter() - started
        reports[name] = report
    return reports, pool_report.summary()
