#!/usr/bin/env python3
"""Using the concolic engine on its own (the paper's "Oasis" role).

The engine is independent of BGP: any Python callable over declared
symbolic integers can be explored.  This example walks through the
pieces — concolic values, path conditions, predicate negation, search
strategies, and solver statistics — on a small message-validation
routine with a deliberately buried bug.

Run:  python examples/concolic_playground.py
"""

from repro.concolic import (
    ConcolicEngine,
    ExplorationBudget,
    InputSpec,
    VarSpec,
    make_strategy,
    trace,
)
from repro.concolic.symbolic import SymInt


def validate_packet(inputs):
    """A toy packet validator with a crash hidden five branches deep."""
    version = inputs.version
    length = inputs.length
    checksum = inputs.checksum
    if version != 4:
        return "bad-version"
    if length < 20:
        return "runt"
    if length > 1500:
        return "giant"
    if (checksum & 0xFF) == 0:
        return "zero-checksum"
    if (length % 7 == 0) and (checksum >> 8) == 0xAB:
        # The buried bug: an unchecked division.
        return 1 // (length - 21)  # crashes when length == 21
    return "accepted"


def show_single_run() -> None:
    print("--- one concolic run, recorded path condition ---")
    x = SymInt.variable("version", 4, bits=8)
    with trace() as recorder:
        if x == 4:
            pass
        if x > 2:
            pass
    for branch in recorder.path:
        print(f"  branch@{branch.site}: {branch.constraint!r} "
              f"taken={branch.taken}")
    negated = recorder.path.constraints_to_negate(1)
    print(f"  query to flip branch 1: {[repr(c) for c in negated]}")


def explore_with(strategy_name: str) -> None:
    engine = ConcolicEngine()
    spec = InputSpec([
        VarSpec("version", bits=8, initial=4),
        VarSpec("length", bits=16, initial=100),
        VarSpec("checksum", bits=16, initial=0x1234),
    ])
    report = engine.explore(
        validate_packet,
        spec,
        strategy=make_strategy(strategy_name),
        budget=ExplorationBudget(max_executions=200),
    )
    outcomes = sorted(
        {r.value for r in report.results if isinstance(r.value, str)}
    )
    print(f"\n--- strategy={strategy_name} ---")
    print(f"  executions={report.executions} unique_paths={report.unique_paths} "
          f"solver_queries={report.solver_queries}")
    print(f"  outcomes reached: {outcomes}")
    print(f"  crashes found: {len(report.crashes)}")
    for crash in report.crashes[:1]:
        print(f"    crash input: {crash.assignment} -> "
              f"{type(crash.exception).__name__}: {crash.exception}")
    stats = engine.solver.stats
    print(f"  solver: {stats.queries} queries, {stats.sat} sat "
          f"({stats.hint_hits} hint, {stats.linear_hits} linear, "
          f"{stats.enumeration_hits} enum, {stats.search_hits} search), "
          f"{stats.unsat_proved} proved unsat")


def main() -> None:
    show_single_run()
    for strategy in ("generational", "dfs", "bfs", "random"):
        explore_with(strategy)
    print(
        "\nEvery strategy corners the ZeroDivisionError at "
        "length=21, checksum=0xAB__ — five symbolic branches deep — by "
        "negating recorded predicates, never by blind fuzzing."
    )


if __name__ == "__main__":
    main()
