"""Setup shim for offline editable installs (no `wheel` package available).

The pip on this machine lacks the `wheel` backend needed for PEP 660
editable wheels, so `pip install -e .` is routed through the legacy
`setup.py develop` path (see the pip config in ~/.config/pip/pip.conf).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
