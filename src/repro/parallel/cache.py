"""The cross-worker constraint-result cache.

Builds on the solver-layer hook (:mod:`repro.concolic.solver.cache`):
entries live in ``multiprocessing.Manager`` dicts shared by every worker
process, with a per-process dict in front so each unique query pays at
most one IPC round-trip per worker.

A proxy lookup is ~100µs while many solver queries resolve in ~10µs, so
the L1 matters: without it a cache could make exploration *slower* than
just re-solving.  Writes go through to the shared layer so other workers
benefit; reads fill the L1.

Two shared-layer shapes:

* :func:`shared_cache` — one manager dict, the original PR-1 transport.
  Every get/put that misses the L1 serializes through the single manager
  process, which shows up in profiles at higher worker counts.
* :func:`sharded_cache` — :class:`ShardedConstraintCache` partitions the
  key space across N manager *processes* (key-hash → shard).  Cache keys
  are uniform blake2b digests, so ``key[0] % shards`` balances load and
  solver IPC no longer funnels through one process.  The streaming
  pipeline defaults to this.

The wrappers are picklable (workers receive them inside their jobs or at
spawn); only the proxies travel — the local layer starts empty in each
process.  Proxy operations can fail when the owning manager has shut
down (a worker outliving its batch); the cache degrades to L1-only
rather than erroring, since a cache miss is always safe.
"""

from __future__ import annotations

from contextlib import contextmanager
from multiprocessing.managers import SyncManager
from typing import Dict, Iterator, List, Optional, Sequence

from repro.concolic.solver.cache import CacheEntry, SemanticIndex
from repro.concolic.solver.intervals import Interval


class ShardedConstraintCache:
    """Two-level cache: per-process L1 over hash-partitioned shared dicts.

    Shard choice is a pure function of the key (``key[0] % shards``), so
    every process agrees where an entry lives without coordination, and
    determinism is untouched: a hit returns exactly the entry a local
    solve would have produced (the solver-layer invariant), wherever it
    was stored.

    The **semantic (subsumption) index** is deliberately L1-only: a
    probe on every exact miss would double the manager IPC it exists to
    avoid, and a miss is always safe.  Each worker builds its own view
    from the queries it solves; exact entries still cross processes.
    Workers gate semantic *model* reuse off anyway (they run with
    ``deterministic_rng``), so per-process indexes cannot introduce
    schedule dependence — only per-process UNSAT shortcuts.
    """

    def __init__(self, shards: Sequence) -> None:
        shards = list(shards)
        if not shards:
            raise ValueError("at least one cache shard is required")
        self._shards = shards
        self._local: Dict[bytes, CacheEntry] = {}
        self._semantic = SemanticIndex()
        self.hits = 0
        self.misses = 0

    def _shard_for(self, key: bytes):
        if len(self._shards) == 1:
            return self._shards[0]
        return self._shards[key[0] % len(self._shards)]

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def get(self, key: bytes) -> Optional[CacheEntry]:
        entry = self._local.get(key)
        if entry is not None:
            self.hits += 1
            return entry
        try:
            entry = self._shard_for(key).get(key)
        except Exception:  # manager gone: degrade to L1-only
            entry = None
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._local[key] = entry
        return entry

    def put(self, key: bytes, entry: CacheEntry) -> None:
        self._local[key] = entry
        try:
            self._shard_for(key)[key] = entry
        except Exception:
            pass

    def get_semantic(self, key: bytes) -> Sequence:
        """Candidate ``(box_items, entry)`` pairs from this process's index."""
        return self._semantic.get(key)

    def put_semantic(
        self, key: bytes, domains: Dict[str, Interval], entry: CacheEntry
    ) -> None:
        self._semantic.put(key, domains, entry)

    def shared_size(self) -> int:
        """Entries visible across all shards (dead shards count 0)."""
        total = 0
        for shard in self._shards:
            try:
                total += len(shard)
            except Exception:
                pass
        return total

    def __getstate__(self) -> dict:
        # Only the proxies cross the process boundary; the L1 and its
        # counters are per-process state.
        return {"_shards": self._shards}

    def __setstate__(self, state: dict) -> None:
        self._shards = state["_shards"]
        self._local = {}
        self._semantic = SemanticIndex()
        self.hits = 0
        self.misses = 0


class SharedConstraintCache(ShardedConstraintCache):
    """The single-shard case: one manager dict behind the L1 (PR 1 shape)."""

    def __init__(self, shared) -> None:
        super().__init__([shared])


@contextmanager
def shared_cache() -> Iterator[SharedConstraintCache]:
    """A :class:`SharedConstraintCache` bound to a fresh manager process.

    The manager lives for the duration of the ``with`` block — the
    coordinator wraps one batch in it, so entries are shared across all
    of the batch's workers and released when the batch completes.
    """
    manager = SyncManager()
    manager.start()
    try:
        yield SharedConstraintCache(manager.dict())
    finally:
        manager.shutdown()


@contextmanager
def sharded_cache(shards: int = 4) -> Iterator[ShardedConstraintCache]:
    """A :class:`ShardedConstraintCache` over ``shards`` manager processes.

    Each shard is a dict owned by its *own* manager process, so worker
    IPC spreads across them instead of serializing through one.  All
    managers live for the ``with`` block; a startup failure partway
    through (fork refused under memory pressure) shuts down the managers
    already started and propagates, so the caller can fall back to a
    smaller configuration or an in-process cache.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    managers: List[SyncManager] = []
    try:
        proxies = []
        for _ in range(shards):
            manager = SyncManager()
            manager.start()
            managers.append(manager)
            proxies.append(manager.dict())
        yield ShardedConstraintCache(proxies)
    finally:
        for manager in managers:
            try:
                manager.shutdown()
            except Exception:
                pass
