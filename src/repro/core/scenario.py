"""Scenarios: declared testbeds, from Figure 2 to generated federations.

The original prototype hardcoded one experimental setup — the paper's
Figure 2 Customer—Provider—Internet triangle.  This module keeps that
scenario (API-compatible, now rendered from an AS graph instead of
hand-written config strings) and generalizes it into a **registry of
named scenarios**: each :class:`Scenario` declares how to build a
federation (routers, links, policies), what seed corpus to explore, and
which invariants should hold, so a new workload is one registration
line rather than a bespoke module.

Registered out of the box:

* ``fig1`` — the minimal provider/customer pair with an erroneous
  customer filter (the smallest federation that exercises branch
  exploration);
* ``fig2`` — the paper's evaluation testbed, trace replay included;
* ``line-3`` / ``ring-4`` / ``star-6`` / ``clique-4`` / ``tiered-8`` —
  generated topologies from :mod:`repro.topology.generators`;
* ``routeviews-3`` — a line federation whose seed corpus is derived
  from a synthetic RouteViews update stream.

``repro scenarios`` lists the registry; ``repro explore --scenario
NAME`` builds one and runs a federated exploration over it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.messages import UpdateMessage
from repro.bgp.nlri import NlriEntry
from repro.bgp.rib import RouteSource
from repro.bgp.router import BgpRouter
from repro.core.dice import DiCE, DiceEnabledRouter
from repro.core.federation import FederatedSeed
from repro.core.report import Finding, FindingKind, Severity
from repro.net.node import NodeHost
from repro.topology.graph import (
    FILTER_MODES,
    AsGraph,
    build_routers,
    render_config,
)
from repro.topology import caida, generators
from repro.trace.mrt import Trace
from repro.trace.replay import TraceReplayer
from repro.trace.routeviews import (
    RouteViewsGenerator,
    TraceConfig,
    seed_updates_from_trace,
)
from repro.util.errors import ConfigError
from repro.util.ip import Prefix, ip_to_int
from repro.util.rng import derive_rng

PROVIDER_AS = 65010
CUSTOMER_AS = 65020
INTERNET_AS = 64999

#: The customer's legitimate address space (what a correct filter allows).
CUSTOMER_PREFIXES = ("10.10.0.0/16", "10.20.0.0/16")

#: Default seed for registry builds (the paper's trace date).
DEFAULT_SCENARIO_SEED = 2010_04_01


# ---------------------------------------------------------------------------
# The Figure 2 testbed as an AS graph.
# ---------------------------------------------------------------------------


def _fig2_customer_filter(filter_mode: str) -> str:
    """The provider's hand-tuned customer filter for a given mode."""
    if filter_mode not in FILTER_MODES:
        raise ConfigError(f"unknown filter mode {filter_mode!r}; use {FILTER_MODES}")
    if filter_mode == "correct":
        return """
filter customer-in {
    if net in CUSTOMERS then accept;
    reject;
}
"""
    if filter_mode == "missing":
        # No validation at all: every customer announcement is accepted.
        return """
filter customer-in {
    accept;
}
"""
    # erroneous: a partially correct filter — the intended prefix-set term
    # is there, but a sloppy extra disjunct ("anything reasonably sized is
    # fine") opens the hole DiCE should find.
    return """
filter customer-in {
    if net in CUSTOMERS or (net.len >= 16 and net.len <= 24) then accept;
    reject;
}
"""


def fig2_graph(filter_mode: str = "erroneous") -> AsGraph:
    """The paper's Figure 2 topology declared as an :class:`AsGraph`.

    The provider's customer filter stays the hand-tuned text of the
    evaluation (spliced in via ``extra_config`` + explicit edge filter
    names), so the rendered configuration is behaviorally identical to
    the historical hand-written one while the topology itself — nodes,
    edges, sessions, latencies — comes from the graph like every other
    scenario's.
    """
    graph = AsGraph("fig2")
    graph.add_as(
        "provider",
        asn=PROVIDER_AS,
        role="transit",
        networks=(Prefix.parse("203.0.113.0/24"),),
        router_id=ip_to_int("10.0.0.1"),
        filter_mode=filter_mode,
        extra_config=f"""
prefix-set CUSTOMERS {{
    {CUSTOMER_PREFIXES[0]} le 24;
    {CUSTOMER_PREFIXES[1]} le 24;
}}
{_fig2_customer_filter(filter_mode)}
""",
    )
    graph.add_as(
        "customer",
        asn=CUSTOMER_AS,
        role="stub",
        networks=(Prefix.parse("10.10.1.0/24"), Prefix.parse("10.20.5.0/24")),
        router_id=ip_to_int("10.0.0.2"),
    )
    graph.add_as("internet", asn=INTERNET_AS, role="internet")
    graph.transit(
        "provider", "customer",
        a_import="customer-in", a_export="accept-all",
        b_import="accept-all", b_export="accept-all",
        passive="customer",
    )
    graph.peer(
        "provider", "internet",
        a_import="accept-all", a_export="accept-all",
        b_import="accept-all", b_export="accept-all",
        passive="provider",
    )
    return graph


def provider_config(filter_mode: str = "correct") -> str:
    """The Provider's configuration text, rendered from the Fig. 2 graph."""
    return render_config(fig2_graph(filter_mode), "provider")


def customer_config() -> str:
    return render_config(fig2_graph(), "customer")


@dataclass
class ScenarioConfig:
    """Knobs for building the Figure 2 testbed.

    Internal carrier for the fig2 builder — callers pass the same knobs
    as keyword overrides to ``get_scenario("fig2").build(seed=..., ...)``.
    """

    filter_mode: str = "erroneous"
    prefix_count: int = 5_000
    update_count: int = 500
    trace_duration: float = 900.0
    seed: int = 2010_04_01
    replay_compression: float = 0.0    # 0 = full speed (paper's "full load")
    anycast_whitelist: List[Prefix] = field(default_factory=list)
    dice_policy: str = "selective"


# ---------------------------------------------------------------------------
# Built scenarios: what every layer consumes.
# ---------------------------------------------------------------------------


@dataclass
class BuiltScenario:
    """A materialized scenario: hosts, routers, corpus, invariants.

    The uniform handle every layer consumes — the CLI, the federated
    explorer, the benchmarks.  ``graph`` is present for generated
    federations (and Figure 2); ``dice`` for scenarios with a designated
    DiCE-enabled node.
    """

    name: str
    host: Optional[NodeHost] = None
    routers: Dict[str, BgpRouter] = field(default_factory=dict)
    graph: Optional[AsGraph] = None
    dice: Optional[DiCE] = None
    build_seed: int = DEFAULT_SCENARIO_SEED
    construction_seconds: float = 0.0
    corpus_factory: Optional[Callable[["BuiltScenario"], List[FederatedSeed]]] = field(
        default=None, repr=False
    )
    _corpus: Optional[List[FederatedSeed]] = field(default=None, repr=False)

    def converge(self, run_until: Optional[float] = None) -> None:
        """Run the event loop until the network quiesces (or a deadline)."""
        if run_until is None:
            self.host.run()
        else:
            self.host.run_until(run_until)

    def seed_corpus(self) -> List[FederatedSeed]:
        """The exploration seeds this scenario declares (computed once).

        Generated federations synthesize a deterministic hijack corpus
        from their graph; trace-derived scenarios install their own
        ``corpus_factory``; Figure 2 uses the inputs DiCE observed
        during convergence.
        """
        if self._corpus is None:
            if self.corpus_factory is not None:
                self._corpus = self.corpus_factory(self)
            elif self.dice is not None:
                # A DiCE-enabled scenario explores what it observed live,
                # not synthetic seeds — observation *is* its corpus.
                node = self.dice.router.node_id
                self._corpus = [
                    (node, peer, update) for peer, update in self.dice.observed
                ]
            elif self.graph is not None:
                self._corpus = synthesize_hijack_corpus(self.graph, self.build_seed)
            else:
                self._corpus = []
        return list(self._corpus)

    def federation(self, salt: bytes = b"dice-federation"):
        """A :class:`FederatedExploration` over this scenario's routers."""
        from repro.core.federation import FederatedExploration

        return FederatedExploration(
            dict(self.routers), salt=salt, graph=self.graph
        )

    def check_invariants(self) -> List[Finding]:
        """Expected-state violations (empty when the scenario is healthy).

        The baseline invariants every scenario asserts after
        convergence: each AS still locally originates its declared
        networks, and every declared edge has an established session on
        both sides.  Exploration never mutates live routers, so these
        must hold before *and after* any number of federated waves.

        Returns structured :class:`~repro.core.report.Finding` objects
        (``checker="baseline"``, the node and prefix attributed) rather
        than bare strings, so the CLI and programmatic consumers render
        and dedup them like every other finding.
        """
        violations: List[Finding] = []
        if self.graph is None:
            return violations

        def violation(node: str, summary: str, prefix=None, peer=None) -> Finding:
            return Finding(
                kind=FindingKind.INVARIANT_VIOLATION,
                severity=Severity.WARNING,
                summary=summary,
                prefix=prefix,
                peer=peer,
                node=node,
                checker="baseline",
            )

        for name, node in self.graph.nodes.items():
            router = self.routers.get(name)
            if router is None:
                continue
            for prefix in node.networks:
                route = router.loc_rib.get(prefix)
                if route is None:
                    violations.append(violation(
                        name, f"own prefix {prefix} missing from Loc-RIB",
                        prefix=prefix,
                    ))
                elif route.source != RouteSource.STATIC:
                    violations.append(violation(
                        name,
                        f"own prefix {prefix} no longer locally originated",
                        prefix=prefix,
                    ))
        for edge in self.graph.edges:
            for side, other in ((edge.a, edge.b), (edge.b, edge.a)):
                router = self.routers.get(side)
                if router is None:
                    continue
                session = router.sessions.get(other)
                if session is None or not session.established:
                    violations.append(violation(
                        side, f"session to {other} not established", peer=other,
                    ))
        return violations


@dataclass
class Fig2Scenario(BuiltScenario):
    """The built Figure 2 testbed: hosts, routers, replayer, and DiCE."""

    config: Optional[ScenarioConfig] = None
    provider: Optional[DiceEnabledRouter] = None
    customer: Optional[BgpRouter] = None
    replayer: Optional[TraceReplayer] = None
    trace: Optional[Trace] = None

    @property
    def provider_table_size(self) -> int:
        return self.provider.table_size()


def _build_fig2(config: ScenarioConfig) -> Fig2Scenario:
    """Construct (but do not run) the Figure 2 testbed."""
    started = time.perf_counter()
    graph = fig2_graph(config.filter_mode)
    trace = RouteViewsGenerator(
        TraceConfig(
            prefix_count=config.prefix_count,
            update_count=config.update_count,
            duration=config.trace_duration,
            seed=config.seed,
        )
    ).generate()

    host = NodeHost(seed=config.seed)
    provider = host.add_node(
        "provider",
        lambda nid, env: DiceEnabledRouter(nid, env, render_config(graph, "provider")),
    )
    customer = host.add_node(
        "customer",
        lambda nid, env: BgpRouter(nid, env, render_config(graph, "customer")),
    )
    replayer = host.add_node(
        "internet",
        lambda nid, env: TraceReplayer(
            nid,
            env,
            host.sim,
            "provider",
            trace,
            local_as=INTERNET_AS,
            peer_as=PROVIDER_AS,
            compression=config.replay_compression,
        ),
    )
    host.add_link("provider", "customer", latency=graph.latency("provider", "customer"))
    host.add_link("provider", "internet", latency=graph.latency("provider", "internet"))

    dice = DiCE(
        provider,
        policy=config.dice_policy,
        anycast_whitelist=config.anycast_whitelist,
    )
    host.start()
    return Fig2Scenario(
        name="fig2",
        host=host,
        routers={"provider": provider, "customer": customer},  # type: ignore[dict-item]
        graph=graph,
        dice=dice,
        build_seed=config.seed,
        construction_seconds=time.perf_counter() - started,
        corpus_factory=_fig2_corpus,
        config=config,
        provider=provider,  # type: ignore[arg-type]
        customer=customer,
        replayer=replayer,
        trace=trace,
    )


# ---------------------------------------------------------------------------
# Seed corpus synthesis.
# ---------------------------------------------------------------------------


def synthesize_hijack_corpus(
    graph: AsGraph,
    seed: int = DEFAULT_SCENARIO_SEED,
    per_as: int = 1,
    targets: Optional[List[str]] = None,
) -> List[FederatedSeed]:
    """A deterministic route-leak corpus over a generated federation.

    For each AS, craft an exploratory announcement arriving from one of
    its neighbors (customers preferred — the paper's leak study shape)
    that claims some other AS's installed prefix with the injecting
    neighbor as origin: the exact-prefix hijack every mis-filtered
    import would accept.  Announcing an *installed* prefix is what makes
    the wave observable end to end — the target's clone overrides its
    origin while other clones still hold the truth, so the salted origin
    digests disagree until (and unless) propagation reconciles them.
    Pure function of (graph, seed).  ``targets`` restricts which ASes
    receive an exploratory announcement (default: all of them) — the
    knob scale scenarios use to keep a 1000-AS corpus bounded.
    """
    rng = derive_rng(seed, "hijack-corpus", graph.name)
    corpus: List[FederatedSeed] = []
    for name in (targets if targets is not None else graph.nodes):
        neighbors = graph.neighbors(name)
        if not neighbors:
            continue
        customers = [peer for peer, rel, _ in neighbors if rel == "customer"]
        pool = customers or [peer for peer, _, _ in neighbors]
        for _ in range(per_as):
            injector = rng.choice(pool)
            cone = set(graph.customer_cone(injector))
            victims = [
                node for node in graph.nodes.values()
                if node.name not in (name, injector)
                and node.networks
                and node.networks[0] not in cone
            ]
            if not victims:
                # Tiny federations (fig1's pair) have no third party; the
                # injector claiming the *target's own* space is still a
                # baseline-overriding announcement the checkers must flag.
                victims = [graph.nodes[name]] if graph.nodes[name].networks else []
            if not victims:
                continue
            victim = rng.choice(victims)
            hijacked = victim.networks[0]
            corpus.append(
                (
                    name,
                    injector,
                    UpdateMessage(
                        attributes=PathAttributes(
                            as_path=AsPath.sequence([graph.nodes[injector].asn]),
                            next_hop=graph.nodes[injector].router_id,
                        ),
                        nlri=[NlriEntry.from_prefix(hijacked)],
                    ),
                )
            )
    return corpus


def _fig2_corpus(built: BuiltScenario) -> List[FederatedSeed]:
    """Figure 2's corpus: the customer announcements DiCE observed.

    The internet side's trace replay is also observed, but the paper's
    leak study explores customer input — that peer filter is fig2
    policy, so it lives here rather than in the generic corpus path.
    """
    node = built.dice.router.node_id
    return [
        (node, peer, update)
        for peer, update in built.dice.observed
        if peer == "customer"
    ]


def _trace_corpus(count: int = 6):
    """A corpus factory deriving seeds from a synthetic RouteViews stream."""

    def factory(built: BuiltScenario) -> List[FederatedSeed]:
        trace = RouteViewsGenerator(
            TraceConfig(
                prefix_count=64,
                update_count=count * 4,
                duration=60.0,
                seed=built.build_seed,
            )
        ).generate()
        # Inject at a node with at least two neighbors (the middle of a
        # chain): accepted announcements then re-export across the
        # fabric, so the wave actually exercises clone-to-clone channels.
        names = list(built.graph.nodes)
        target = next(
            (n for n in names if len(built.graph.neighbors(n)) >= 2), names[0]
        )
        customers = built.graph.customers_of(target)
        injector = customers[0] if customers else built.graph.neighbors(target)[0][0]
        return [
            (target, injector, update)
            for update in seed_updates_from_trace(trace, count)
        ]

    return factory


# ---------------------------------------------------------------------------
# The registry.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """A named, declaratively built testbed.

    ``builder(seed=..., **overrides)`` materializes a
    :class:`BuiltScenario`; ``graph_factory`` (when present) exposes the
    topology cheaply for listings and property tests without paying for
    router construction.
    """

    name: str
    description: str
    builder: Callable[..., BuiltScenario]
    graph_factory: Optional[Callable[[int], AsGraph]] = None
    kind: str = "topology"

    def build(
        self, seed: int = DEFAULT_SCENARIO_SEED, **overrides
    ) -> BuiltScenario:
        return self.builder(seed=seed, **overrides)

    def graph(self, seed: int = DEFAULT_SCENARIO_SEED) -> Optional[AsGraph]:
        return self.graph_factory(seed) if self.graph_factory is not None else None

    def shape(self, seed: int = DEFAULT_SCENARIO_SEED) -> Dict[str, int]:
        graph = self.graph(seed)
        return graph.summary() if graph is not None else {}


SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    if scenario.name in SCENARIOS and not replace:
        raise ConfigError(f"scenario {scenario.name!r} already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ConfigError(
            f"unknown scenario {name!r}; registered: {', '.join(sorted(SCENARIOS))}"
        )
    return scenario


def list_scenarios() -> List[Scenario]:
    return [SCENARIOS[name] for name in sorted(SCENARIOS)]


def _sampled_corpus(limit: int):
    """A corpus factory targeting an evenly spread subset of the ASes.

    The default corpus injects one exploratory announcement per AS —
    the right density for small federations, but a 1000-seed corpus at
    1000 ASes.  Scale scenarios cap it at ``limit`` targets, spread
    across the hierarchy so core, transit, and stub injection points
    all stay represented.
    """

    def factory(built: BuiltScenario) -> List[FederatedSeed]:
        names = list(built.graph.nodes)
        step = max(1, -(-len(names) // limit))
        return synthesize_hijack_corpus(
            built.graph, built.build_seed, targets=names[::step]
        )

    return factory


def _graph_scenario(
    name: str,
    description: str,
    graph_factory: Callable[[int], AsGraph],
    corpus_factory: Optional[Callable[[BuiltScenario], List[FederatedSeed]]] = None,
    kind: str = "topology",
) -> Scenario:
    def builder(seed: int = DEFAULT_SCENARIO_SEED, **overrides) -> BuiltScenario:
        started = time.perf_counter()
        graph = graph_factory(seed, **overrides) if overrides else graph_factory(seed)
        host, routers = build_routers(graph, seed=seed)
        return BuiltScenario(
            name=name,
            host=host,
            routers=routers,
            graph=graph,
            build_seed=seed,
            construction_seconds=time.perf_counter() - started,
            corpus_factory=corpus_factory,
        )

    return register_scenario(
        Scenario(name, description, builder, graph_factory=graph_factory, kind=kind)
    )


def _fig2_builder(seed: int = DEFAULT_SCENARIO_SEED, **overrides) -> Fig2Scenario:
    return _build_fig2(ScenarioConfig(seed=seed, **overrides))


register_scenario(
    Scenario(
        "fig2",
        "the paper's evaluation testbed: provider with an erroneous customer "
        "filter, trace-replaying internet, DiCE attached",
        _fig2_builder,
        graph_factory=lambda seed: fig2_graph("erroneous"),
        kind="paper",
    )
)

_graph_scenario(
    "fig1",
    "minimal provider+customer pair with an erroneous customer filter — "
    "the smallest federation exercising branch exploration",
    lambda seed, filter_mode="erroneous": generators.line(
        2, seed=seed, filter_mode=filter_mode
    ),
)

_graph_scenario(
    "line-3",
    "three-AS transit chain (tier1 > tier2 > stub), unfiltered customers",
    lambda seed, filter_mode="missing": generators.line(
        3, seed=seed, filter_mode=filter_mode
    ),
)

_graph_scenario(
    "ring-4",
    "four settlement-free peers in a cycle; no transit hierarchy",
    lambda seed, filter_mode="missing": generators.ring(
        4, seed=seed, filter_mode=filter_mode
    ),
)

_graph_scenario(
    "star-6",
    "one transit hub with five stub customers (a small ISP)",
    lambda seed, filter_mode="missing": generators.star(
        6, seed=seed, filter_mode=filter_mode
    ),
)

_graph_scenario(
    "clique-4",
    "full-mesh peering among four ASes (an IXP-style fabric)",
    lambda seed, filter_mode="missing": generators.clique(
        4, seed=seed, filter_mode=filter_mode
    ),
)

_graph_scenario(
    "tiered-8",
    "textbook hierarchy: 2 tier-1s (clique), 3 multihomed tier-2s, 3 stubs",
    lambda seed, filter_mode="missing": generators.tiered(
        2, 3, 3, seed=seed, filter_mode=filter_mode
    ),
)

_graph_scenario(
    "caida-sample",
    "a measured-format CAIDA AS-relationship excerpt (11 ASes): tier-1 "
    "peering clique, multihomed regionals, stubs — parsed, not hand-built",
    lambda seed, filter_mode="missing": caida.sample_graph(
        seed=seed, filter_mode=filter_mode
    ),
)

_graph_scenario(
    "hierarchical-50",
    "degree-distribution-sampled Internet-shaped hierarchy, 50 ASes "
    "(clique core, preferential-attachment transit tier, stubs)",
    lambda seed, filter_mode="missing": generators.hierarchical(
        50, seed=seed, filter_mode=filter_mode
    ),
)

_graph_scenario(
    "hierarchical-200",
    "Internet-shaped hierarchy at 200 ASes — the benchmark scale for "
    "the vectorized propagation fabric",
    lambda seed, filter_mode="missing": generators.hierarchical(
        200, seed=seed, filter_mode=filter_mode
    ),
    corpus_factory=_sampled_corpus(16),
    kind="scale",
)

_graph_scenario(
    "hierarchical-1000",
    "Internet-scale hierarchy: 1000 ASes, origination capped at 64 so "
    "routing tables stay affordable (see README: scaling to 1000 ASes)",
    lambda seed, filter_mode="missing", max_origins=64: generators.hierarchical(
        1000, seed=seed, filter_mode=filter_mode, max_origins=max_origins
    ),
    corpus_factory=_sampled_corpus(16),
    kind="scale",
)

_graph_scenario(
    "routeviews-3",
    "line-3 federation with a seed corpus derived from a synthetic "
    "RouteViews update stream (trace-shaped attributes)",
    lambda seed, filter_mode="missing": generators.line(
        3, seed=seed, filter_mode=filter_mode
    ),
    corpus_factory=_trace_corpus(),
)
