"""Tests for IPv4 addresses, prefixes, and the prefix trie."""

import pytest
from hypothesis import given, strategies as st

from repro.util.errors import AddressError
from repro.util.ip import (
    ADDR_MAX,
    Prefix,
    PrefixTrie,
    int_to_ip,
    ip_to_int,
    mask_for,
)

addresses = st.integers(min_value=0, max_value=ADDR_MAX)
lengths = st.integers(min_value=0, max_value=32)


class TestAddressParsing:
    def test_roundtrip_known_value(self):
        assert ip_to_int("10.0.0.1") == 167772161
        assert int_to_ip(167772161) == "10.0.0.1"

    def test_extremes(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == ADDR_MAX

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "01.2.3.4", "1..2.3", ""]
    )
    def test_malformed_addresses_rejected(self, bad):
        with pytest.raises(AddressError):
            ip_to_int(bad)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(AddressError):
            int_to_ip(ADDR_MAX + 1)
        with pytest.raises(AddressError):
            int_to_ip(-1)

    @given(addresses)
    def test_roundtrip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestMask:
    def test_mask_values(self):
        assert mask_for(0) == 0
        assert mask_for(8) == 0xFF000000
        assert mask_for(32) == ADDR_MAX

    def test_mask_out_of_range(self):
        with pytest.raises(AddressError):
            mask_for(33)

    @given(lengths)
    def test_mask_has_length_leading_ones(self, length):
        mask = mask_for(length)
        assert bin(mask | (1 << 33)).count("1") - 1 == length


class TestPrefix:
    def test_parse_and_str(self):
        p = Prefix.parse("10.0.0.0/8")
        assert str(p) == "10.0.0.0/8"
        assert p.length == 8

    def test_bare_address_is_host_route(self):
        assert Prefix.parse("1.2.3.4").length == 32

    def test_canonicalization_masks_host_bits(self):
        assert Prefix.parse("10.1.2.3/8") == Prefix.parse("10.0.0.0/8")

    def test_immutable(self):
        p = Prefix.parse("10.0.0.0/8")
        with pytest.raises(AttributeError):
            p.length = 9

    def test_covers_and_overlaps(self):
        big = Prefix.parse("10.0.0.0/8")
        small = Prefix.parse("10.1.0.0/16")
        other = Prefix.parse("11.0.0.0/8")
        assert big.covers(small)
        assert not small.covers(big)
        assert big.overlaps(small) and small.overlaps(big)
        assert not big.overlaps(other)

    def test_contains_operators(self):
        big = Prefix.parse("10.0.0.0/8")
        assert Prefix.parse("10.2.0.0/16") in big
        assert ip_to_int("10.255.0.1") in big
        assert "10.3.0.0/24" in big
        assert Prefix.parse("11.0.0.0/16") not in big

    def test_supernet_and_subnets(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.supernet() == Prefix.parse("10.0.0.0/7")
        low, high = p.subnets()
        assert low == Prefix.parse("10.0.0.0/9")
        assert high == Prefix.parse("10.128.0.0/9")
        assert Prefix(0, 0).supernet() == Prefix(0, 0)

    def test_subnet_of_host_route_fails(self):
        with pytest.raises(AddressError):
            Prefix.parse("1.2.3.4/32").subnets()

    def test_ordering_groups_covering_first(self):
        prefixes = sorted(
            [Prefix.parse("10.0.1.0/24"), Prefix.parse("10.0.0.0/8"),
             Prefix.parse("10.0.0.0/16")]
        )
        assert [str(p) for p in prefixes] == [
            "10.0.0.0/8", "10.0.0.0/16", "10.0.1.0/24"
        ]

    def test_size_and_broadcast(self):
        p = Prefix.parse("192.168.1.0/24")
        assert p.size == 256
        assert int_to_ip(p.broadcast) == "192.168.1.255"

    def test_pickle_roundtrip(self):
        import pickle

        p = Prefix.parse("10.20.0.0/16")
        assert pickle.loads(pickle.dumps(p)) == p

    @given(addresses, lengths)
    def test_network_has_no_host_bits(self, network, length):
        p = Prefix(network, length)
        assert p.network & ~mask_for(length) == 0

    @given(addresses, st.integers(min_value=1, max_value=32))
    def test_subnets_partition_parent(self, network, length):
        parent = Prefix(network, length - 1)
        low, high = parent.subnets()
        assert low.size + high.size == parent.size
        assert parent.covers(low) and parent.covers(high)
        assert not low.overlaps(high)


class TestPrefixTrie:
    def test_insert_get_remove(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, "x")
        assert trie.get(p) == "x"
        assert p in trie
        assert len(trie) == 1
        assert trie.remove(p)
        assert p not in trie
        assert not trie.remove(p)

    def test_insert_replaces(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, 1)
        trie.insert(p, 2)
        assert trie.get(p) == 2
        assert len(trie) == 1

    def test_stored_none_distinct_from_absent(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, None)
        assert p in trie
        assert trie.get(p, "default") is None

    def test_longest_match(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "eight")
        trie.insert(Prefix.parse("10.1.0.0/16"), "sixteen")
        hit = trie.longest_match(ip_to_int("10.1.2.3"))
        assert hit is not None
        prefix, value = hit
        assert value == "sixteen" and prefix == Prefix.parse("10.1.0.0/16")
        hit = trie.longest_match(ip_to_int("10.9.0.0"))
        assert hit[1] == "eight"
        assert trie.longest_match(ip_to_int("11.0.0.0")) is None

    def test_default_route_matches_everything(self):
        trie = PrefixTrie()
        trie.insert(Prefix(0, 0), "default")
        assert trie.longest_match(12345)[1] == "default"

    def test_covering_shortest_first(self):
        trie = PrefixTrie()
        for text in ("10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"):
            trie.insert(Prefix.parse(text), text)
        found = [value for _, value in trie.covering(Prefix.parse("10.1.2.0/25"))]
        assert found == ["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"]

    def test_covering_includes_exact(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.1.0.0/16")
        trie.insert(p, "v")
        assert [v for _, v in trie.covering(p)] == ["v"]

    def test_covered_by(self):
        trie = PrefixTrie()
        for text in ("10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "11.0.0.0/8"):
            trie.insert(Prefix.parse(text), text)
        found = {v for _, v in trie.covered_by(Prefix.parse("10.0.0.0/8"))}
        assert found == {"10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"}

    def test_items_count(self):
        trie = PrefixTrie()
        prefixes = [Prefix(i << 24, 8) for i in range(1, 30)]
        for p in prefixes:
            trie.insert(p, p)
        assert len(list(trie.items())) == len(prefixes)

    @given(
        st.lists(
            st.tuples(addresses, lengths), min_size=1, max_size=60, unique_by=lambda t: t
        )
    )
    def test_trie_agrees_with_linear_scan(self, entries):
        trie = PrefixTrie()
        table = {}
        for network, length in entries:
            p = Prefix(network, length)
            trie.insert(p, (network, length))
            table[p] = (network, length)
        assert len(trie) == len(table)
        for p, value in table.items():
            assert trie.get(p) == value
        # Longest match agrees with brute force for a probe address.
        probe = entries[0][0]
        expected = None
        for p in table:
            if p.contains_address(probe):
                if expected is None or p.length > expected.length:
                    expected = p
        got = trie.longest_match(probe)
        if expected is None:
            assert got is None
        else:
            assert got[0] == expected
