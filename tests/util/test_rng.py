"""Tests for deterministic RNG derivation."""

from hypothesis import given, strategies as st

from repro.util.rng import derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_labels_matter(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_mixed_seed_types(self):
        assert derive_seed("text-seed") == derive_seed("text-seed")
        assert derive_seed(b"bytes") == derive_seed(b"bytes")
        assert derive_seed(-5, "x") == derive_seed(-5, "x")

    def test_label_concatenation_not_ambiguous(self):
        # ("ab",) must differ from ("a", "b").
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")


class TestDeriveRng:
    def test_independent_streams(self):
        a = derive_rng(7, "stream-a")
        b = derive_rng(7, "stream-b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_reproducible_streams(self):
        first = [derive_rng(7, "s").random() for _ in range(3)]
        second = [derive_rng(7, "s").random() for _ in range(3)]
        # Each call makes a fresh generator, so single draws repeat.
        assert first == second

    @given(st.integers(), st.text(max_size=20))
    def test_any_seed_and_label_work(self, seed, label):
        value = derive_rng(seed, label).random()
        assert 0.0 <= value < 1.0
