"""Branch and path coverage accounting for exploration runs.

Coverage drives two things: the default search strategy prioritizes
inputs that exercised new branch outcomes, and the paper's "aggregate set
of constraints" (section 2.3) — branches discovered only in later runs
must still get negated — falls out of observing every executed path here
and letting the explorer enqueue negations for any outcome not yet
attempted.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.concolic.path import PathCondition
from repro.concolic.tracer import BranchSite

Outcome = Tuple[BranchSite, bool]


@dataclass
class BranchCoverage:
    """Tracks which (branch site, direction) outcomes have been executed."""

    outcomes: Set[Outcome] = field(default_factory=set)
    site_hits: Counter = field(default_factory=Counter)
    paths: Set[bytes] = field(default_factory=set)

    def observe(self, path: PathCondition) -> int:
        """Record a path; returns how many branch outcomes were new."""
        new_outcomes = 0
        for branch in path:
            self.site_hits[branch.site] += 1
            if branch.outcome_key not in self.outcomes:
                self.outcomes.add(branch.outcome_key)
                new_outcomes += 1
        self.paths.add(path.signature())
        return new_outcomes

    def would_be_new(self, path: PathCondition) -> int:
        """How many outcomes of ``path`` are uncovered, without recording."""
        return sum(1 for b in path if b.outcome_key not in self.outcomes)

    @property
    def covered_outcomes(self) -> int:
        return len(self.outcomes)

    @property
    def covered_sites(self) -> int:
        return len({site for site, _ in self.outcomes})

    @property
    def fully_covered_sites(self) -> int:
        """Sites where both directions of the branch have been executed."""
        both = 0
        sites = {site for site, _ in self.outcomes}
        for site in sites:
            if (site, True) in self.outcomes and (site, False) in self.outcomes:
                both += 1
        return both

    @property
    def path_count(self) -> int:
        return len(self.paths)

    def merge(self, other: "BranchCoverage") -> "BranchCoverage":
        """Fold another session's coverage into this one (set union)."""
        self.outcomes |= other.outcomes
        self.site_hits.update(other.site_hits)
        self.paths |= other.paths
        return self

    def site_summary(self) -> Dict[str, int]:
        """Hit counts keyed by printable site, for reports."""
        return {str(site): count for site, count in sorted(
            self.site_hits.items(), key=lambda item: (item[0].file, item[0].line)
        )}


class CoverageScheduler:
    """Novelty-weighted seed scheduling over accumulated branch coverage.

    Blind per-peer round-robin spends the same exploration budget on a
    seed that retreads fully covered branch space as on one likely to
    open new territory.  This scheduler keeps two cheap signals — KLEE's
    coverage-driven search heuristic, transplanted to *seed* selection:

    * **peer productivity** — an exponential moving average of how many
      *new* branch outcomes each peer's recent sessions contributed to
      the merged :class:`BranchCoverage`; peers still finding new
      branches get scheduled ahead of peers that have gone dry;
    * **seed novelty** — seeds whose signature (a digest of the observed
      message) has never been scheduled score a multiplicative boost
      over repeats, since an unseen input is the likeliest way into
      uncovered branches.

    Determinism: scoring is a pure function of recorded history (no RNG),
    ties resolve by the same peer rotation the blind scheduler used, and
    with no history every candidate ties — so a fresh scheduler is
    byte-for-byte the old round-robin.  Peers never observed exploring
    are scored optimistically (at the current best EWMA), so a new peer
    cannot be starved by an established one.
    """

    def __init__(self, decay: float = 0.5, novelty_boost: float = 2.0) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if novelty_boost < 1.0:
            raise ValueError(f"novelty_boost must be >= 1, got {novelty_boost}")
        self.decay = decay
        self.novelty_boost = novelty_boost
        self.coverage = BranchCoverage()
        self.sessions_noted = 0
        self._peer_gain: Dict[str, float] = {}
        self._scheduled: Set[bytes] = set()

    def _fold_gain(self, key: str, reward: float) -> float:
        """One EWMA step of ``key``'s productivity estimate."""
        self.sessions_noted += 1
        previous = self._peer_gain.get(key)
        if previous is None:
            self._peer_gain[key] = float(reward)
        else:
            self._peer_gain[key] = (
                (1.0 - self.decay) * previous + self.decay * reward
            )
        return self._peer_gain[key]

    def note_session(self, peer: str, session_coverage: "BranchCoverage") -> int:
        """Fold a finished session's coverage in; returns its new outcomes."""
        new_outcomes = sum(
            1 for outcome in session_coverage.outcomes
            if outcome not in self.coverage.outcomes
        )
        self.coverage.merge(session_coverage)
        self._fold_gain(peer, new_outcomes)
        return new_outcomes

    def mark_scheduled(self, signature: Optional[bytes]) -> None:
        if signature is not None:
            self._scheduled.add(signature)

    def is_novel(self, signature: Optional[bytes]) -> bool:
        return signature is not None and signature not in self._scheduled

    def score(self, peer: str, signature: Optional[bytes]) -> float:
        """Predicted new-coverage value of scheduling this seed now."""
        gain = self._peer_gain.get(peer)
        if gain is None:
            # Optimism for the unexplored: an untried peer is at least as
            # promising as the best known one.
            gain = max(self._peer_gain.values(), default=0.0)
        score = 1.0 + gain
        if self.is_novel(signature):
            score *= self.novelty_boost
        return score

    def pick(
        self,
        candidates: Sequence[Tuple[str, Optional[bytes]]],
        after: Optional[str] = None,
    ) -> int:
        """Index of the best (peer, seed-signature) candidate.

        Ties resolve by rotation: the first top-scoring candidate at or
        after the peer following ``after`` in candidate order — exactly
        the blind round-robin when every score ties (the no-history
        case), which keeps scheduling a drop-in replacement.
        """
        if not candidates:
            raise ValueError("no candidates to pick from")
        scores = [self.score(peer, sig) for peer, sig in candidates]
        peers: List[str] = [peer for peer, _ in candidates]
        return self._rotated_argmax(scores, peers, after)

    @staticmethod
    def _rotated_argmax(
        values: Sequence[float], peers: Sequence[str], after: Optional[str]
    ) -> int:
        """Index of the max value; ties rotate after ``after``'s peer."""
        best = max(values)
        tied = {i for i, value in enumerate(values) if value == best}
        if len(tied) == 1:
            return next(iter(tied))
        start = 0
        if after in peers:
            start = (peers.index(after) + 1) % len(peers)
        for offset in range(len(peers)):
            index = (start + offset) % len(peers)
            if index in tied:
                return index
        return next(iter(tied))  # unreachable; tied is non-empty


class FederationScheduler(CoverageScheduler):
    """The coverage scheduler's EWMA, lifted one level up: across ASes.

    A federation-wide stream has one dispatch budget and many
    administrative domains competing for it.  Blind rotation across ASes
    has the same failure mode blind per-peer rotation had within one
    node: a domain that stopped yielding findings gets the same share of
    the worker pool as the domain where a hijack is actively unfolding.

    Candidates here are federation *nodes* (ASes) and the reward signal
    is **finding yield** — how many findings each AS's recently harvested
    sessions produced — folded through the same decay machinery as
    :class:`CoverageScheduler` (this class swaps the reward: cross-AS
    finding counts instead of new branch outcomes).

    Selection is a weighted *rotation*, not a winner-take-all argmax:
    every candidate AS accrues its yield score as credit on each pick
    and the largest credit dispatches (then pays its credit down).  A
    high-yield AS wins proportionally more slots, but the score floor
    (1.0) means a zero-yield AS accrues credit every round and is served
    within a bounded number of picks — delayed, never starved.  That
    bound matters beyond fairness: pending queues are finite and
    coalesce under backpressure, so an AS that never won dispatch would
    have its seeds silently superseded, not merely postponed.  With no
    finding history every credit ties and rotation reproduces the blind
    per-AS round-robin exactly; and because streaming job indices are
    assigned at submission, dispatch order never changes any session's
    result, only how soon each AS's results arrive.
    """

    def __init__(self, decay: float = 0.5, novelty_boost: float = 2.0) -> None:
        super().__init__(decay, novelty_boost)
        self._credit: Dict[str, float] = {}

    def note_findings(self, node: str, findings: int) -> float:
        """Fold one harvested session's finding count into the node EWMA."""
        return self._fold_gain(node, findings)

    def pick(
        self,
        candidates: Sequence[Tuple[str, Optional[bytes]]],
        after: Optional[str] = None,
    ) -> int:
        """Deficit rotation over the candidate ASes (see class docstring)."""
        if not candidates:
            raise ValueError("no candidates to pick from")
        credits: List[float] = []
        for node, signature in candidates:
            credit = self._credit.get(node, 0.0) + self.score(node, signature)
            self._credit[node] = credit
            credits.append(credit)
        peers = [node for node, _ in candidates]
        choice = self._rotated_argmax(credits, peers, after)
        self._credit[peers[choice]] = 0.0
        return choice

    def yields(self) -> Dict[str, float]:
        """The current per-AS finding-yield EWMAs (for reports/CLI)."""
        return dict(self._peer_gain)


class TenantScheduler(FederationScheduler):
    """Fair dispatch budget across *tenants* sharing one worker pool.

    Service mode runs several federations through a single streaming
    pool; this is :class:`FederationScheduler`'s yield-weighted deficit
    rotation applied one level further up.  The dispatcher picks a
    tenant first (credit accrues per tenant while it waits, so a
    high-yield federation wins proportionally more slots but can never
    starve a quiet neighbor), then rotates across that tenant's ASes
    with the per-federation scheduler as before.  Keys are tenant names
    rather than node ids; the machinery is identical, which is the
    point — tenancy changes who competes, not how the competition is
    scored.
    """
