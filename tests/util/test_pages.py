"""Tests for page-level memory accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.util.pages import PAGE_SIZE, PageSet, PageStore, paginate


class TestPaginate:
    def test_exact_pages(self):
        assert len(paginate(b"x" * (3 * PAGE_SIZE))) == 3

    def test_partial_last_page(self):
        assert len(paginate(b"x" * (PAGE_SIZE + 1))) == 2

    def test_empty(self):
        assert paginate(b"") == []

    def test_identical_content_identical_digests(self):
        a = paginate(b"a" * PAGE_SIZE + b"b" * PAGE_SIZE)
        b = paginate(b"a" * PAGE_SIZE + b"b" * PAGE_SIZE)
        assert a == b

    def test_bad_page_size(self):
        with pytest.raises(ValueError):
            paginate(b"x", page_size=0)


class TestPageSet:
    def test_identical_images_share_everything(self):
        data = bytes(range(256)) * 64
        a = PageSet.from_bytes(data)
        b = PageSet.from_bytes(data)
        assert a.unique_pages(b) == 0
        assert a.unique_fraction(b) == 0.0

    def test_disjoint_images_share_nothing(self):
        a = PageSet.from_bytes(b"a" * PAGE_SIZE * 4)
        b = PageSet.from_bytes(b"b" * PAGE_SIZE * 4)
        assert a.unique_fraction(b) == 1.0

    def test_multiset_semantics(self):
        # Two identical pages in one image count as two resident pages.
        double = PageSet.from_bytes(b"a" * PAGE_SIZE * 2)
        single = PageSet.from_bytes(b"a" * PAGE_SIZE)
        assert len(double) == 2
        assert double.unique_pages(single) == 1

    def test_segments_are_independent(self):
        # Growth in the first segment must not dirty the second's pages.
        seg2 = b"s" * (PAGE_SIZE * 3)
        before = PageSet.from_segments([b"a" * 100, seg2])
        after = PageSet.from_segments([b"a" * 150, seg2])
        assert after.unique_pages(before) == 1  # only segment 1's page

    def test_growth_fraction(self):
        base = PageSet.from_bytes(b"a" * PAGE_SIZE * 10)
        grown = PageSet.from_segments(
            [b"a" * PAGE_SIZE * 10, b"new" * PAGE_SIZE]
        )
        assert grown.growth_fraction(base) == pytest.approx(
            grown.unique_pages(base) / 10
        )

    def test_empty_baseline(self):
        empty = PageSet.from_bytes(b"")
        other = PageSet.from_bytes(b"x" * PAGE_SIZE)
        assert other.growth_fraction(empty) == 0.0
        assert empty.unique_fraction(other) == 0.0

    @given(st.binary(max_size=PAGE_SIZE * 4), st.binary(max_size=PAGE_SIZE * 4))
    def test_unique_fraction_bounds(self, a, b):
        sa = PageSet.from_bytes(a)
        sb = PageSet.from_bytes(b)
        assert 0.0 <= sa.unique_fraction(sb) <= 1.0

    @given(st.binary(min_size=1, max_size=PAGE_SIZE * 4))
    def test_self_comparison_is_zero(self, data):
        s = PageSet.from_bytes(data)
        assert s.unique_pages(s) == 0


class TestPageStore:
    def test_sharing_accounting(self):
        store = PageStore()
        image = PageSet.from_bytes(b"a" * PAGE_SIZE * 5)
        store.register("parent", image)
        store.register("child", image)
        assert store.resident_pages == 1  # all five pages identical content
        assert store.virtual_pages == 10
        assert store.sharing_ratio == pytest.approx(10.0)

    def test_distinct_content_not_shared(self):
        store = PageStore()
        store.register("a", PageSet.from_bytes(bytes([1]) * PAGE_SIZE))
        store.register("b", PageSet.from_bytes(bytes([2]) * PAGE_SIZE))
        assert store.resident_pages == 2

    def test_unregister_releases(self):
        store = PageStore()
        image = PageSet.from_bytes(b"a" * PAGE_SIZE)
        store.register("a", image)
        store.register("b", image)
        store.unregister("a")
        assert store.resident_pages == 1
        store.unregister("b")
        assert store.resident_pages == 0

    def test_reregister_replaces(self):
        store = PageStore()
        store.register("a", PageSet.from_bytes(b"1" * PAGE_SIZE))
        store.register("a", PageSet.from_bytes(b"2" * PAGE_SIZE))
        assert store.virtual_pages == 1

    def test_unregister_unknown_is_noop(self):
        store = PageStore()
        store.unregister("ghost")
        assert store.resident_pages == 0

    def test_empty_store_ratio(self):
        assert PageStore().sharing_ratio == 1.0
