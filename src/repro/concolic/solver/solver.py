"""The composite constraint solver used by the exploration loop.

A query is a conjunction of boolean expressions over bounded integer
variables, plus a *hint* assignment (the concrete input of the run whose
branch is being negated).  The pipeline, cheapest first:

1. **constant screening** — a constraint folded to ``false`` proves UNSAT;
2. **interval propagation** — narrows variable domains, may prove UNSAT;
3. **hint check** — the clipped hint may already satisfy the query (the
   negated branch can flip "for free" when domains were narrowed);
4. **linear inversion** — solve the atoms of the negated constraint for
   one variable at a time (exact, handles the vast majority of queries);
5. **bounded enumeration** — exhaustive scan of one small-domain variable;
6. **guided local search** — hill climbing on branch distance.

Failures are reported as *unknown* (not UNSAT) unless step 1/2 proved
unsatisfiability; the explorer counts both, and EXPERIMENTS.md reports the
observed solver success rates.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.concolic.expr import BinOp, Const, Expr, UnaryOp
from repro.concolic.solver import search
from repro.concolic.solver.cache import (
    ConstraintCache,
    box_subsumes,
    canonical_query_key,
    entry_for_model,
    model_from_entry,
    semantic_query_key,
)
from repro.concolic.solver.intervals import (
    Interval,
    memo_counters,
    narrow,
    propagate,
)
from repro.concolic.solver.linear import solve_atom

Assignment = Dict[str, int]


@dataclass
class SolverStats:
    """Counters describing how queries were dispatched and resolved.

    The ``*_time`` fields break ``total_time`` down by pipeline stage
    (key computation and cache lookups are the remainder), so profiles
    can tell "slow because local search runs" from "slow because every
    query re-keys a long conjunction".
    """

    queries: int = 0
    sat: int = 0
    unsat_proved: int = 0
    unknown: int = 0
    hint_hits: int = 0
    linear_hits: int = 0
    enumeration_hits: int = 0
    search_hits: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    semantic_lookups: int = 0
    semantic_hits: int = 0
    semantic_model_hits: int = 0
    propagate_memo_hits: int = 0
    propagate_memo_misses: int = 0
    total_time: float = 0.0
    key_time: float = 0.0
    screen_time: float = 0.0
    propagate_time: float = 0.0
    hint_time: float = 0.0
    linear_time: float = 0.0
    enum_time: float = 0.0
    search_time: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "queries": self.queries,
            "sat": self.sat,
            "unsat_proved": self.unsat_proved,
            "unknown": self.unknown,
            "hint_hits": self.hint_hits,
            "linear_hits": self.linear_hits,
            "enumeration_hits": self.enumeration_hits,
            "search_hits": self.search_hits,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "semantic_lookups": self.semantic_lookups,
            "semantic_hits": self.semantic_hits,
            "semantic_model_hits": self.semantic_model_hits,
            "propagate_memo_hits": self.propagate_memo_hits,
            "propagate_memo_misses": self.propagate_memo_misses,
            "total_time": self.total_time,
            "key_time": self.key_time,
            "screen_time": self.screen_time,
            "propagate_time": self.propagate_time,
            "hint_time": self.hint_time,
            "linear_time": self.linear_time,
            "enum_time": self.enum_time,
            "search_time": self.search_time,
            "cache_hit_rate": self.cache_hit_rate,
            "semantic_hit_rate": self.semantic_hit_rate,
            "propagate_memo_hit_rate": self.propagate_memo_hit_rate,
        }

    @property
    def sat_rate(self) -> float:
        return self.sat / self.queries if self.queries else 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def semantic_hit_rate(self) -> float:
        """Subsumption-probe hits over probes (probes run on exact misses)."""
        if not self.semantic_lookups:
            return 0.0
        return self.semantic_hits / self.semantic_lookups

    @property
    def propagate_memo_hit_rate(self) -> float:
        """Per-(node, box) memo hits over all interval memo lookups."""
        lookups = self.propagate_memo_hits + self.propagate_memo_misses
        return self.propagate_memo_hits / lookups if lookups else 0.0

    def stage_times(self) -> Dict[str, float]:
        """The per-stage breakdown alone, for compact progress displays."""
        return {
            "key": self.key_time,
            "screen": self.screen_time,
            "propagate": self.propagate_time,
            "hint": self.hint_time,
            "linear": self.linear_time,
            "enum": self.enum_time,
            "search": self.search_time,
        }


def merge_stats_dict(
    totals: Dict[str, float], other: Dict[str, float]
) -> Dict[str, float]:
    """Fold one :meth:`SolverStats.as_dict` into a running total, in place.

    The single definition of the aggregation rule every cross-session
    view uses (``ExplorationReport.absorb``, ``BatchReport.solver_totals``):
    plain counters sum; derived ratios (``*_rate`` keys) are skipped and
    ``cache_hit_rate`` is recomputed from the summed counters, so adding
    a stage or ratio to ``SolverStats`` cannot silently be summed wrong
    in one consumer.
    """
    for key, value in other.items():
        if key.endswith("_rate") or not isinstance(value, (int, float)):
            continue
        totals[key] = totals.get(key, 0) + value
    lookups = totals.get("cache_hits", 0) + totals.get("cache_misses", 0)
    if lookups:
        totals["cache_hit_rate"] = totals["cache_hits"] / lookups
    probes = totals.get("semantic_lookups", 0)
    if probes:
        totals["semantic_hit_rate"] = totals.get("semantic_hits", 0) / probes
    memo_lookups = totals.get("propagate_memo_hits", 0) + totals.get(
        "propagate_memo_misses", 0
    )
    if memo_lookups:
        totals["propagate_memo_hit_rate"] = (
            totals["propagate_memo_hits"] / memo_lookups
        )
    return totals


@dataclass
class ConstraintSolver:
    """Facade combining screening, intervals, linear solving and search.

    ``cache`` (optional) short-circuits queries whose canonical form —
    constraints, domains, *and* hint — has been solved before, anywhere
    the cache is shared (see :mod:`repro.concolic.solver.cache`).
    ``deterministic_rng`` makes the local-search stage a pure function of
    the query (its RNG is derived from the canonical key instead of a
    shared stream), so a cached entry is exactly what a fresh solve would
    produce; parallel exploration workers enable both.

    ``semantic`` enables subsumption probes of the cache's semantic
    index on exact-key misses.  UNSAT proofs borrowed this way are
    always result-deterministic (a fresh solve of a query subsumed by a
    proved-UNSAT one must also return None), so they are safe under any
    scheduling.  Borrowed SAT *models* are re-checked before reuse and
    therefore sound, but which model the index happens to hold depends
    on solve order — so model reuse defaults to ``not
    deterministic_rng``: on for solo engines, off for parallel workers
    whose results must be worker-count-independent
    (``semantic_model_reuse`` overrides explicitly).
    """

    rng: random.Random = field(default_factory=lambda: random.Random(0x51CE))
    max_search_iters: int = 2000
    enum_limit: int = 4096
    stats: SolverStats = field(default_factory=SolverStats)
    cache: Optional[ConstraintCache] = None
    deterministic_rng: bool = False
    semantic: bool = True
    semantic_model_reuse: Optional[bool] = None

    @property
    def wants_key(self) -> bool:
        """True when :meth:`solve` would compute a query key anyway.

        Callers that can derive the key incrementally (the engine's
        rolling per-prefix digests) check this before paying for one; a
        solver with neither cache nor deterministic RNG never looks at
        keys at all.
        """
        return self.cache is not None or self.deterministic_rng

    @property
    def wants_semantic(self) -> bool:
        """True when :meth:`solve` would probe the semantic index.

        Mirrors :attr:`wants_key` for the constraints-only digest: the
        engine derives semantic keys incrementally too, and checks this
        before paying for them.
        """
        return (
            self.semantic
            and self.cache is not None
            and hasattr(self.cache, "get_semantic")
        )

    @property
    def _semantic_models_allowed(self) -> bool:
        if self.semantic_model_reuse is not None:
            return self.semantic_model_reuse
        return not self.deterministic_rng

    def solve(
        self,
        constraints: Sequence[Expr],
        domains: Dict[str, Interval],
        hint: Optional[Assignment] = None,
        key: Optional[bytes] = None,
        semantic_key: Optional[bytes] = None,
    ) -> Optional[Assignment]:
        """Find an assignment satisfying every constraint, or None.

        ``domains`` maps every variable to its inclusive value range; the
        returned assignment covers exactly the domain variables.  ``key``
        (optional) is a precomputed :func:`canonical_query_key` for this
        exact query — the engine passes one derived incrementally from
        the path's rolling prefix digests; when omitted and needed it is
        computed from scratch here, with byte-identical results.
        ``semantic_key`` is the analogous precomputed
        :func:`semantic_query_key`.
        """
        constraints = list(constraints)
        hint_map = dict(hint or {})
        return self._run_query(
            lambda: constraints,
            domains,
            hint_map,
            key,
            semantic_key,
            lambda rng: self._solve(
                list(constraints), dict(domains), hint_map, rng
            ),
        )

    def _run_query(
        self,
        constraints_fn,
        domains: Dict[str, Interval],
        hint: Assignment,
        key: Optional[bytes],
        semantic_key: Optional[bytes],
        solve_fn,
    ) -> Optional[Assignment]:
        """The key/cache/RNG ceremony shared by :meth:`solve` and
        :meth:`solve_batch`.

        ``constraints_fn`` materializes the query conjunction on demand
        (the batch path avoids building it for exact-key hits);
        ``solve_fn`` runs the actual pipeline under the derived RNG.
        Interval-memo counter deltas are attributed to this query's
        stats here so both entry points account them identically.
        """
        started = time.perf_counter()
        stats = self.stats
        stats.queries += 1
        memo_hits_before, memo_misses_before = memo_counters()
        try:
            if key is None and self.wants_key:
                key = canonical_query_key(constraints_fn(), domains, hint)
                stats.key_time += time.perf_counter() - started
            semantic = self.wants_semantic
            if self.cache is not None:
                entry = self.cache.get(key)
                if entry is not None:
                    return self._replay_entry(entry)
                stats.cache_misses += 1
                if semantic:
                    if semantic_key is None:
                        semantic_key = semantic_query_key(constraints_fn())
                    hit, model = self._semantic_probe(
                        constraints_fn(), domains, semantic_key
                    )
                    if hit:
                        return model
            rng = self.rng
            if self.deterministic_rng:
                rng = random.Random(int.from_bytes(key[:8], "big"))
            unsat_before = stats.unsat_proved
            model = solve_fn(rng)
            if self.cache is not None:
                entry = entry_for_model(model, stats.unsat_proved > unsat_before)
                self.cache.put(key, entry)
                if semantic:
                    self.cache.put_semantic(semantic_key, domains, entry)
            return model
        finally:
            memo_hits, memo_misses = memo_counters()
            stats.propagate_memo_hits += memo_hits - memo_hits_before
            stats.propagate_memo_misses += memo_misses - memo_misses_before
            stats.total_time += time.perf_counter() - started

    def _semantic_probe(
        self,
        constraints: List[Expr],
        domains: Dict[str, Interval],
        semantic_key: bytes,
    ) -> Tuple[bool, Optional[Assignment]]:
        """Probe the subsumption index; returns (hit, model).

        A candidate answers only if its box covers the query box over the
        same variables.  UNSAT proofs transfer unconditionally (sound and
        deterministic); SAT models transfer only when allowed *and* the
        model re-validates against this query — a semantic hit is never
        written back under the exact key, so exact-layer determinism is
        untouched.
        """
        stats = self.stats
        stats.semantic_lookups += 1
        candidates = self.cache.get_semantic(semantic_key)
        if not candidates:
            return False, None
        models_allowed = self._semantic_models_allowed
        for wider, entry in candidates:
            if not box_subsumes(wider, domains):
                continue
            if entry[0] == "unsat":
                stats.semantic_hits += 1
                stats.unsat_proved += 1
                return True, None
            if entry[0] == "sat" and models_allowed:
                model = dict(entry[1])
                if search.validate_model(constraints, model, domains):
                    stats.semantic_hits += 1
                    stats.semantic_model_hits += 1
                    stats.sat += 1
                    return True, model
        return False, None

    def _replay_entry(self, entry) -> Optional[Assignment]:
        """Account a cache hit with the same counters a fresh solve would."""
        self.stats.cache_hits += 1
        if entry[0] == "sat":
            self.stats.sat += 1
        elif entry[0] == "unsat":
            self.stats.unsat_proved += 1
        else:
            self.stats.unknown += 1
        return model_from_entry(entry)

    def solve_batch(
        self,
        prefix: Sequence[Expr],
        negations: Sequence[Tuple[int, Expr]],
        domains: Dict[str, Interval],
        hint: Optional[Assignment] = None,
        keys: Optional[Sequence[Optional[bytes]]] = None,
        semantic_keys: Optional[Sequence[Optional[bytes]]] = None,
    ) -> List[Optional[Assignment]]:
        """Solve one execution's sibling negations in one batch.

        ``negations`` holds ``(length, negated_constraint)`` pairs; query
        *j* is the conjunction ``prefix[:length_j] + [negated_j]`` —
        exactly what :meth:`solve` would receive per branch of a negation
        sweep.  ``keys``/``semantic_keys`` (optional, per query) are the
        engine's incrementally derived digests.

        Results, stats, cache traffic and RNG consumption are identical
        to calling :meth:`solve` per query in order.  The win is in the
        propagate stage: the first narrowing pass over the shared prefix
        is computed once and forked per sibling — sound because a
        sequential round's narrowing of prefix constraint *k* sees only
        the writes of constraints ``0..k-1``, never the trailing
        negation, so the round-1 prefix boxes are negation-independent.
        Later rounds run per sibling (the negation's narrowing can feed
        back into the prefix) but hit the per-node interval memos.
        """
        stats = self.stats
        hint_map = dict(hint or {})

        # Shared constant screening over the prefix: the first position
        # folded to false (everything at or past it is UNSAT), and the
        # running count of live (non-Const) prefix constraints.
        kept: List[Expr] = []
        kept_counts: List[int] = [0]
        false_at: Optional[int] = None
        for position, constraint in enumerate(prefix):
            if false_at is None and isinstance(constraint, Const):
                if not constraint.value:
                    false_at = position
            elif false_at is None:
                kept.append(constraint)
            kept_counts.append(len(kept))

        # Shared round-1 narrowing: boxes[k] is the box after one
        # sequential pass over kept[:k], grown lazily; changed_flags[k]
        # records whether narrowing kept[k] moved anything.
        boxes: List[Dict[str, Interval]] = [dict(domains)]
        changed_flags: List[bool] = []
        shared_state = {"none_at": None}

        def extend_shared(upto: int) -> None:
            while len(changed_flags) < upto and shared_state["none_at"] is None:
                position = len(changed_flags)
                box = dict(boxes[position])
                result = narrow(kept[position], box)
                if result is None:
                    shared_state["none_at"] = position
                    return
                boxes.append(box)
                changed_flags.append(bool(result))

        def forked_solve(
            length: int, negation: Expr, rng: Optional[random.Random]
        ) -> Optional[Assignment]:
            mark = time.perf_counter()

            # 1. Constant screening (shared prefix screen + the negation).
            if false_at is not None and false_at < length:
                stats.unsat_proved += 1
                stats.screen_time += time.perf_counter() - mark
                return None
            live_count = kept_counts[length]
            live = kept[:live_count]
            if isinstance(negation, Const):
                if not negation.value:
                    stats.unsat_proved += 1
                    stats.screen_time += time.perf_counter() - mark
                    return None
                trailing: Optional[Expr] = None
            else:
                trailing = negation
                live = live + [negation]
            if not live:
                stats.sat += 1
                stats.hint_hits += 1
                stats.screen_time += time.perf_counter() - mark
                return self._clip(hint_map, domains)
            now = time.perf_counter()
            stats.screen_time += now - mark
            mark = now

            # 2. Propagation, forked from the shared round-1 prefix box.
            extend_shared(live_count)
            none_at = shared_state["none_at"]
            if none_at is not None and none_at < live_count:
                stats.propagate_time += time.perf_counter() - mark
                stats.unsat_proved += 1
                return None
            narrowed = dict(boxes[live_count])
            changed = any(changed_flags[:live_count])
            if trailing is not None:
                result = narrow(trailing, narrowed)
                if result is None:
                    stats.propagate_time += time.perf_counter() - mark
                    stats.unsat_proved += 1
                    return None
                changed = changed or bool(result)
            if changed:
                # Rounds 2..16, mirroring propagate()'s fixpoint loop.
                unsat = False
                for _ in range(15):
                    round_changed = False
                    for constraint in live:
                        result = narrow(constraint, narrowed)
                        if result is None:
                            unsat = True
                            break
                        round_changed = round_changed or bool(result)
                    if unsat or not round_changed:
                        break
                if unsat:
                    stats.propagate_time += time.perf_counter() - mark
                    stats.unsat_proved += 1
                    return None
            stats.propagate_time += time.perf_counter() - mark
            return self._search_stages(live, narrowed, hint_map, rng)

        results: List[Optional[Assignment]] = []
        for index, (length, negation) in enumerate(negations):
            if not 0 <= length <= len(prefix):
                raise ValueError(
                    f"negation {index}: prefix length {length} out of range"
                )
            materialized: List[Optional[List[Expr]]] = [None]

            def constraints_fn(
                length=length, negation=negation, memo=materialized
            ) -> List[Expr]:
                if memo[0] is None:
                    memo[0] = list(prefix[:length]) + [negation]
                return memo[0]

            results.append(
                self._run_query(
                    constraints_fn,
                    domains,
                    hint_map,
                    keys[index] if keys is not None else None,
                    semantic_keys[index] if semantic_keys is not None else None,
                    lambda rng, length=length, negation=negation: forked_solve(
                        length, negation, rng
                    ),
                )
            )
        return results

    def _solve(
        self,
        constraints: List[Expr],
        domains: Dict[str, Interval],
        hint: Assignment,
        rng: Optional[random.Random] = None,
    ) -> Optional[Assignment]:
        stats = self.stats
        mark = time.perf_counter()

        # 1. Constant screening.
        live: List[Expr] = []
        for constraint in constraints:
            if isinstance(constraint, Const):
                if constraint.value:
                    continue
                stats.unsat_proved += 1
                stats.screen_time += time.perf_counter() - mark
                return None
            live.append(constraint)
        if not live:
            stats.sat += 1
            stats.hint_hits += 1
            stats.screen_time += time.perf_counter() - mark
            return self._clip(hint, domains)
        now = time.perf_counter()
        stats.screen_time += now - mark
        mark = now

        # 2. Interval propagation (may prove UNSAT, always narrows).
        narrowed = propagate(live, domains)
        now = time.perf_counter()
        stats.propagate_time += now - mark
        if narrowed is None:
            stats.unsat_proved += 1
            return None

        return self._search_stages(live, narrowed, hint, rng)

    def _search_stages(
        self,
        live: List[Expr],
        narrowed: Dict[str, Interval],
        hint: Assignment,
        rng: Optional[random.Random],
    ) -> Optional[Assignment]:
        """Pipeline stages 3-6 (hint, linear, enumeration, local search).

        Shared verbatim by :meth:`_solve` and the batched sibling path in
        :meth:`solve_batch`, so the two entry points cannot drift.
        """
        stats = self.stats
        mark = time.perf_counter()

        # 3. The clipped hint may already be a model.
        env = self._clip(hint, narrowed)
        satisfied = search.satisfies(live, env)
        now = time.perf_counter()
        stats.hint_time += now - mark
        mark = now
        if satisfied:
            stats.sat += 1
            stats.hint_hits += 1
            return env

        # 4. Linear inversion, repairing one variable of one failing atom.
        repaired = self._linear_repair(live, narrowed, env)
        now = time.perf_counter()
        stats.linear_time += now - mark
        mark = now
        if repaired is not None:
            stats.sat += 1
            stats.linear_hits += 1
            return repaired

        # 5. Bounded exhaustive enumeration of one small variable.
        enumerated = self._enumerate(live, narrowed, env)
        now = time.perf_counter()
        stats.enum_time += now - mark
        mark = now
        if enumerated is not None:
            stats.sat += 1
            stats.enumeration_hits += 1
            return enumerated

        # 6. Guided local search.
        found = search.local_search(
            live, narrowed, env, rng if rng is not None else self.rng,
            max_iters=self.max_search_iters,
        )
        stats.search_time += time.perf_counter() - mark
        if found is not None:
            stats.sat += 1
            stats.search_hits += 1
            return found

        stats.unknown += 1
        return None

    @staticmethod
    def _clip(hint: Assignment, domains: Dict[str, Interval]) -> Assignment:
        """Project the hint into the domain boxes (missing vars -> lo)."""
        env: Assignment = {}
        for name, (lo, hi) in domains.items():
            value = hint.get(name, lo)
            env[name] = min(max(value, lo), hi)
        return env

    def _linear_repair(
        self,
        constraints: List[Expr],
        domains: Dict[str, Interval],
        env: Assignment,
    ) -> Optional[Assignment]:
        """Fix failing constraints by solving atoms one variable at a time.

        Iterates a few rounds because repairing one constraint can break
        another; each accepted repair strictly reduces total penalty, so
        the loop terminates.
        """
        current = dict(env)
        penalty = search.total_penalty(constraints, current)
        for _ in range(8):
            if penalty == 0:
                return current
            progressed = False
            for constraint in constraints:
                if search.branch_distance(constraint, current) == 0:
                    continue
                for atom in _atoms(constraint):
                    for var in sorted(atom.variables()):
                        if var not in domains:
                            continue
                        value = solve_atom(atom, var, current, domains[var], current[var])
                        if value is None:
                            continue
                        trial = dict(current)
                        trial[var] = value
                        trial_penalty = search.total_penalty(constraints, trial)
                        if trial_penalty < penalty:
                            current, penalty = trial, trial_penalty
                            progressed = True
                            break
                    if progressed:
                        break
                if progressed:
                    break
            if not progressed:
                return current if penalty == 0 else None
        return current if penalty == 0 else None

    def _enumerate(
        self,
        constraints: List[Expr],
        domains: Dict[str, Interval],
        env: Assignment,
    ) -> Optional[Assignment]:
        failing_vars: List[str] = []
        for constraint in constraints:
            if search.branch_distance(constraint, env) > 0:
                failing_vars.extend(sorted(constraint.variables()))
        seen = set()
        for var in failing_vars:
            if var in seen or var not in domains:
                continue
            seen.add(var)
            value = search.enumerate_variable(
                constraints, env, var, domains[var], limit=self.enum_limit
            )
            if value is not None:
                model = dict(env)
                model[var] = value
                return model
        return None


def _atoms(constraint: Expr) -> List[Expr]:
    """Decompose nested conjunctions/disjunctions into comparison atoms.

    For a disjunction, each disjunct is an independent repair opportunity;
    for a conjunction, all conjuncts are (the repair loop re-checks the
    full constraint after every candidate fix, so over-approximating the
    atom list is safe).
    """
    if isinstance(constraint, BinOp) and constraint.op in ("land", "lor"):
        return _atoms(constraint.left) + _atoms(constraint.right)
    if isinstance(constraint, UnaryOp) and constraint.op == "lnot":
        from repro.concolic.expr import negate

        return _atoms(negate(constraint.operand))
    return [constraint]
