"""Path conditions: the per-execution record of symbolic branches.

A run of the program under test produces an ordered list of
:class:`Branch` records — one per branch whose condition involved symbolic
input, in execution order.  The exploration loop (paper section 2.3) works
on these records: to force execution down the other side of branch *i*, it
asserts branches ``0..i-1`` as taken and the negation of branch *i*, and
asks the solver for an input satisfying the conjunction.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.concolic.expr import Expr, negate
from repro.concolic.tracer import BranchSite


@dataclass(frozen=True)
class Branch:
    """One symbolic branch taken during an execution.

    ``constraint`` is the branch condition as recorded; the constraint that
    actually held during the run is ``constraint`` if ``taken`` else its
    negation (:meth:`held_constraint`).  Concretization records (a symbolic
    value forced concrete by an index/int context) appear as branches with
    ``is_concretization=True``; they participate in the path condition but
    are not negation targets by default.
    """

    index: int
    site: BranchSite
    constraint: Expr
    taken: bool
    is_concretization: bool = False

    def held_constraint(self) -> Expr:
        """The constraint form that was true during the execution.

        Memoized: the negation sweep asks for every prefix branch's held
        form once per later branch, and hash-consed construction — while
        cheap — is not free.  (Assigning through ``__dict__`` sidesteps
        the frozen-dataclass ``__setattr__`` guard; the memo is derived
        state, not a mutation.)
        """
        cached = self.__dict__.get("_held")
        if cached is None:
            cached = self.constraint if self.taken else negate(self.constraint)
            self.__dict__["_held"] = cached
        return cached

    def negated_constraint(self) -> Expr:
        """The constraint forcing the other side of this branch."""
        cached = self.__dict__.get("_negated")
        if cached is None:
            cached = negate(self.constraint) if self.taken else self.constraint
            self.__dict__["_negated"] = cached
        return cached

    @property
    def outcome_key(self) -> Tuple[BranchSite, bool]:
        """(site, taken) pair used for coverage accounting."""
        return (self.site, self.taken)


@dataclass
class PathCondition:
    """The ordered branch records of one execution.

    Alongside the records themselves, the path maintains *rolling
    per-prefix digests*: ``_prefix_states[i]`` is a reusable blake2b
    state over the canonical renderings of the held constraints
    ``0..i-1``.  Negating branch *i* keys the solver query
    ``held(0..i-1) ∧ ¬branch(i)`` — with the prefix state cached, that
    key costs O(|branch i|) instead of re-rendering the whole
    conjunction, turning a session's key bill from O(n²) to O(n)
    (:meth:`negation_key`).  States are built lazily so paths that never
    reach a caching solver pay nothing.
    """

    branches: List[Branch] = field(default_factory=list)
    #: Lazily grown: entry i is the hash state over held constraints 0..i-1.
    _prefix_states: List = field(
        default_factory=list, init=False, repr=False, compare=False
    )
    #: Lazily grown: entry i is the hash state over (site, taken) 0..i-1.
    _sig_states: List = field(
        default_factory=list, init=False, repr=False, compare=False
    )
    #: (digest, length) memo for :meth:`signature` — the explorer and the
    #: coverage tracker both ask for it per execution.
    _sig_digest: Optional[Tuple[bytes, int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __getstate__(self) -> dict:
        # hashlib states are neither picklable nor needed across a
        # process boundary (the receiver rebuilds them lazily).
        state = self.__dict__.copy()
        state["_prefix_states"] = []
        state["_sig_states"] = []
        state["_sig_digest"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("_prefix_states", [])
        self.__dict__.setdefault("_sig_states", [])
        self.__dict__.setdefault("_sig_digest", None)

    def __len__(self) -> int:
        return len(self.branches)

    def __iter__(self) -> Iterator[Branch]:
        return iter(self.branches)

    def __getitem__(self, index: int) -> Branch:
        return self.branches[index]

    def append(
        self,
        site: BranchSite,
        constraint: Expr,
        taken: bool,
        is_concretization: bool = False,
    ) -> Branch:
        branch = Branch(len(self.branches), site, constraint, taken, is_concretization)
        self.branches.append(branch)
        return branch

    def _sig_state(self, length: int):
        """Rolling hash state over the (site, taken) records ``0..length-1``.

        Same incremental discipline as :meth:`_prefix_state`: the
        negation sweep needs a prefix signature per branch, which naively
        re-hashes O(n²) records per session.
        """
        states = self._sig_states
        if not states:
            states.append(hashlib.blake2b(digest_size=16))
        while len(states) <= length:
            branch = self.branches[len(states) - 1]
            grown = states[-1].copy()
            grown.update(branch.site.file.encode())
            grown.update(branch.site.line.to_bytes(4, "big"))
            grown.update(b"\x01" if branch.taken else b"\x00")
            states.append(grown)
        return states[length]

    def signature(self) -> bytes:
        """A digest identifying the path by its (site, taken) sequence.

        Two executions with the same signature took the same side of the
        same branches in the same order; the explorer uses this to avoid
        re-exploring paths it has already seen.  Memoized per length: the
        explorer and the coverage tracker both call it per execution.
        """
        length = len(self.branches)
        memo = self._sig_digest
        if memo is not None and memo[1] == length:
            return memo[0]
        digest = self._sig_state(length).digest()
        self._sig_digest = (digest, length)
        return digest

    def prefix_signature(self, length: int, flip_last: bool = False) -> bytes:
        """Signature of the first ``length`` branches.

        With ``flip_last`` the final branch's direction is inverted — the
        signature of the path a successful negation of branch
        ``length - 1`` would begin with.  Used to deduplicate negation
        attempts (the paper's aggregate constraint set).  Served from the
        rolling signature states, so each call folds at most one record.
        """
        length = min(length, len(self.branches))
        if not flip_last or length == 0:
            return self._sig_state(length).digest()
        branch = self.branches[length - 1]
        digest = self._sig_state(length - 1).copy()
        digest.update(branch.site.file.encode())
        digest.update(branch.site.line.to_bytes(4, "big"))
        # The flipped direction: the path a successful negation begins with.
        digest.update(b"\x00" if branch.taken else b"\x01")
        return digest.digest()

    def _prefix_state(self, length: int):
        """The rolling hash state over held constraints ``0..length-1``.

        Built incrementally and cached per prefix; each extension folds
        exactly one constraint's (node-cached) canonical rendering, so
        maintaining all n prefixes over a run costs O(total rendering)
        once instead of O(n²) re-rendering per negation sweep.
        """
        states = self._prefix_states
        if not states:
            states.append(hashlib.blake2b(digest_size=16))
        if length >= len(states):
            if length > len(self.branches):
                raise IndexError(f"prefix length {length} out of range")
            while len(states) <= length:
                grown = states[-1].copy()
                grown.update(
                    self.branches[len(states) - 1].held_constraint().canonical_bytes()
                )
                grown.update(b"\x00")
                states.append(grown)
        return states[length]

    def negation_key(self, index: int, tail: bytes) -> bytes:
        """The solver-cache key for negating branch ``index``, in O(1).

        ``tail`` is the domains+hint suffix from
        :func:`repro.concolic.solver.cache.query_key_tail` (constant
        across one execution's negation sweep).  The result is
        byte-identical to ``canonical_query_key(constraints_to_negate(
        index), domains, hint)`` — the engine uses this fast path, every
        other caller keeps the from-scratch function, and both address
        the same cache entries.
        """
        if not 0 <= index < len(self.branches):
            raise IndexError(f"branch index {index} out of range")
        digest = self._prefix_state(index).copy()
        digest.update(self.branches[index].negated_constraint().canonical_bytes())
        digest.update(b"\x00")
        digest.update(tail)
        return digest.digest()

    def semantic_negation_key(self, index: int) -> bytes:
        """The constraints-only digest for negating branch ``index``, O(1).

        Byte-identical to
        :func:`repro.concolic.solver.cache.semantic_query_key` over
        :meth:`constraints_to_negate` — it is :meth:`negation_key` with
        an empty tail, served from the same rolling prefix states.  The
        engine hands it to the solver's semantic (subsumption) cache
        probe.
        """
        return self.negation_key(index, b"")

    def constraints_to_negate(self, index: int) -> List[Expr]:
        """The solver query for forcing the other side of branch ``index``.

        Returns the held constraints of branches ``0..index-1`` followed by
        the negated constraint of branch ``index`` — the conjunction whose
        model is the next input to try (Figure 1 of the paper).
        """
        if not 0 <= index < len(self.branches):
            raise IndexError(f"branch index {index} out of range")
        constraints = [b.held_constraint() for b in self.branches[:index]]
        constraints.append(self.branches[index].negated_constraint())
        return constraints

    def held_constraints(self) -> List[Expr]:
        """All constraints that held during this execution."""
        return [branch.held_constraint() for branch in self.branches]

    def negation_targets(
        self, include_concretizations: bool = False
    ) -> Iterator[Branch]:
        """Branches eligible for negation, in execution order."""
        for branch in self.branches:
            if branch.is_concretization and not include_concretizations:
                continue
            yield branch

    def sites(self) -> Sequence[BranchSite]:
        return [branch.site for branch in self.branches]


@dataclass
class ExecutionResult:
    """Everything one concolic run of the program produced."""

    assignment: dict
    path: PathCondition
    value: object = None
    exception: Optional[BaseException] = None
    duration: float = 0.0

    @property
    def crashed(self) -> bool:
        """True if the program under test raised instead of returning."""
        return self.exception is not None

    def signature(self) -> bytes:
        return self.path.signature()
