"""Tests for the fault checkers and the origin baseline."""

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.messages import NotificationMessage, UpdateMessage
from repro.bgp.nlri import NlriEntry
from repro.checkpoint.snapshot import Checkpoint
from repro.concolic.env import CapturedMessage
from repro.core.checkers import (
    CrashChecker,
    ExecutionContext,
    HijackChecker,
    InvariantChecker,
    OriginBaseline,
    SessionResetChecker,
    default_checkers,
)
from repro.core.isolation import InterceptedTraffic, restore_isolated
from repro.core.report import FindingKind, Severity
from repro.util.errors import WireFormatError
from repro.util.ip import Prefix, ip_to_int

P = Prefix.parse


def exploratory_update(prefix, asns=(65020,)):
    return UpdateMessage(
        attributes=PathAttributes(
            as_path=AsPath.sequence(list(asns)), next_hop=ip_to_int("10.0.0.2")
        ),
        nlri=[NlriEntry.from_prefix(P(prefix))],
    )


def run_on_clone(scenario, prefix, asns=(65020,)):
    """Checkpoint the provider, run an exploratory update on a clone."""
    checkpoint = Checkpoint.capture(scenario.provider, f"chk-{prefix}")
    clone, env = restore_isolated(checkpoint)
    update = exploratory_update(prefix, asns)
    exception = None
    try:
        clone.handle_update("customer", update)
    except Exception as exc:  # pragma: no cover - defensive
        exception = exc
    baseline = OriginBaseline.from_router(scenario.provider)
    return ExecutionContext(
        peer="customer",
        assignment={"nlri_network": P(prefix).network, "nlri_masklen": P(prefix).length},
        baseline=baseline,
        update=update,
        clone=clone,
        traffic=InterceptedTraffic(env.drain_captured()),
        exception=exception,
    )


class TestOriginBaseline:
    def test_from_router_contains_table(self, correct_scenario):
        baseline = OriginBaseline.from_router(correct_scenario.provider)
        assert baseline.size == correct_scenario.provider.table_size()

    def test_exact_lookup(self, correct_scenario):
        baseline = OriginBaseline.from_router(correct_scenario.provider)
        # The customer's own announcement has the customer's origin.
        found = baseline.origin_for(P("10.10.1.0/24"))
        assert found is not None
        assert found[1] == 65020

    def test_covering_lookup_for_subprefix_hijack(self, correct_scenario):
        baseline = OriginBaseline.from_router(correct_scenario.provider)
        # Pick any installed internet prefix and ask about a more-specific.
        prefix, origin = next(iter(baseline.items()))
        if prefix.length < 32:
            child = prefix.subnets()[0]
            found = baseline.origin_for(child)
            assert found is not None
            assert found[0] == prefix and found[1] == origin

    def test_local_networks_map_to_own_asn(self, correct_scenario):
        baseline = OriginBaseline.from_router(correct_scenario.provider)
        found = baseline.origin_for(P("203.0.113.0/24"))
        assert found[1] == 65010

    def test_unknown_prefix(self):
        baseline = OriginBaseline(local_asn=1)
        assert baseline.origin_for(P("1.0.0.0/8")) is None


class TestHijackChecker:
    def test_foreign_prefix_accepted_is_hijack(self, missing_scenario):
        baseline = OriginBaseline.from_router(missing_scenario.provider)
        victim_prefix, victim_origin = next(
            (p, o) for p, o in baseline.items() if o not in (65010, 65020)
        )
        ctx = run_on_clone(missing_scenario, str(victim_prefix))
        findings = HijackChecker().check(ctx)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.kind == FindingKind.PREFIX_HIJACK
        assert finding.severity == Severity.CRITICAL
        assert finding.prefix == victim_prefix
        assert finding.expected_origin == victim_origin
        assert finding.observed_origin == 65020
        assert "can leak" in finding.describe()

    def test_rejected_announcement_is_not_hijack(self, correct_scenario):
        baseline = OriginBaseline.from_router(correct_scenario.provider)
        victim = next(p for p, o in baseline.items() if o not in (65010, 65020))
        ctx = run_on_clone(correct_scenario, str(victim))
        assert HijackChecker().check(ctx) == []

    def test_own_prefix_reannouncement_not_hijack(self, missing_scenario):
        ctx = run_on_clone(missing_scenario, "10.10.1.0/24")
        assert HijackChecker().check(ctx) == []

    def test_subprefix_hijack_detected(self, missing_scenario):
        baseline = OriginBaseline.from_router(missing_scenario.provider)
        parent = next(
            p for p, o in baseline.items()
            if o not in (65010, 65020) and p.length <= 23
        )
        child = parent.subnets()[0]
        ctx = run_on_clone(missing_scenario, str(child))
        findings = HijackChecker().check(ctx)
        assert len(findings) == 1
        assert "more specific" in findings[0].summary

    def test_anycast_whitelist_suppresses(self, missing_scenario):
        baseline = OriginBaseline.from_router(missing_scenario.provider)
        victim = next(p for p, o in baseline.items() if o not in (65010, 65020))
        ctx = run_on_clone(missing_scenario, str(victim))
        checker = HijackChecker(anycast_whitelist=[victim])
        assert checker.check(ctx) == []
        # The whitelist also covers more-specifics of the listed prefix.
        if victim.length < 32:
            child_ctx = run_on_clone(missing_scenario, str(victim.subnets()[0]))
            assert checker.check(child_ctx) == []

    def test_missing_update_or_clone(self):
        ctx = ExecutionContext(
            peer="p", assignment={}, baseline=OriginBaseline(1)
        )
        assert HijackChecker().check(ctx) == []


class TestCrashChecker:
    def make_ctx(self, exception):
        return ExecutionContext(
            peer="p", assignment={"x": 1}, baseline=OriginBaseline(1),
            exception=exception,
        )

    def test_real_crash_flagged(self):
        findings = CrashChecker().check(self.make_ctx(ZeroDivisionError("div")))
        assert len(findings) == 1
        assert findings[0].kind == FindingKind.HANDLER_CRASH
        assert "ZeroDivisionError" in findings[0].summary

    def test_wire_errors_not_crashes(self):
        assert CrashChecker().check(self.make_ctx(WireFormatError("bad"))) == []

    def test_no_exception(self):
        assert CrashChecker().check(self.make_ctx(None)) == []

    def test_path_budget_not_crash(self):
        from repro.concolic.engine import PathBudgetExceeded

        assert CrashChecker().check(self.make_ctx(PathBudgetExceeded("deep"))) == []


class TestSessionResetChecker:
    def test_notification_in_traffic_flagged(self):
        notification = NotificationMessage(code=5, subcode=0)
        traffic = InterceptedTraffic(
            [CapturedMessage("customer", notification.encode(), 0.0)]
        )
        ctx = ExecutionContext(
            peer="customer", assignment={}, baseline=OriginBaseline(1),
            traffic=traffic,
        )
        findings = SessionResetChecker().check(ctx)
        assert len(findings) == 1
        assert findings[0].kind == FindingKind.SESSION_RESET
        assert "code=5" in findings[0].summary

    def test_updates_in_traffic_ignored(self, missing_scenario):
        ctx = run_on_clone(missing_scenario, "10.10.1.0/24")
        assert SessionResetChecker().check(ctx) == []


class TestInvariantChecker:
    def test_violation_reported(self, correct_scenario):
        ctx = run_on_clone(correct_scenario, "10.10.1.0/24")
        checker = InvariantChecker(
            lambda router: "table too big" if router.table_size() > 0 else None,
            name="table-bound",
        )
        findings = checker.check(ctx)
        assert len(findings) == 1
        assert findings[0].kind == FindingKind.INVARIANT_VIOLATION
        assert "table-bound" in findings[0].summary

    def test_holding_invariant_silent(self, correct_scenario):
        ctx = run_on_clone(correct_scenario, "10.10.1.0/24")
        checker = InvariantChecker(lambda router: None)
        assert checker.check(ctx) == []

    def test_no_clone_skips(self):
        checker = InvariantChecker(lambda router: "x")
        ctx = ExecutionContext(peer="p", assignment={}, baseline=OriginBaseline(1))
        assert checker.check(ctx) == []


class TestDefaultSuite:
    def test_contains_expected_checkers(self):
        names = {type(c).__name__ for c in default_checkers()}
        assert names == {
            "HijackChecker", "LeakRegionChecker", "CrashChecker",
            "SessionResetChecker",
        }
