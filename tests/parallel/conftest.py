"""Fixtures for the parallel exploration tests.

Scenario construction dominates test time, so converged scenarios are
module-scoped; exploration via checkpoints never mutates the live
routers, so sharing is safe.
"""

import pytest

from repro.core import get_scenario


@pytest.fixture(scope="module")
def erroneous_scenario():
    scenario = get_scenario("fig2").build(
        filter_mode="erroneous", prefix_count=300, update_count=40
    )
    scenario.converge()
    return scenario


@pytest.fixture
def mutable_scenario():
    """A private (function-scoped) scenario for tests that mutate the
    live router — epoch-boundary tests feed it fresh updates between
    checkpoints, which would poison the shared module-scoped fixture."""
    scenario = get_scenario("fig2").build(
        filter_mode="erroneous", prefix_count=200, update_count=20
    )
    scenario.converge()
    return scenario
