"""Tests for the scenario registry, federated exploration, and parse cache."""

import pytest

from repro.bgp.config import (
    clear_parse_cache,
    parse_cache_info,
    parse_config_cached,
)
from repro.concolic import ExplorationBudget
from repro.core import (
    BuiltScenario,
    Scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
    synthesize_hijack_corpus,
)
from repro.core.scenario import provider_config
from repro.util.errors import ConfigError

SMALL_BUDGET = ExplorationBudget(max_executions=6)


def corpus_signature(corpus):
    return [
        (node, peer, tuple(e.to_prefix() for e in update.nlri))
        for node, peer, update in corpus
    ]


@pytest.fixture(scope="module")
def tiered_built():
    built = get_scenario("tiered-8").build(seed=42)
    built.converge()
    return built


class TestRegistry:
    def test_expected_scenarios_registered(self):
        names = {scenario.name for scenario in list_scenarios()}
        assert {"fig1", "fig2", "clique-4", "tiered-8", "routeviews-3"} <= names

    def test_unknown_scenario_raises_with_listing(self):
        with pytest.raises(ConfigError, match="tiered-8"):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        existing = get_scenario("fig1")
        with pytest.raises(ConfigError):
            register_scenario(existing)
        # replace=True is the explicit override path.
        register_scenario(existing, replace=True)

    def test_shapes_are_cheap_and_sized(self):
        assert get_scenario("tiered-8").shape()["nodes"] == 8
        assert get_scenario("clique-4").shape() == {
            "nodes": 4, "edges": 6, "transit_edges": 0, "peer_edges": 6,
        }
        assert get_scenario("fig2").shape()["nodes"] == 3

    def test_fig2_scenario_builds_through_registry(self):
        built = get_scenario("fig2").build(seed=7, prefix_count=120, update_count=10)
        built.converge()
        assert built.provider_table_size > 100
        assert built.seed_corpus()  # observed customer announcements
        assert built.check_invariants() == []


class TestGeneratedScenarios:
    def test_build_converge_and_invariants(self, tiered_built):
        assert len(tiered_built.routers) == 8
        assert tiered_built.check_invariants() == []
        assert tiered_built.construction_seconds > 0

    def test_corpus_is_deterministic_in_the_seed(self, tiered_built):
        again = get_scenario("tiered-8").build(seed=42)
        assert corpus_signature(tiered_built.seed_corpus()) == corpus_signature(
            again.seed_corpus()
        )
        other = get_scenario("tiered-8").build(seed=43)
        assert corpus_signature(other.seed_corpus()) != corpus_signature(
            tiered_built.seed_corpus()
        )

    def test_corpus_targets_every_connected_as(self, tiered_built):
        nodes = {node for node, _, _ in tiered_built.seed_corpus()}
        assert nodes == set(tiered_built.routers)

    def test_hijack_corpus_announces_installed_prefixes(self, tiered_built):
        graph = tiered_built.graph
        for node, peer, update in tiered_built.seed_corpus():
            prefix = update.nlri[0].to_prefix()
            owner = graph.origin_of(prefix)
            assert owner is not None and owner not in (node, peer)
            # The claimed origin is the injecting neighbor, not the owner.
            assert int(update.attributes.as_path.origin_as()) == graph.nodes[peer].asn

    def test_routeviews_corpus_comes_from_the_trace(self):
        built = get_scenario("routeviews-3").build(seed=11)
        corpus = built.seed_corpus()
        assert corpus
        # Injection happens at a relay-capable node (>= 2 neighbors),
        # from one of its customers.
        targets = {node for node, _, _ in corpus}
        assert len(targets) == 1
        target = targets.pop()
        assert len(built.graph.neighbors(target)) >= 2
        assert all(peer in built.graph.customers_of(target) for _, peer, _ in corpus)
        # Trace attributes: realistic paths, not single-hop rogue ones.
        assert any(
            len(update.attributes.as_path.as_list()) > 1 for _, _, update in corpus
        )


class TestFederatedExploration:
    def test_serial_and_streamed_find_the_same_set(self, tiered_built):
        corpus = tiered_built.seed_corpus()
        serial = tiered_built.federation().explore(
            corpus, budget=SMALL_BUDGET, workers=1, force_serial=True
        )
        streamed = tiered_built.federation().explore(
            corpus, budget=SMALL_BUDGET, workers=2, stream=True, force_serial=True
        )
        assert serial.finding_keys() == streamed.finding_keys()
        assert serial.findings()
        assert streamed.streamed and not serial.streamed

    def test_per_as_sessions_cover_the_corpus(self, tiered_built):
        report = tiered_built.federation().explore(
            tiered_built.seed_corpus(), budget=SMALL_BUDGET, force_serial=True
        )
        assert set(report.per_as_sessions) == set(tiered_built.routers)
        assert len(report.sessions) == len(tiered_built.seed_corpus())
        assert report.summary()["ases_explored"] == 8

    def test_wave_detects_cross_as_origin_conflicts(self, tiered_built):
        report = tiered_built.federation().explore(
            tiered_built.seed_corpus(), budget=SMALL_BUDGET, force_serial=True
        )
        assert report.global_findings
        stages = {finding.stage for finding in report.global_findings}
        assert "pre-propagation" in stages

    def test_hop_starved_wave_reports_non_convergence(self, tiered_built):
        report = tiered_built.federation().explore(
            tiered_built.seed_corpus(),
            budget=SMALL_BUDGET, force_serial=True, max_rounds=1,
        )
        assert report.converged is False
        assert report.stats.suppressed_hop_budget > 0
        assert report.summary()["converged"] is False

    def test_live_routers_untouched_by_federated_waves(self, tiered_built):
        sizes = {n: r.table_size() for n, r in tiered_built.routers.items()}
        tiered_built.federation().explore(
            tiered_built.seed_corpus(), budget=SMALL_BUDGET, force_serial=True
        )
        assert {n: r.table_size() for n, r in tiered_built.routers.items()} == sizes
        assert tiered_built.check_invariants() == []

    def test_empty_or_unknown_seeds_rejected(self, tiered_built):
        from repro.util.errors import ExplorationError

        federation = tiered_built.federation()
        with pytest.raises(ExplorationError):
            federation.explore([])
        bad = [("nowhere", "as0", tiered_built.seed_corpus()[0][2])]
        with pytest.raises(ExplorationError, match="nowhere"):
            federation.explore(bad)


class TestParseCache:
    def test_identical_text_parsed_once(self):
        clear_parse_cache()
        text = provider_config("erroneous")
        first = parse_config_cached(text)
        second = parse_config_cached(text)
        info = parse_cache_info()
        assert info["misses"] == 1 and info["hits"] == 1
        # Callers get private instances, never a shared one.
        assert first is not second
        first.networks.append(first.networks[0])
        assert len(second.networks) == 1

    def test_cache_hits_during_scenario_builds(self):
        # The build path layers two caches: the structural template
        # cache absorbs structurally identical nodes, and its misses /
        # ineligible nodes fall through to the content-hash parse
        # cache.  A rebuild must be absorbed one way or the other —
        # one cache hit per AS, zero new parses.
        from repro.topology.graph import (
            clear_structural_cache, structural_cache_info,
        )

        clear_parse_cache()
        clear_structural_cache()
        get_scenario("clique-4").build(seed=1)
        baseline = parse_cache_info()
        structural_baseline = structural_cache_info()
        get_scenario("clique-4").build(seed=1)
        after = parse_cache_info()
        structural_after = structural_cache_info()
        absorbed = (
            (after["hits"] - baseline["hits"])
            + (structural_after["hits"] - structural_baseline["hits"])
        )
        assert absorbed >= 4  # one per AS on rebuild
        assert after["misses"] == baseline["misses"]
        assert structural_after["misses"] == structural_baseline["misses"]

    def test_parse_errors_are_not_cached(self):
        clear_parse_cache()
        with pytest.raises(ConfigError):
            parse_config_cached("router bgp nonsense")
        assert parse_cache_info()["size"] == 0


class TestCli:
    def test_scenarios_listing(self, capsys):
        from repro.cli import main

        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "tiered-8" in out and "8 ASes" in out

    def test_explore_scenario_composes_with_stream_and_workers(self, capsys):
        from repro.cli import main

        code = main([
            "explore", "--scenario", "fig1", "--stream", "--workers", "1",
            "--executions", "4",
        ])
        out = capsys.readouterr().out
        assert code in (0, 2)
        assert "federated exploration (streamed" in out
        assert "converged=" in out
