"""SERVICE — elasticity must be (nearly) free, and strictly isolated.

The streaming pool's service mode (autoscaled workers, event-driven
harvest, multi-tenant dispatch) exists to cut idle cost without giving
back throughput or determinism.  This benchmark keeps all three claims
honest:

* **steady-state throughput** — an autoscaled pool (min 1, max N) under
  sustained backlog must land within **10%** of a fixed N-worker pool's
  executions/sec (best of N interleaved runs); the autoscaled figure is
  recorded in ``baseline_hotpath.json`` as
  ``stream_service_execs_per_sec`` and floor-gated like the other
  hot-path figures;
* **bursty economics** — over a bursty workload (bursts separated by
  idle gaps) the autoscaled pool must spend *fewer worker-seconds* than
  the fixed pool, which keeps every slot alive through the gaps;
* **harvest latency** — the event-driven ``harvest()`` must beat the
  legacy poll-plus-sleep service loop's per-seed round-trip, whose
  fixed sleep is a latency floor on every result;
* **tenant isolation** — two scenarios sharing one autoscaled pool must
  each produce exactly the ``finding_keys()`` they produce running the
  pool alone.

Set ``REPRO_BENCH_SMOKE=1`` for a tiny-budget smoke run (used by CI to
keep this script from rotting without paying the full measurement).
``REPRO_BENCH_WRITE_BASELINE=1`` recalibrates the recorded figure after
an intentional perf change.
"""

import os
import time

import pytest

from baseline_gate import WRITE_BASELINE, gate_floor, write_baseline
from repro.concolic import ExplorationBudget
from repro.core import get_scenario
from repro.parallel import StreamingExplorer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

WORKERS = 2
SEEDS = 8 if SMOKE else 16
ROUNDS = 2 if SMOKE else 3
BUDGET = ExplorationBudget(max_executions=6 if SMOKE else 16)
TENANT_BUDGET = ExplorationBudget(max_executions=4 if SMOKE else 8)

#: The acceptance gate: autoscaled throughput within 10% of fixed-pool.
#: The smoke run is too short to amortize the one-time ramp from
#: ``min_workers`` (a fixed ~tens-of-ms cost against a ~1s run), so it
#: only sanity-checks at a looser bound.
MAX_STEADY_GAP = 0.20 if SMOKE else 0.10


@pytest.fixture(scope="module")
def scenario():
    built = get_scenario("fig2").build(
        filter_mode="erroneous",
        prefix_count=150 if SMOKE else 400,
        update_count=30 if SMOKE else 80,
    )
    built.converge()
    return built


def observed_seeds(scenario, count):
    seeds = scenario.dice.batch_seeds(all_seeds=True)
    assert len(seeds) >= min(count, 4)
    return [seeds[i % len(seeds)] for i in range(count)]


def make_stream(seeds, autoscale, budget=BUDGET, workers=WORKERS):
    return StreamingExplorer(
        workers=workers,
        budget=budget,
        queue_capacity=max(16, len(seeds)),
        restart_backoff=0.01,
        autoscale=autoscale,
        # Fast ticks so elasticity ramps within a benchmark-sized burst;
        # the production default (0.05s) is tuned for long-lived streams.
        autoscale_interval=0.01 if autoscale else 0.05,
    )


def run_steady(scenario, seeds, autoscale):
    stream = make_stream(seeds, autoscale)
    stream.start(scenario.provider)
    for peer, observed in seeds:
        stream.submit(peer, observed)
    return stream.close()


def _rate(report):
    return report.total_executions / max(report.wall_seconds, 1e-9)


def finding_keys(report):
    return frozenset(f.dedup_key() for f in report.findings())


@pytest.mark.benchmark(group="service")
def test_autoscaled_steady_throughput_within_ten_percent(
    paper_rows, scenario
):
    """The acceptance gate: ramping from min_workers costs < 10%."""
    seeds = observed_seeds(scenario, SEEDS)
    probe = run_steady(scenario, seeds, autoscale=False)
    if not probe.used_processes:
        pytest.skip("no process workers on this host")
    # Interleave the two configurations so machine drift (thermal, page
    # cache) hits both equally; best-of-N discards scheduling noise.
    # The probe only detects fallback — keeping it out of the fixed
    # best-of keeps the sample counts equal.
    fixed = []
    elastic_reports = []
    for _ in range(ROUNDS):
        elastic_reports.append(run_steady(scenario, seeds, autoscale=True))
        fixed.append(_rate(run_steady(scenario, seeds, autoscale=False)))
    elastic_best = max(elastic_reports, key=_rate)
    auto_rate, fixed_rate = _rate(elastic_best), max(fixed)
    # Under sustained backlog the pool must actually have scaled up.
    assert elastic_best.pool_high_water == WORKERS, (
        elastic_best.resize_events
    )
    gap = 1.0 - auto_rate / fixed_rate
    paper_rows.add(
        "service",
        "autoscaled-pool steady throughput gap",
        f"< {MAX_STEADY_GAP:.0%}",
        f"{gap:.1%} ({auto_rate:.1f} vs {fixed_rate:.1f} exec/s)",
        note=f"best of {ROUNDS} interleaved runs",
    )
    assert auto_rate >= fixed_rate * (1.0 - MAX_STEADY_GAP), (
        f"autoscale steady-state gap {gap:.1%} exceeds {MAX_STEADY_GAP:.0%} "
        f"({auto_rate:.1f} vs {fixed_rate:.1f} exec/s)"
    )
    if WRITE_BASELINE:
        write_baseline(stream_service_execs_per_sec=auto_rate)
        return
    floor = gate_floor("stream_service_execs_per_sec")
    assert auto_rate >= floor, (
        f"autoscaled stream throughput {auto_rate:.1f} exec/s fell below "
        f"the baseline floor {floor:.1f}"
    )


@pytest.mark.benchmark(group="service")
def test_autoscaled_bursty_run_spends_fewer_worker_seconds(
    paper_rows, scenario
):
    """Bursts separated by idle gaps: the fixed pool keeps every slot
    alive through the gaps; the elastic pool shrinks and pays less."""
    seeds = observed_seeds(scenario, SEEDS)
    bursts = [seeds[: len(seeds) // 2], seeds[len(seeds) // 2:]]
    gap_seconds = 0.4 if SMOKE else 0.8

    def run_bursty(autoscale):
        stream = make_stream(seeds, autoscale)
        stream.start(scenario.provider)
        for index, burst in enumerate(bursts):
            for peer, observed in burst:
                stream.submit(peer, observed)
            stream.drain()
            if index < len(bursts) - 1:
                # Idle gap: keep harvesting so the coordinator (and its
                # autoscale ticks) stay live, as a service loop would.
                gap_deadline = time.monotonic() + gap_seconds
                while time.monotonic() < gap_deadline:
                    stream.harvest(timeout=0.05)
        return stream.close()

    fixed = run_bursty(autoscale=False)
    if not fixed.used_processes:
        pytest.skip("no process workers on this host")
    elastic = run_bursty(autoscale=True)
    assert elastic.jobs_completed == fixed.jobs_completed == len(seeds)
    assert finding_keys(elastic) == finding_keys(fixed)
    saved = 1.0 - elastic.worker_seconds / max(fixed.worker_seconds, 1e-9)
    paper_rows.add(
        "service",
        "bursty worker-seconds saved by autoscale",
        "> 0%",
        f"{saved:.1%} ({elastic.worker_seconds:.2f}s vs "
        f"{fixed.worker_seconds:.2f}s; "
        f"retired {elastic.workers_retired})",
        note=f"{len(bursts)} bursts, {gap_seconds}s idle gap",
    )
    assert elastic.worker_seconds < fixed.worker_seconds, (
        f"elastic pool spent {elastic.worker_seconds:.2f} worker-seconds, "
        f"fixed pool {fixed.worker_seconds:.2f} — elasticity saved nothing"
    )


@pytest.mark.benchmark(group="service")
def test_event_harvest_beats_the_poll_sleep_floor(paper_rows, scenario):
    """Per-seed round-trip: harvest() wakes on the result pipe; the
    legacy poll loop sleeps 50ms between polls, a floor every seed pays."""
    count = 4 if SMOKE else 8
    seeds = observed_seeds(scenario, count + 1)
    fast_budget = ExplorationBudget(max_executions=2)

    def roundtrips(wait):
        stream = make_stream(seeds, autoscale=False, budget=fast_budget,
                             workers=1)
        stream.start(scenario.provider)
        if not stream.report.used_processes:
            stream.close()
            return None, None
        # Warm-up seed: first job pays image rebuild, not measured.
        stream.submit(*seeds[0])
        wait(stream)
        times = []
        for peer, observed in seeds[1:]:
            before = stream.report.jobs_completed
            started = time.perf_counter()
            stream.submit(peer, observed)
            wait(stream, before)
            times.append(time.perf_counter() - started)
        return sum(times) / len(times), stream.close()

    def poll_sleep_wait(stream, before=0):
        while stream.report.jobs_completed <= before:
            stream.poll()
            time.sleep(0.05)

    def event_wait(stream, before=0):
        while stream.report.jobs_completed <= before:
            stream.harvest(timeout=5.0)

    legacy_mean, _ = roundtrips(poll_sleep_wait)
    if legacy_mean is None:
        pytest.skip("no process workers on this host")
    event_mean, event_report = roundtrips(event_wait)
    paper_rows.add(
        "service",
        "event harvest vs poll+sleep round-trip",
        "no 50ms sleep floor",
        f"{event_mean * 1e3:.1f}ms vs {legacy_mean * 1e3:.1f}ms mean",
        note=f"{count} seeds, 1 worker",
    )
    assert event_report.harvest_latency_count > 0
    assert event_report.harvest_latency_mean > 0.0
    assert event_mean < legacy_mean, (
        f"event-driven harvest round-trip {event_mean * 1e3:.1f}ms did not "
        f"beat the poll+sleep loop's {legacy_mean * 1e3:.1f}ms"
    )


@pytest.mark.benchmark(group="service")
def test_two_tenant_service_matches_solo_runs(paper_rows):
    """Isolation: every tenant of the shared autoscaled pool gets the
    finding set it gets running the pool alone."""
    from repro.core.federation import explore_tenants

    builds = {}
    for name in ("line-3", "star-6"):
        built = get_scenario(name).build(seed=11)
        built.converge()
        builds[name] = built
    solo = {
        name: built.federation().explore(
            built.seed_corpus(),
            budget=TENANT_BUDGET,
            workers=WORKERS,
            stream=True,
        )
        for name, built in builds.items()
    }
    reports, summary = explore_tenants(
        {
            name: (built.federation(), built.seed_corpus())
            for name, built in builds.items()
        },
        budget=TENANT_BUDGET,
        workers=WORKERS,
        autoscale=True,
        autoscale_interval=0.01,
    )
    for name in builds:
        assert reports[name].finding_keys() == solo[name].finding_keys(), (
            f"tenant {name} diverged from its solo run"
        )
    assert summary["jobs_by_tenant"] == {
        name: len(built.seed_corpus()) for name, built in builds.items()
    }
    paper_rows.add(
        "service",
        "two-tenant shared pool vs solo finding sets",
        "byte-identical per tenant",
        f"identical ({', '.join(sorted(builds))}; "
        f"jobs {summary['jobs_by_tenant']})",
    )
