"""Tests for the RIBs and the decision process."""

import pytest

from repro.bgp.attributes import (
    AsPath,
    ORIGIN_EGP,
    ORIGIN_IGP,
    ORIGIN_INCOMPLETE,
    PathAttributes,
)
from repro.bgp.decision import best_route, prefer, rank_routes, routes_equal
from repro.bgp.rib import (
    AdjRibIn,
    AdjRibOut,
    ChangeKind,
    LocRib,
    Route,
    RouteSource,
)
from repro.util.ip import Prefix, ip_to_int

P = Prefix.parse


def route(
    prefix="10.0.0.0/8",
    peer="peer1",
    path=(65001,),
    local_pref=None,
    med=None,
    origin=ORIGIN_IGP,
    source=RouteSource.EBGP,
    learned_at=0.0,
):
    return Route(
        prefix=P(prefix),
        attributes=PathAttributes(
            origin=origin,
            as_path=AsPath.sequence(list(path)),
            next_hop=1,
            med=med,
            local_pref=local_pref,
        ),
        peer=peer,
        source=source,
        learned_at=learned_at,
    )


class TestAdjRibIn:
    def test_install_and_replace(self):
        rib = AdjRibIn()
        first = route()
        assert rib.install("p1", first) is None
        second = route(path=(65001, 65002))
        assert rib.install("p1", second) is first
        assert rib.get("p1", P("10.0.0.0/8")) is second

    def test_candidates_across_peers(self):
        rib = AdjRibIn()
        rib.install("p1", route(peer="p1"))
        rib.install("p2", route(peer="p2"))
        rib.install("p2", route(prefix="11.0.0.0/8", peer="p2"))
        assert len(rib.candidates(P("10.0.0.0/8"))) == 2

    def test_withdraw(self):
        rib = AdjRibIn()
        rib.install("p1", route())
        assert rib.withdraw("p1", P("10.0.0.0/8")) is not None
        assert rib.withdraw("p1", P("10.0.0.0/8")) is None
        assert rib.withdraw("ghost", P("10.0.0.0/8")) is None

    def test_drop_peer(self):
        rib = AdjRibIn()
        rib.install("p1", route())
        rib.install("p1", route(prefix="11.0.0.0/8"))
        dropped = rib.drop_peer("p1")
        assert sorted(str(p) for p in dropped) == ["10.0.0.0/8", "11.0.0.0/8"]
        assert rib.route_count() == 0

    def test_len(self):
        rib = AdjRibIn()
        rib.install("p1", route())
        rib.install("p2", route(peer="p2"))
        assert len(rib) == 2


class TestLocRib:
    def test_install_kinds(self):
        rib = LocRib()
        change = rib.install(route())
        assert change.kind == ChangeKind.INSTALL and change.old is None
        change = rib.install(route(path=(65009,)))
        assert change.kind == ChangeKind.REPLACE and change.old is not None

    def test_withdraw(self):
        rib = LocRib()
        rib.install(route())
        change = rib.withdraw(P("10.0.0.0/8"))
        assert change.kind == ChangeKind.WITHDRAW
        assert rib.withdraw(P("10.0.0.0/8")) is None
        assert len(rib) == 0

    def test_longest_match(self):
        rib = LocRib()
        rib.install(route(prefix="10.0.0.0/8"))
        rib.install(route(prefix="10.1.0.0/16", path=(65002,)))
        best = rib.longest_match(ip_to_int("10.1.2.3"))
        assert best.prefix == P("10.1.0.0/16")
        assert rib.longest_match(ip_to_int("11.0.0.0")) is None

    def test_covering_and_covered(self):
        rib = LocRib()
        rib.install(route(prefix="10.0.0.0/8"))
        rib.install(route(prefix="10.1.0.0/16"))
        covering = rib.covering(P("10.1.2.0/24"))
        assert [str(p) for p, _ in covering] == ["10.0.0.0/8", "10.1.0.0/16"]
        covered = rib.covered_by(P("10.0.0.0/8"))
        assert {str(p) for p, _ in covered} == {"10.0.0.0/8", "10.1.0.0/16"}

    def test_origin_of(self):
        rib = LocRib()
        rib.install(route(path=(65001, 65077)))
        assert rib.origin_of(P("10.0.0.0/8")) == 65077
        assert rib.origin_of(P("99.0.0.0/8")) is None

    def test_contains(self):
        rib = LocRib()
        rib.install(route())
        assert P("10.0.0.0/8") in rib
        assert P("11.0.0.0/8") not in rib


class TestAdjRibOut:
    def test_record_and_remove(self):
        rib = AdjRibOut()
        rib.record("p1", route())
        assert rib.advertised("p1", P("10.0.0.0/8")) is not None
        assert rib.remove("p1", P("10.0.0.0/8")) is not None
        assert rib.remove("p1", P("10.0.0.0/8")) is None

    def test_drop_peer(self):
        rib = AdjRibOut()
        rib.record("p1", route())
        rib.drop_peer("p1")
        assert rib.route_count() == 0


class TestDecisionProcess:
    def test_local_pref_wins(self):
        low = route(peer="a", local_pref=100, path=(1, 2, 3))
        high = route(peer="b", local_pref=200, path=(1, 2, 3, 4, 5))
        assert prefer(low, high) is high

    def test_default_local_pref_is_100(self):
        explicit = route(peer="a", local_pref=99)
        default = route(peer="b")  # None -> 100
        assert prefer(explicit, default) is default

    def test_shorter_path_wins(self):
        short = route(peer="a", path=(1, 2))
        long = route(peer="b", path=(1, 2, 3))
        assert prefer(long, short) is short

    def test_origin_code_wins(self):
        igp = route(peer="a", origin=ORIGIN_IGP)
        egp = route(peer="b", origin=ORIGIN_EGP)
        incomplete = route(peer="c", origin=ORIGIN_INCOMPLETE)
        assert prefer(egp, igp) is igp
        assert prefer(incomplete, egp) is egp

    def test_med_compared_same_neighbor_only(self):
        low_med = route(peer="a", path=(65001, 9), med=10)
        high_med = route(peer="b", path=(65001, 9), med=50)
        assert prefer(high_med, low_med) is low_med
        # Different neighbor AS: MED ignored, falls through to peer id.
        other = route(peer="a", path=(65002, 9), med=99)
        same = route(peer="b", path=(65001, 9), med=1)
        assert prefer(other, same) is other  # tie-break on peer id a < b

    def test_missing_med_treated_as_zero(self):
        no_med = route(peer="a", path=(65001, 9))
        with_med = route(peer="b", path=(65001, 9), med=5)
        assert prefer(with_med, no_med) is no_med

    def test_ebgp_over_ibgp(self):
        ebgp = route(peer="b", source=RouteSource.EBGP)
        ibgp = route(peer="a", source=RouteSource.IBGP)
        assert prefer(ibgp, ebgp) is ebgp

    def test_peer_id_tiebreak(self):
        first = route(peer="alpha")
        second = route(peer="beta")
        assert prefer(second, first) is first

    def test_best_route_empty(self):
        assert best_route([]) is None

    def test_best_route_single(self):
        only = route()
        assert best_route([only]) is only

    def test_rank_routes_orders_strictly(self):
        candidates = [
            route(peer="c", local_pref=50),
            route(peer="a", local_pref=300),
            route(peer="b", local_pref=200),
        ]
        ranked = rank_routes(candidates)
        assert [r.peer for r in ranked] == ["a", "b", "c"]

    def test_routes_equal(self):
        assert routes_equal(route(), route())
        assert not routes_equal(route(), route(path=(9,)))
        assert not routes_equal(route(), None)
        assert routes_equal(None, None)
        assert not routes_equal(route(med=None), route(med=5))
        # Missing MED compares equal to explicit zero.
        assert routes_equal(route(med=None), route(med=0))
