"""BGP path attributes (RFC 4271 sections 4.3 and 5.1).

Attribute values flow through route processing possibly as
:class:`SymInt` — the paper's selective marking makes, e.g., the MED or an
AS-path ASN symbolic while keeping the attribute's type/length structure
concrete and consistent ("one needs to be careful that the symbolic
length matches the actual length of the value field", section 3.2).  The
classes here therefore never force values to plain int except when
serializing to the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

from repro.bgp.wire import (
    Buffer,
    Cursor,
    as_concrete_int,
    pack_u8,
    pack_u16,
    pack_u32,
)
from repro.concolic.symbolic import SymInt
from repro.util.errors import WireFormatError
from repro.util.ip import int_to_ip

IntLike = Union[int, SymInt]

# Attribute type codes.
ORIGIN = 1
AS_PATH = 2
NEXT_HOP = 3
MULTI_EXIT_DISC = 4
LOCAL_PREF = 5
ATOMIC_AGGREGATE = 6
AGGREGATOR = 7
COMMUNITIES = 8

# ORIGIN values (lower is preferred in the decision process).
ORIGIN_IGP = 0
ORIGIN_EGP = 1
ORIGIN_INCOMPLETE = 2

# AS_PATH segment types.
SEG_AS_SET = 1
SEG_AS_SEQUENCE = 2

# Attribute flag bits.
FLAG_OPTIONAL = 0x80
FLAG_TRANSITIVE = 0x40
FLAG_PARTIAL = 0x20
FLAG_EXTENDED = 0x10

# Well-known community values (RFC 1997).
NO_EXPORT = 0xFFFFFF01
NO_ADVERTISE = 0xFFFFFF02
NO_EXPORT_SUBCONFED = 0xFFFFFF03


@dataclass(frozen=True)
class AsPathSegment:
    """One AS_PATH segment: an ordered AS_SEQUENCE or an unordered AS_SET."""

    kind: int
    asns: Tuple[IntLike, ...]

    def __post_init__(self) -> None:
        if self.kind not in (SEG_AS_SET, SEG_AS_SEQUENCE):
            raise WireFormatError(
                f"invalid AS_PATH segment type {self.kind}", code=3, subcode=11
            )

    @property
    def hop_count(self) -> int:
        """Decision-process length: an AS_SET counts as a single hop."""
        return 1 if self.kind == SEG_AS_SET else len(self.asns)


class AsPath:
    """An AS_PATH: a sequence of segments.

    Immutable in style — mutating operations return new paths — so routes
    can share path objects safely across RIBs and clones.
    """

    __slots__ = ("segments",)

    def __init__(self, segments: Optional[List[AsPathSegment]] = None):
        self.segments: Tuple[AsPathSegment, ...] = tuple(segments or ())

    @classmethod
    def sequence(cls, asns: List[IntLike]) -> "AsPath":
        """A path that is a single AS_SEQUENCE (the common case)."""
        if not asns:
            return cls()
        return cls([AsPathSegment(SEG_AS_SEQUENCE, tuple(asns))])

    def prepend(self, asn: IntLike) -> "AsPath":
        """The path with ``asn`` prepended (what an AS does when exporting)."""
        if self.segments and self.segments[0].kind == SEG_AS_SEQUENCE:
            head = self.segments[0]
            new_head = AsPathSegment(SEG_AS_SEQUENCE, (asn,) + head.asns)
            return AsPath([new_head, *self.segments[1:]])
        return AsPath([AsPathSegment(SEG_AS_SEQUENCE, (asn,)), *self.segments])

    def hop_count(self) -> int:
        """Path length for the decision process (AS_SET = 1 hop)."""
        return sum(segment.hop_count for segment in self.segments)

    def contains(self, asn: IntLike):
        """Loop check; returns bool or SymBool if ASNs are symbolic.

        Written with explicit accumulation (not ``any``) so a symbolic
        comparison chain records one branch per compared ASN.
        """
        for segment in self.segments:
            for member in segment.asns:
                if member == asn:
                    return True
        return False

    def origin_as(self) -> Optional[IntLike]:
        """The AS that originated the route: the last ASN on the path.

        None when the path is empty or ends in an AS_SET (aggregated
        routes have no single origin) — the hijack checker treats that as
        "unknown origin".
        """
        if not self.segments:
            return None
        last = self.segments[-1]
        if last.kind != SEG_AS_SEQUENCE or not last.asns:
            return None
        return last.asns[-1]

    def first_as(self) -> Optional[IntLike]:
        """The neighboring AS the route was learned from."""
        if not self.segments:
            return None
        head = self.segments[0]
        if head.kind != SEG_AS_SEQUENCE or not head.asns:
            return None
        return head.asns[0]

    def as_list(self) -> List[IntLike]:
        """All ASNs in wire order (sets flattened)."""
        out: List[IntLike] = []
        for segment in self.segments:
            out.extend(segment.asns)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AsPath):
            return NotImplemented
        mine = [(s.kind, tuple(as_concrete_int(a) for a in s.asns)) for s in self.segments]
        theirs = [(s.kind, tuple(as_concrete_int(a) for a in s.asns)) for s in other.segments]
        return mine == theirs

    def __hash__(self) -> int:
        return hash(
            tuple(
                (s.kind, tuple(as_concrete_int(a) for a in s.asns))
                for s in self.segments
            )
        )

    def __len__(self) -> int:
        return self.hop_count()

    def __str__(self) -> str:
        parts = []
        for segment in self.segments:
            asns = " ".join(str(as_concrete_int(a)) for a in segment.asns)
            parts.append(f"{{{asns}}}" if segment.kind == SEG_AS_SET else asns)
        return " ".join(parts) if parts else "(empty)"

    def __repr__(self) -> str:
        return f"AsPath({self})"


@dataclass
class PathAttributes:
    """The parsed attribute set of one route/UPDATE."""

    origin: IntLike = ORIGIN_INCOMPLETE
    as_path: AsPath = field(default_factory=AsPath)
    next_hop: Optional[IntLike] = None
    med: Optional[IntLike] = None
    local_pref: Optional[IntLike] = None
    atomic_aggregate: bool = False
    aggregator: Optional[Tuple[IntLike, IntLike]] = None
    communities: Tuple[IntLike, ...] = ()
    unknown: Dict[int, Tuple[int, bytes]] = field(default_factory=dict)

    def copy(self) -> "PathAttributes":
        return replace(self, unknown=dict(self.unknown))

    def has_community(self, value: IntLike):
        for community in self.communities:
            if community == value:
                return True
        return False

    def describe(self) -> str:
        next_hop = (
            int_to_ip(as_concrete_int(self.next_hop)) if self.next_hop is not None else "-"
        )
        return (
            f"origin={as_concrete_int(self.origin)} path=[{self.as_path}] "
            f"next_hop={next_hop} med={self.med} local_pref={self.local_pref}"
        )


def encode_attributes(attrs: PathAttributes) -> bytes:
    """Serialize to the wire attribute list (concretizing symbolic values)."""
    out = bytearray()

    def emit(flags: int, type_code: int, value: bytes) -> None:
        if len(value) > 0xFF:
            flags |= FLAG_EXTENDED
            out.extend((flags, type_code))
            out.extend(len(value).to_bytes(2, "big"))
        else:
            out.extend((flags, type_code, len(value)))
        out.extend(value)

    emit(FLAG_TRANSITIVE, ORIGIN, pack_u8(attrs.origin))

    path_bytes = bytearray()
    for segment in attrs.as_path.segments:
        path_bytes.append(segment.kind)
        path_bytes.append(len(segment.asns))
        for asn in segment.asns:
            path_bytes.extend(pack_u16(asn))
    emit(FLAG_TRANSITIVE, AS_PATH, bytes(path_bytes))

    if attrs.next_hop is not None:
        emit(FLAG_TRANSITIVE, NEXT_HOP, pack_u32(attrs.next_hop))
    if attrs.med is not None:
        emit(FLAG_OPTIONAL, MULTI_EXIT_DISC, pack_u32(attrs.med))
    if attrs.local_pref is not None:
        emit(FLAG_TRANSITIVE, LOCAL_PREF, pack_u32(attrs.local_pref))
    if attrs.atomic_aggregate:
        emit(FLAG_TRANSITIVE, ATOMIC_AGGREGATE, b"")
    if attrs.aggregator is not None:
        asn, address = attrs.aggregator
        emit(FLAG_OPTIONAL | FLAG_TRANSITIVE, AGGREGATOR, pack_u16(asn) + pack_u32(address))
    if attrs.communities:
        body = b"".join(pack_u32(c) for c in attrs.communities)
        emit(FLAG_OPTIONAL | FLAG_TRANSITIVE, COMMUNITIES, body)
    for type_code, (flags, value) in sorted(attrs.unknown.items()):
        emit(flags | FLAG_PARTIAL, type_code, value)
    return bytes(out)


def decode_attributes(buffer: Buffer) -> PathAttributes:
    """Parse a wire attribute list; symbolic value bytes stay symbolic."""
    cursor = Cursor(buffer)
    attrs = PathAttributes()
    seen: set[int] = set()
    while not cursor.at_end():
        flags = int(cursor.read_u8())
        type_code = int(cursor.read_u8())
        if flags & FLAG_EXTENDED:
            length = int(cursor.read_u16())
        else:
            length = int(cursor.read_u8())
        if length > cursor.remaining:
            raise WireFormatError(
                f"attribute {type_code} length {length} overruns message",
                code=3, subcode=5,
            )
        if type_code in seen:
            raise WireFormatError(
                f"duplicate attribute {type_code}", code=3, subcode=1
            )
        seen.add(type_code)
        value = cursor.read_bytes(length)
        _decode_one(attrs, flags, type_code, value, length)
    return attrs


def _decode_one(
    attrs: PathAttributes, flags: int, type_code: int, value: Buffer, length: int
) -> None:
    field_cursor = Cursor(value)
    if type_code == ORIGIN:
        if length != 1:
            raise WireFormatError("ORIGIN must be 1 byte", code=3, subcode=5)
        origin = field_cursor.read_u8()
        if origin > ORIGIN_INCOMPLETE:  # symbolic-aware validity branch
            raise WireFormatError(
                f"invalid ORIGIN {as_concrete_int(origin)}", code=3, subcode=6
            )
        attrs.origin = origin
    elif type_code == AS_PATH:
        segments: List[AsPathSegment] = []
        while not field_cursor.at_end():
            kind = int(field_cursor.read_u8())
            count = int(field_cursor.read_u8())
            asns = tuple(field_cursor.read_u16() for _ in range(count))
            segments.append(AsPathSegment(kind, asns))
        attrs.as_path = AsPath(segments)
    elif type_code == NEXT_HOP:
        if length != 4:
            raise WireFormatError("NEXT_HOP must be 4 bytes", code=3, subcode=5)
        attrs.next_hop = field_cursor.read_u32()
    elif type_code == MULTI_EXIT_DISC:
        if length != 4:
            raise WireFormatError("MED must be 4 bytes", code=3, subcode=5)
        attrs.med = field_cursor.read_u32()
    elif type_code == LOCAL_PREF:
        if length != 4:
            raise WireFormatError("LOCAL_PREF must be 4 bytes", code=3, subcode=5)
        attrs.local_pref = field_cursor.read_u32()
    elif type_code == ATOMIC_AGGREGATE:
        if length != 0:
            raise WireFormatError("ATOMIC_AGGREGATE must be empty", code=3, subcode=5)
        attrs.atomic_aggregate = True
    elif type_code == AGGREGATOR:
        if length != 6:
            raise WireFormatError("AGGREGATOR must be 6 bytes", code=3, subcode=5)
        attrs.aggregator = (field_cursor.read_u16(), field_cursor.read_u32())
    elif type_code == COMMUNITIES:
        if length % 4 != 0:
            raise WireFormatError("COMMUNITIES length not multiple of 4", code=3, subcode=5)
        attrs.communities = tuple(
            field_cursor.read_u32() for _ in range(length // 4)
        )
    else:
        if not flags & FLAG_OPTIONAL:
            raise WireFormatError(
                f"unrecognized well-known attribute {type_code}", code=3, subcode=2
            )
        if flags & FLAG_TRANSITIVE:
            from repro.bgp.wire import to_plain_bytes

            attrs.unknown[type_code] = (flags, to_plain_bytes(value))
        # Non-transitive optional attributes we don't know are dropped.


def validate_mandatory(attrs: PathAttributes, has_nlri: bool, is_ebgp: bool) -> None:
    """RFC 4271 section 6.3 mandatory-attribute checks for an UPDATE."""
    if not has_nlri:
        return
    if attrs.next_hop is None:
        raise WireFormatError("missing NEXT_HOP", code=3, subcode=3)
    if is_ebgp and attrs.local_pref is not None:
        # Tolerated in practice; BIRD logs and ignores.  We keep the value.
        pass
