"""Concolic values: concrete results carried together with symbolic exprs.

These classes are the Python counterpart of the paper's CIL source
instrumentation (section 3.1): arithmetic on a :class:`SymInt` computes the
ordinary concrete result *and* extends a symbolic expression, and any
branch whose condition involves a symbolic value passes through
``SymBool.__bool__``, which reports the constraint to the active trace
recorder before returning the concrete outcome.  Python's short-circuit
``and``/``or`` evaluate operand truthiness one at a time, so compound
conditions decompose into exactly the per-branch constraints a concolic
engine wants.

Deliberate concretization points, mirroring section 3.2's handling of
operations that defeat symbolic reasoning (the paper's example is hash
functions):

* ``__hash__`` hashes the concrete value and records nothing — symbolic
  dict/set keys behave like their concrete values.
* ``__index__`` / ``__int__`` return the concrete value but record an
  equality constraint pinning the expression to it, keeping the recorded
  path condition sound when symbolic values index into tables.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Union

from repro.concolic import tracer
from repro.concolic.expr import (
    BINARY_OPS,
    BinOp,
    Const,
    EvalError,
    Expr,
    Var,
    as_boolean,
    make_binary,
    make_unary,
)
from repro.util.errors import SymbolicError

IntLike = Union[int, "SymInt"]


def _lift(value: IntLike) -> Expr:
    """The expression for a plain int or a SymInt."""
    if isinstance(value, SymInt):
        return value.expr
    return Const(int(value))


def _concrete(value: IntLike) -> int:
    if isinstance(value, SymInt):
        return value.concrete
    return int(value)


class SymBool:
    """A boolean with both a concrete outcome and a symbolic condition."""

    __slots__ = ("concrete", "expr")

    def __init__(self, concrete: bool, expr: Expr):
        self.concrete = bool(concrete)
        self.expr = as_boolean(expr)

    def __bool__(self) -> bool:
        recorder = tracer.active_recorder()
        if recorder is not None and not isinstance(self.expr, Const):
            recorder.record_branch(self.expr, self.concrete, tracer.caller_site())
        return self.concrete

    def __invert__(self) -> "SymBool":
        return SymBool(not self.concrete, make_unary("lnot", self.expr))

    def __and__(self, other: Union[bool, "SymBool"]) -> "SymBool":
        if isinstance(other, SymBool):
            return SymBool(
                self.concrete and other.concrete,
                make_binary("land", self.expr, other.expr),
            )
        return SymBool(
            self.concrete and bool(other),
            make_binary("land", self.expr, Const(int(bool(other)))),
        )

    __rand__ = __and__

    def __or__(self, other: Union[bool, "SymBool"]) -> "SymBool":
        if isinstance(other, SymBool):
            return SymBool(
                self.concrete or other.concrete,
                make_binary("lor", self.expr, other.expr),
            )
        return SymBool(
            self.concrete or bool(other),
            make_binary("lor", self.expr, Const(int(bool(other)))),
        )

    __ror__ = __or__

    def __repr__(self) -> str:
        return f"SymBool({self.concrete}, {self.expr!r})"


class SymInt:
    """An integer with both a concrete value and a symbolic expression.

    Supports the integer operations BGP message processing needs
    (arithmetic, bitwise, shifts, comparisons).  True division and
    exponentiation are rejected: routing code has no business doing either
    on wire-format fields, and failing loudly beats silently dropping
    constraints.
    """

    __slots__ = ("concrete", "expr")

    def __init__(self, concrete: int, expr: Expr):
        self.concrete = int(concrete)
        self.expr = expr

    # -- construction helpers ------------------------------------------------

    @classmethod
    def variable(cls, name: str, concrete: int, bits: int = 32) -> "SymInt":
        """A fresh symbolic input variable with the given concrete value."""
        return cls(concrete, Var(name, bits))

    @classmethod
    def constant(cls, value: int) -> "SymInt":
        return cls(value, Const(value))

    @property
    def is_symbolic(self) -> bool:
        """False once the expression has folded to a constant."""
        return not isinstance(self.expr, Const)

    # -- arithmetic ----------------------------------------------------------

    def _binary(self, other: object, op: str, reflected: bool = False):
        # This is the instrumentation hot path: every arithmetic step of
        # the program under test lands here, so the op table and error
        # type are module-level imports rather than per-call lookups.
        if not isinstance(other, (int, SymInt)):
            return NotImplemented
        func = BINARY_OPS[op][0]
        try:
            if reflected:
                concrete = func(_concrete(other), self.concrete)
                expression = make_binary(op, _lift(other), self.expr)
            else:
                concrete = func(self.concrete, _concrete(other))
                expression = make_binary(op, self.expr, _lift(other))
        except EvalError as exc:
            # Concrete arithmetic must fail exactly like plain Python ints.
            if op in ("floordiv", "mod"):
                raise ZeroDivisionError(str(exc)) from None
            raise ValueError(str(exc)) from None
        return SymInt(concrete, expression)

    def __add__(self, other): return self._binary(other, "add")
    def __radd__(self, other): return self._binary(other, "add", reflected=True)
    def __sub__(self, other): return self._binary(other, "sub")
    def __rsub__(self, other): return self._binary(other, "sub", reflected=True)
    def __mul__(self, other): return self._binary(other, "mul")
    def __rmul__(self, other): return self._binary(other, "mul", reflected=True)
    def __floordiv__(self, other): return self._binary(other, "floordiv")
    def __rfloordiv__(self, other): return self._binary(other, "floordiv", reflected=True)
    def __mod__(self, other): return self._binary(other, "mod")
    def __rmod__(self, other): return self._binary(other, "mod", reflected=True)
    def __and__(self, other): return self._binary(other, "and")
    def __rand__(self, other): return self._binary(other, "and", reflected=True)
    def __or__(self, other): return self._binary(other, "or")
    def __ror__(self, other): return self._binary(other, "or", reflected=True)
    def __xor__(self, other): return self._binary(other, "xor")
    def __rxor__(self, other): return self._binary(other, "xor", reflected=True)
    def __lshift__(self, other): return self._binary(other, "shl")
    def __rlshift__(self, other): return self._binary(other, "shl", reflected=True)
    def __rshift__(self, other): return self._binary(other, "shr")
    def __rrshift__(self, other): return self._binary(other, "shr", reflected=True)

    def __neg__(self) -> "SymInt":
        return SymInt(-self.concrete, make_unary("neg", self.expr))

    def __pos__(self) -> "SymInt":
        return self

    def __invert__(self) -> "SymInt":
        return SymInt(~self.concrete, make_unary("inv", self.expr))

    def __abs__(self) -> "SymInt":
        if self.concrete >= 0:
            return self
        return -self

    def __truediv__(self, other: object):
        raise SymbolicError("true division on a symbolic value; use // instead")

    __rtruediv__ = __truediv__

    def __pow__(self, other: object):
        raise SymbolicError("exponentiation on a symbolic value is unsupported")

    # -- comparisons ---------------------------------------------------------

    def _compare(self, other: object, op: str):
        if not isinstance(other, (int, SymInt)):
            return NotImplemented
        func = BINARY_OPS[op][0]
        concrete = bool(func(self.concrete, _concrete(other)))
        return SymBool(concrete, make_binary(op, self.expr, _lift(other)))

    def __eq__(self, other): return self._compare(other, "eq")
    def __ne__(self, other): return self._compare(other, "ne")
    def __lt__(self, other): return self._compare(other, "lt")
    def __le__(self, other): return self._compare(other, "le")
    def __gt__(self, other): return self._compare(other, "gt")
    def __ge__(self, other): return self._compare(other, "ge")

    # -- concretization points -----------------------------------------------

    def __bool__(self) -> bool:
        return bool(SymBool(self.concrete != 0, as_boolean(self.expr)))

    def __hash__(self) -> int:
        # Deliberately concrete (and unrecorded): the paper avoids recording
        # constraints through hash functions because they cannot be reversed.
        return hash(self.concrete)

    def __index__(self) -> int:
        recorder = tracer.active_recorder()
        if recorder is not None and self.is_symbolic:
            recorder.record_concretization(self.expr, self.concrete)
        return self.concrete

    def __int__(self) -> int:
        return self.__index__()

    def __repr__(self) -> str:
        return f"SymInt({self.concrete}, {self.expr!r})"

    def __format__(self, spec: str) -> str:
        return format(self.concrete, spec)


class SymBytes:
    """A byte string whose individual bytes may be symbolic.

    Behaves like an immutable sequence of small integers: indexing yields
    a plain int or :class:`SymInt`, slicing yields another
    :class:`SymBytes`, and equality against ``bytes`` produces a
    :class:`SymBool` conjoining per-byte constraints.  Message codecs use
    :meth:`to_uint` to assemble multi-byte fields into one symbolic
    integer.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[IntLike]):
        self._items: List[IntLike] = []
        for item in items:
            value = item.concrete if isinstance(item, SymInt) else int(item)
            if not 0 <= value <= 255:
                raise SymbolicError(f"byte value {value} out of range")
            self._items.append(item)

    @classmethod
    def from_concrete(cls, data: bytes) -> "SymBytes":
        return cls(list(data))

    @classmethod
    def symbolic(cls, name: str, data: bytes) -> "SymBytes":
        """Mark every byte of ``data`` as an 8-bit symbolic variable."""
        return cls(
            [SymInt.variable(f"{name}[{i}]", byte, bits=8) for i, byte in enumerate(data)]
        )

    @property
    def concrete(self) -> bytes:
        return bytes(
            item.concrete if isinstance(item, SymInt) else item for item in self._items
        )

    @property
    def is_symbolic(self) -> bool:
        return any(isinstance(item, SymInt) and item.is_symbolic for item in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[IntLike]:
        return iter(self._items)

    def __getitem__(self, key: Union[int, slice]) -> Union[IntLike, "SymBytes"]:
        if isinstance(key, slice):
            return SymBytes(self._items[key])
        return self._items[key]

    def __add__(self, other: Union[bytes, "SymBytes"]) -> "SymBytes":
        if isinstance(other, bytes):
            return SymBytes(self._items + list(other))
        if isinstance(other, SymBytes):
            return SymBytes(self._items + other._items)
        return NotImplemented  # type: ignore[return-value]

    def __radd__(self, other: bytes) -> "SymBytes":
        if isinstance(other, bytes):
            return SymBytes(list(other) + self._items)
        return NotImplemented  # type: ignore[return-value]

    def to_uint(self, offset: int = 0, width: int = 1) -> SymInt:
        """Big-endian unsigned integer from ``width`` bytes at ``offset``."""
        if offset < 0 or offset + width > len(self._items):
            raise SymbolicError(
                f"field [{offset}:{offset + width}] outside buffer of {len(self._items)}"
            )
        concrete = 0
        expression: Expr = Const(0)
        for item in self._items[offset:offset + width]:
            concrete = (concrete << 8) | (item.concrete if isinstance(item, SymInt) else int(item))
            expression = make_binary(
                "or", make_binary("shl", expression, Const(8)), _lift(item)
            )
        return SymInt(concrete, expression)

    def __eq__(self, other: object):
        if isinstance(other, SymBytes):
            other_items: Sequence[IntLike] = other._items
        elif isinstance(other, (bytes, bytearray)):
            other_items = list(other)
        else:
            return NotImplemented
        if len(self._items) != len(other_items):
            return SymBool(False, Const(0))
        outcome = True
        expression: Expr = Const(1)
        for mine, theirs in zip(self._items, other_items):
            outcome = outcome and (_concrete(mine) == _concrete(theirs))
            expression = make_binary(
                "land", expression, make_binary("eq", _lift(mine), _lift(theirs))
            )
        return SymBool(outcome, expression)

    def __hash__(self) -> int:
        return hash(self.concrete)

    def __repr__(self) -> str:
        return f"SymBytes({self.concrete!r}, symbolic={self.is_symbolic})"


def concrete_of(value: object) -> object:
    """Strip the symbolic layer: return the plain concrete value.

    Non-symbolic values pass through unchanged, so this is safe to call on
    anything flowing out of an explored handler.
    """
    if isinstance(value, (SymInt,)):
        return value.concrete
    if isinstance(value, SymBool):
        return value.concrete
    if isinstance(value, SymBytes):
        return value.concrete
    return value


def lift_int(value: IntLike) -> SymInt:
    """Wrap a plain int as a constant SymInt (SymInts pass through)."""
    if isinstance(value, SymInt):
        return value
    return SymInt.constant(int(value))
