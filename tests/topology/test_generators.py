"""Property tests: every registered generator is deterministic and valid."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp.config import parse_config
from repro.topology import GENERATORS, build_routers, render_config
from repro.topology.generators import hierarchical, origin_indices, tiered
from repro.util.errors import TopologyError


def fingerprint(graph):
    """A structural identity: nodes, edges, and rendered policies."""
    nodes = tuple(
        (n.name, n.asn, n.role, n.networks, n.router_id, n.filter_mode)
        for n in graph.nodes.values()
    )
    edges = tuple(
        (e.a, e.b, e.kind, e.latency, e.passive) for e in graph.edges
    )
    configs = tuple(render_config(graph, name) for name in graph.nodes)
    return (graph.name, nodes, edges, configs)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_every_generator_is_deterministic_and_policy_valid(seed):
    for name, generator in GENERATORS.items():
        first = generator(seed=seed)
        second = generator(seed=seed)
        assert fingerprint(first) == fingerprint(second), name
        # validate() already ran inside the generator; re-run to assert
        # the *returned* object is still well-formed.
        first.validate()
        # Every synthesized config must parse (filters resolve, prefix
        # sets exist) — the policy half of "policy-valid".
        for node in first.nodes:
            parse_config(render_config(first, node))


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_tier1=st.integers(min_value=1, max_value=3),
    n_tier2=st.integers(min_value=1, max_value=4),
    n_stub=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=20, deadline=None)
def test_tiered_shapes_are_valid_for_any_sizes(seed, n_tier1, n_tier2, n_stub):
    graph = tiered(n_tier1, n_tier2, n_stub, seed=seed)
    graph.validate()
    assert len(graph.nodes) == n_tier1 + n_tier2 + n_stub
    roles = [node.role for node in graph.nodes.values()]
    assert roles.count("tier1") == n_tier1
    assert roles.count("stub") == n_stub
    # Every non-tier1 AS has at least one provider (it can reach the core).
    for node in graph.nodes.values():
        if node.role != "tier1":
            assert graph.providers_of(node.name), node.name


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n=st.integers(min_value=4, max_value=80),
)
@settings(max_examples=20, deadline=None)
def test_hierarchical_is_deterministic_and_valid_across_sizes(seed, n):
    graph = hierarchical(n, seed=seed)
    graph.validate()
    assert fingerprint(graph) == fingerprint(hierarchical(n, seed=seed))
    assert len(graph.nodes) == n
    roles = [node.role for node in graph.nodes.values()]
    assert roles.count("tier1") >= 3 or n < 7
    # Everyone below the core can reach it through a provider, and
    # providers always precede their customers (acyclic by construction).
    for node in graph.nodes.values():
        if node.role != "tier1":
            providers = graph.providers_of(node.name)
            assert providers, node.name
            assert all(
                int(p[2:]) < int(node.name[2:]) for p in providers
            ), node.name


@given(
    seed=st.integers(min_value=0, max_value=2**10),
    max_origins=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=15, deadline=None)
def test_hierarchical_max_origins_caps_origination(seed, max_origins):
    n = 60
    graph = hierarchical(n, seed=seed, max_origins=max_origins)
    graph.validate()
    originating = [node for node in graph.nodes.values() if node.networks]
    assert 1 <= len(originating) <= max_origins
    assert len(list(origin_indices(n, max_origins))) == len(originating)


def test_hierarchical_degree_distribution_is_heavy_tailed():
    """Preferential attachment: a few providers collect many customers."""
    graph = hierarchical(200, seed=7)
    degrees = sorted(
        (len(graph.customers_of(name)) for name in graph.nodes), reverse=True
    )
    customers = sum(degrees)
    assert degrees[0] > customers / 20, "no hub emerged at 200 ASes"
    assert degrees[0] >= 4 * max(1, degrees[len(degrees) // 4])


def test_hierarchical_rejects_out_of_range_sizes():
    with pytest.raises(TopologyError):
        hierarchical(3)
    with pytest.raises(TopologyError):
        hierarchical(4001)
    with pytest.raises(TopologyError):
        hierarchical(60, max_origins=0)


def test_seed_changes_the_multihoming_choices():
    shapes = {fingerprint(tiered(2, 3, 3, seed=s)) for s in range(6)}
    assert len(shapes) > 1  # at least two distinct federations in six seeds


def test_generators_reject_out_of_range_sizes():
    with pytest.raises(TopologyError):
        GENERATORS["line"](0)
    with pytest.raises(TopologyError):
        GENERATORS["ring"](2)
    with pytest.raises(TopologyError):
        GENERATORS["clique"](1000)


def test_generated_graphs_materialize_and_converge():
    """One end-to-end pass per generator shape (small sizes)."""
    for name, generator in GENERATORS.items():
        graph = generator(seed=5) if name != "tiered" else tiered(1, 2, 1, seed=5)
        host, routers = build_routers(graph)
        host.run()
        for node_name, router in routers.items():
            expected = {peer for peer, _, _ in graph.neighbors(node_name)}
            assert set(router.established_peers()) == expected, (name, node_name)
