"""Edge-case tests for the trace replayer's session handling."""

import pytest

from repro.bgp.messages import NotificationMessage, OpenMessage, UpdateMessage
from repro.bgp.router import BgpRouter
from repro.net.node import NodeHost
from repro.trace.mrt import Trace
from repro.trace.replay import TraceReplayer
from repro.trace.routeviews import generate_trace
from repro.util.errors import SimulationError


ROUTER_CFG = """
router bgp 65010;
router-id 10.0.0.1;
neighbor internet { remote-as 64999; passive; }
"""


def build(trace, compression=0.0):
    host = NodeHost()
    router = host.add_node("router", lambda n, e: BgpRouter(n, e, ROUTER_CFG))
    replayer = host.add_node(
        "internet",
        lambda n, e: TraceReplayer(
            n, e, host.sim, "router", trace,
            local_as=64999, peer_as=65010, compression=compression,
        ),
    )
    host.add_link("router", "internet", latency=0.001)
    return host, router, replayer


class TestReplayerEdges:
    def test_messages_from_other_nodes_ignored(self):
        trace = generate_trace(prefix_count=10, update_count=0)
        host, router, replayer = build(trace)
        host.start()
        # A stray node's message must not confuse the replayer's FSM.
        replayer.on_message("stranger", OpenMessage(my_as=1).encode())
        host.run()
        assert router.table_size() == 10

    def test_notification_from_peer_raises(self):
        trace = generate_trace(prefix_count=5, update_count=0)
        host, router, replayer = build(trace)
        with pytest.raises(SimulationError):
            replayer.on_message(
                "router", NotificationMessage(code=6).encode()
            )

    def test_updates_from_peer_silently_sunk(self):
        trace = generate_trace(prefix_count=5, update_count=0)
        host, router, replayer = build(trace)
        host.start()
        host.run()
        # The router may send us UPDATEs (it does not here because of the
        # export policy, so deliver one by hand): no error, no reply.
        replayer.on_message("router", UpdateMessage().encode())

    def test_empty_trace_finishes_immediately(self):
        trace = Trace(dump=[], updates=[])
        host, router, replayer = build(trace)
        host.start()
        host.run()
        assert replayer.stats.finished_at is not None
        assert replayer.stats.total_messages == 0

    def test_dump_batch_size_respected(self):
        trace = generate_trace(prefix_count=300, update_count=0)
        host, router, replayer = build(trace)
        replayer.dump_batch = 10
        host.start()
        host.run()
        assert replayer.stats.dump_messages >= 30
        assert router.table_size() == 300

    def test_compression_scales_schedule(self):
        trace = generate_trace(prefix_count=10, update_count=30, duration=600.0)
        host, _, replayer = build(trace, compression=0.5)
        host.start()
        host.run()
        # Updates spread over roughly half the trace duration.
        assert 100.0 < host.sim.now < 400.0

    def test_replay_is_deterministic(self):
        results = []
        for _ in range(2):
            trace = generate_trace(prefix_count=50, update_count=20, seed=11)
            host, router, replayer = build(trace)
            host.start()
            host.run()
            results.append(
                (router.table_size(), sorted(str(p) for p in router.loc_rib.prefixes()))
            )
        assert results[0] == results[1]
