"""Tests for trace records, synthetic generation, and replay."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.router import BgpRouter
from repro.net.node import NodeHost
from repro.trace.mrt import (
    KIND_ANNOUNCE,
    KIND_WITHDRAW,
    Trace,
    TraceRecord,
    read_trace,
    write_trace,
)
from repro.trace.replay import TraceReplayer
from repro.trace.routeviews import (
    MASKLEN_WEIGHTS,
    RouteViewsGenerator,
    TraceConfig,
    generate_trace,
)
from repro.util.errors import WireFormatError
from repro.util.ip import Prefix

P = Prefix.parse


def announce(ts=1.0, prefix="10.0.0.0/8", asns=(65001,)):
    return TraceRecord.announce(
        ts, P(prefix),
        PathAttributes(as_path=AsPath.sequence(list(asns)), next_hop=1),
    )


class TestTraceRecords:
    def test_announce_requires_attributes(self):
        with pytest.raises(WireFormatError):
            TraceRecord(1.0, KIND_ANNOUNCE, P("10.0.0.0/8"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(WireFormatError):
            TraceRecord(1.0, 9, P("10.0.0.0/8"))

    def test_origin_as(self):
        record = announce(asns=(65001, 65002))
        assert record.origin_as() == 65002
        assert TraceRecord.withdraw(1.0, P("10.0.0.0/8")).origin_as() is None

    def test_roundtrip(self):
        records = [
            announce(0.0),
            TraceRecord.withdraw(5.0, P("11.0.0.0/8")),
            announce(9.5, "192.168.0.0/16", (1, 2, 3)),
        ]
        decoded = read_trace(write_trace(records))
        assert len(decoded) == 3
        assert decoded[0].is_announce
        assert decoded[1].kind == KIND_WITHDRAW
        assert decoded[2].attributes.as_path.as_list() == [1, 2, 3]
        assert decoded[2].timestamp == 9.5

    def test_bad_magic(self):
        with pytest.raises(WireFormatError):
            read_trace(b"XXXX" + b"\x00" * 20)

    def test_truncated(self):
        data = write_trace([announce()])
        with pytest.raises(WireFormatError):
            read_trace(data[:-3])

    def test_trace_container_roundtrip(self):
        trace = Trace(dump=[announce(0.0)], updates=[announce(3.0, "11.0.0.0/8")])
        restored = Trace.deserialize(trace.serialize())
        assert len(restored.dump) == 1
        assert len(restored.updates) == 1
        assert restored.duration == 0.0  # single update

    def test_duration(self):
        trace = Trace(updates=[announce(2.0), announce(12.0)])
        assert trace.duration == 10.0

    @given(st.lists(
        st.tuples(
            st.floats(min_value=0.001, max_value=1e6),
            st.integers(min_value=0, max_value=2**32 - 1),
            st.integers(min_value=0, max_value=32),
        ),
        max_size=20,
    ))
    def test_roundtrip_property(self, raw):
        records = [
            announce(ts, str(Prefix(net, length)), (65001,))
            for ts, net, length in raw
        ]
        decoded = read_trace(write_trace(records))
        assert [(r.timestamp, r.prefix) for r in decoded] == [
            (r.timestamp, r.prefix) for r in records
        ]


class TestRouteViewsGenerator:
    def test_deterministic(self):
        a = generate_trace(prefix_count=200, update_count=50, seed=7)
        b = generate_trace(prefix_count=200, update_count=50, seed=7)
        assert a.serialize() == b.serialize()

    def test_seed_changes_output(self):
        a = generate_trace(prefix_count=100, update_count=10, seed=1)
        b = generate_trace(prefix_count=100, update_count=10, seed=2)
        assert a.serialize() != b.serialize()

    def test_dump_size_and_uniqueness(self):
        trace = generate_trace(prefix_count=500, update_count=0)
        assert len(trace.dump) == 500
        assert len({r.prefix for r in trace.dump}) == 500

    def test_all_dump_records_have_valid_paths(self):
        trace = generate_trace(prefix_count=300, update_count=0)
        for record in trace.dump:
            path = record.attributes.as_path
            asns = path.as_list()
            assert 1 <= len(asns) <= 6
            assert len(set(asns)) == len(asns)  # loop-free
            assert record.origin_as() is not None

    def test_masklen_mix_dominated_by_24(self):
        trace = generate_trace(prefix_count=2000, update_count=0)
        lengths = [r.prefix.length for r in trace.dump]
        share_24 = lengths.count(24) / len(lengths)
        assert 0.4 < share_24 < 0.7
        assert all(8 <= l <= 24 for l in lengths)

    def test_private_space_avoided(self):
        trace = generate_trace(prefix_count=1000, update_count=0)
        for record in trace.dump:
            first_octet = record.prefix.network >> 24
            assert first_octet not in (0, 10, 127, 169, 172, 192)
            assert first_octet < 224

    def test_update_stream_timing(self):
        trace = generate_trace(prefix_count=100, update_count=200, duration=900.0)
        times = [r.timestamp for r in trace.updates]
        assert times == sorted(times)
        assert times[-1] <= 900.0 + 1e-6
        assert times[-1] > 100.0  # spread over the window, not bunched at 0

    def test_update_mix_contains_all_kinds(self):
        trace = generate_trace(prefix_count=500, update_count=600)
        kinds = {r.kind for r in trace.updates}
        assert kinds == {KIND_ANNOUNCE, KIND_WITHDRAW}
        withdrawn = sum(1 for r in trace.updates if r.kind == KIND_WITHDRAW)
        assert 0.05 < withdrawn / len(trace.updates) < 0.4

    def test_reannouncements_preserve_origin(self):
        trace = generate_trace(prefix_count=300, update_count=300)
        origin_of = {r.prefix: r.origin_as() for r in trace.dump}
        for record in trace.updates:
            if record.is_announce and record.prefix in origin_of:
                assert record.origin_as() == origin_of[record.prefix]

    def test_bad_probability_mix_rejected(self):
        config = TraceConfig(p_reannounce=0.9, p_new_specific=0.9,
                             p_withdraw=0.0, p_flap=0.0)
        with pytest.raises(ValueError):
            RouteViewsGenerator(config)

    def test_weights_table_shape(self):
        total = sum(w for _, w in MASKLEN_WEIGHTS)
        assert total == pytest.approx(1.0, abs=0.05)


ROUTER_CFG = """
router bgp 65010;
router-id 10.0.0.1;
neighbor internet { remote-as 64999; passive; }
"""


class TestReplay:
    def build(self, trace, compression=0.0):
        host = NodeHost()
        router = host.add_node("router", lambda n, e: BgpRouter(n, e, ROUTER_CFG))
        replayer = host.add_node(
            "internet",
            lambda n, e: TraceReplayer(
                n, e, host.sim, "router", trace,
                local_as=64999, peer_as=65010, compression=compression,
            ),
        )
        host.add_link("router", "internet", latency=0.001)
        host.start()
        return host, router, replayer

    def test_dump_loads_full_table(self):
        trace = generate_trace(prefix_count=400, update_count=0)
        host, router, replayer = self.build(trace)
        host.run()
        assert router.table_size() == 400
        assert replayer.stats.announced_prefixes == 400
        assert replayer.stats.finished_at is not None

    def test_updates_apply_after_dump(self):
        trace = generate_trace(prefix_count=300, update_count=100)
        host, router, replayer = self.build(trace)
        host.run()
        assert replayer.stats.update_messages == 100
        withdrawn = {r.prefix for r in trace.updates if r.kind == KIND_WITHDRAW}
        announced_after = {
            r.prefix for r in trace.updates if r.is_announce
        }
        for prefix in withdrawn - announced_after:
            assert prefix not in router.loc_rib

    def test_realtime_compression_paces_updates(self):
        trace = generate_trace(prefix_count=50, update_count=20, duration=100.0)
        host, router, replayer = self.build(trace, compression=1.0)
        host.run()
        # Simulated clock advanced roughly the trace window.
        assert host.sim.now >= 50.0
        assert replayer.stats.update_messages == 20

    def test_on_complete_callback(self):
        trace = generate_trace(prefix_count=20, update_count=5)
        host, router, replayer = self.build(trace)
        fired = []
        replayer.on_complete = lambda: fired.append(host.sim.now)
        host.run()
        assert len(fired) == 1

    def test_empty_update_stream(self):
        trace = generate_trace(prefix_count=10, update_count=0)
        host, router, replayer = self.build(trace)
        host.run()
        assert replayer.stats.finished_at is not None
        assert replayer.stats.update_messages == 0
