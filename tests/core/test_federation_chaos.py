"""Finding-set parity under chaos, at federation scale.

Satellite pin for the resilience PR: ``finding_keys()`` is identical
across serial / stream / stream-with-{worker-kill, worker-hang,
cache-manager-kill} on the line-3 and tiered-8 topologies.  Every
registered non-quarantining plan must be recovery-lossless — the chaos
harness exists precisely so this invariant is *executed*, not assumed.
"""

import pytest

from repro.concolic import ExplorationBudget
from repro.core import get_scenario
from repro.parallel import get_chaos_plan
from repro.util.errors import ExplorationError

BUDGET = ExplorationBudget(max_executions=4)

#: The non-quarantining plans the satellite names: kill, hang, cache-kill.
PARITY_PLANS = ("kill-one-worker", "hang-one-worker", "kill-cache-manager")


def _built(name):
    built = get_scenario(name).build(seed=42)
    built.converge()
    return built


@pytest.fixture(scope="module")
def line3_built():
    return _built("line-3")


@pytest.fixture(scope="module")
def tiered_built():
    return _built("tiered-8")


@pytest.fixture(scope="module")
def line3_serial(line3_built):
    return line3_built.federation().explore(
        line3_built.seed_corpus(), budget=BUDGET, workers=1, force_serial=True
    )


@pytest.fixture(scope="module")
def tiered_serial(tiered_built):
    return tiered_built.federation().explore(
        tiered_built.seed_corpus(), budget=BUDGET, workers=1, force_serial=True
    )


def _explore_with_chaos(built, plan_name):
    report = built.federation().explore(
        built.seed_corpus(),
        budget=BUDGET,
        workers=2,
        stream=True,
        chaos=get_chaos_plan(plan_name),
    )
    if not report.used_processes:
        pytest.skip("no process workers on this host")
    return report


class TestLine3ChaosParity:
    @pytest.mark.parametrize("plan_name", PARITY_PLANS)
    def test_parity_under_chaos(self, line3_built, line3_serial, plan_name):
        report = _explore_with_chaos(line3_built, plan_name)
        assert report.finding_keys() == line3_serial.finding_keys()
        summary = report.stream_summary
        assert summary["jobs_quarantined"] == 0
        assert summary["chaos_events"]  # the plan actually fired

    def test_plain_stream_parity_still_holds(self, line3_built, line3_serial):
        report = line3_built.federation().explore(
            line3_built.seed_corpus(),
            budget=BUDGET,
            workers=2,
            stream=True,
            force_serial=True,
        )
        assert report.finding_keys() == line3_serial.finding_keys()


class TestTiered8ChaosParity:
    @pytest.mark.parametrize("plan_name", PARITY_PLANS)
    def test_parity_under_chaos(self, tiered_built, tiered_serial, plan_name):
        report = _explore_with_chaos(tiered_built, plan_name)
        assert report.finding_keys() == tiered_serial.finding_keys()
        summary = report.stream_summary
        assert summary["jobs_quarantined"] == 0
        assert summary["chaos_events"]

    def test_cache_degradation_is_surfaced(self, tiered_built):
        report = _explore_with_chaos(tiered_built, "kill-cache-manager")
        summary = report.stream_summary
        assert summary["degraded_shards"] == summary["cache_shards"]


class TestChaosRequiresTheSharedStreamPool:
    def test_batch_mode_rejected(self, line3_built):
        with pytest.raises(ExplorationError, match="requires stream=True"):
            line3_built.federation().explore(
                line3_built.seed_corpus(),
                budget=BUDGET,
                chaos=get_chaos_plan("kill-one-worker"),
            )

    def test_legacy_per_as_pools_rejected(self, line3_built):
        with pytest.raises(ExplorationError, match="shared_pool=True"):
            line3_built.federation().explore(
                line3_built.seed_corpus(),
                budget=BUDGET,
                stream=True,
                shared_pool=False,
                chaos=get_chaos_plan("kill-one-worker"),
            )
