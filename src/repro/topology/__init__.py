"""Declarative AS-level topologies: graphs, generators, materialization.

The federation substrate: an :class:`AsGraph` declares ASes and their
business relationships, :mod:`repro.topology.generators` builds standard
shapes deterministically from a seed, and :func:`build_routers` turns a
graph into live :class:`~repro.bgp.router.BgpRouter` instances with
Gao–Rexford policies synthesized from the edge relationships.
"""

from repro.topology.graph import (
    FILTER_MODES,
    LOCAL_PREF,
    PEER,
    TAG,
    TRANSIT,
    AsEdge,
    AsGraph,
    AsNode,
    build_routers,
    render_config,
)
from repro.topology.generators import (
    GENERATORS,
    clique,
    line,
    ring,
    star,
    tiered,
)

__all__ = [
    "AsEdge",
    "AsGraph",
    "AsNode",
    "FILTER_MODES",
    "GENERATORS",
    "LOCAL_PREF",
    "PEER",
    "TAG",
    "TRANSIT",
    "build_routers",
    "clique",
    "line",
    "render_config",
    "ring",
    "star",
    "tiered",
]
