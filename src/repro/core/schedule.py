"""Online scheduling: exploration rounds alongside the running system.

The paper's deployment model pins the live BIRD process and the explorer
on separate cores, with the explorer sharing one core with its clones and
exploration happening "off the critical path" (section 3.2, 4.1).  In the
single-threaded simulator the analogue is interleaving: the scheduler
fires an exploration round every ``interval`` simulated seconds, between
message deliveries.  The live node is paused exactly for the duration of
each round — which is what the CPU benchmark measures as overhead, the
same way the paper measures updates/second with exploration on and off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.concolic.engine import ExplorationBudget
from repro.core.dice import DiCE
from repro.net.node import NodeHost


@dataclass
class ScheduleConfig:
    """When and how much to explore."""

    interval: float = 60.0            # simulated seconds between rounds
    budget: ExplorationBudget = field(
        default_factory=lambda: ExplorationBudget(max_executions=48)
    )
    peer: Optional[str] = None        # restrict seeds to one peer
    max_rounds: Optional[int] = None  # stop after this many rounds
    start_after: float = 0.0          # delay before the first round
    parallel: int = 1                 # worker processes per round (spare cores)
    all_seeds: bool = False           # explore every buffered seed, not one


@dataclass
class ScheduleStats:
    rounds_fired: int = 0
    rounds_skipped: int = 0           # fired with no observed seed yet
    wall_seconds: float = 0.0
    last_fired_at: float = 0.0


class OnlineScheduler:
    """Drives periodic DiCE rounds on the simulator's clock."""

    def __init__(self, host: NodeHost, dice: DiCE, config: Optional[ScheduleConfig] = None):
        self.host = host
        self.dice = dice
        self.config = config or ScheduleConfig()
        self.stats = ScheduleStats()
        self._stopped = False
        self._handle = None

    def start(self) -> None:
        """Arm the first round."""
        self._stopped = False
        delay = self.config.start_after or self.config.interval
        self._handle = self.host.set_timer(delay, self._fire)

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def running(self) -> bool:
        return not self._stopped

    def _fire(self) -> None:
        if self._stopped:
            return
        started = time.perf_counter()
        # Parallel knobs are passed only when set, so DiCE-compatible
        # stand-ins with the original run_round signature keep working.
        kwargs = {}
        if self.config.parallel > 1 or self.config.all_seeds:
            kwargs = {
                "parallel": self.config.parallel,
                "all_seeds": self.config.all_seeds,
            }
        report = self.dice.run_round(
            peer=self.config.peer, budget=self.config.budget, **kwargs
        )
        self.stats.wall_seconds += time.perf_counter() - started
        self.stats.last_fired_at = self.host.sim.now
        if report is None:
            self.stats.rounds_skipped += 1
        else:
            self.stats.rounds_fired += 1
        if (
            self.config.max_rounds is not None
            and self.stats.rounds_fired >= self.config.max_rounds
        ):
            self.stop()
            return
        self._handle = self.host.set_timer(self.config.interval, self._fire)


@dataclass
class ThroughputProbe:
    """Measures live update throughput in wall-clock terms.

    The CPU benchmark wraps a replay with one probe per configuration
    (exploration on / off) and compares ``updates_per_second`` — the
    paper's "number of BGP update messages the DiCE-enabled router
    handles per second".
    """

    updates_processed: int = 0
    wall_seconds: float = 0.0
    _started: float = 0.0

    def __enter__(self) -> "ThroughputProbe":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.wall_seconds = time.perf_counter() - self._started

    @property
    def updates_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.updates_processed / self.wall_seconds


def measure_throughput(
    host: NodeHost,
    router_counters,
    run_until: Optional[float] = None,
) -> ThroughputProbe:
    """Drain the host's event queue, counting the router's update intake."""
    before = router_counters["updates_received"]
    probe = ThroughputProbe()
    with probe:
        if run_until is None:
            host.run()
        else:
            host.run_until(run_until)
    probe.updates_processed = router_counters["updates_received"] - before
    return probe
