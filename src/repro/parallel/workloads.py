"""Importable concolic workloads for parallel benchmarks and tests.

Worker processes rebuild their jobs by unpickling, and pickling a
function stores only its module and qualified name — so programs fanned
out to a pool must live in an importable module, not in a test body or a
benchmark file's local scope.  These mirror the fig1 benchmark's
BGP-shaped handler, scaled so one exploration session is heavy enough to
amortize process startup.
"""

from __future__ import annotations

from repro.concolic.engine import InputSpec, VarSpec


def fig1_handler(inputs):
    """The fig1 benchmark's graded handler: 8 outcomes over two fields."""
    masklen = inputs.masklen
    network = inputs.network
    if masklen > 32:
        return "invalid-length"
    if masklen < 8:
        return "too-coarse"
    if (network >> 24) == 10:
        if masklen >= 24:
            return "private-specific"
        return "private-coarse"
    if (network >> 16) == 0xC0A8:
        return "rfc1918-192"
    if masklen == 32:
        return "host-route"
    if (network & 0xFF) != 0:
        return "unaligned"
    return "accepted"


FIG1_OUTCOMES = {
    "invalid-length", "too-coarse", "private-specific", "private-coarse",
    "rfc1918-192", "host-route", "unaligned", "accepted",
}


def fig1_spec() -> InputSpec:
    return InputSpec([
        VarSpec("network", bits=32, initial=0x0A0A0100),
        VarSpec("masklen", bits=6, initial=24),
    ])


def deep_filter_handler(inputs):
    """A deeper, branch-rich route filter: many paths, long conditions.

    Chains prefix-class, length-class, and attribute checks the way a
    real import filter stacks terms; the cross-product of branch
    outcomes gives the engine enough frontier to keep a worker busy for
    hundreds of executions.
    """
    network = inputs.network
    masklen = inputs.masklen
    med = inputs.med
    score = 0
    if masklen > 32:
        return "invalid"
    if (network >> 24) == 10:
        score += 1
    if (network >> 24) == 127:
        return "loopback"
    if (network >> 20) == 0xAC1:
        score += 2
    if (network >> 16) == 0xC0A8:
        score += 4
    if masklen < 8:
        score += 8
    if masklen >= 28:
        score += 16
    if (network & 0xFF) == 0:
        score += 32
    if med > 1000:
        score += 64
    if med == 0:
        score += 128
    if (network >> 28) >= 0xE:
        return "reserved"
    if score >= 96:
        return "suspicious"
    if score >= 32:
        return "review"
    if score > 0:
        return "tagged"
    return "clean"


def deep_filter_spec() -> InputSpec:
    return InputSpec([
        VarSpec("network", bits=32, initial=0x0A0A0100),
        VarSpec("masklen", bits=6, initial=24),
        VarSpec("med", bits=12, initial=100),
    ])


def wide_filter_handler(inputs):
    """The fig1 handler scaled up: per-nibble classification of the network.

    Each nibble of the address contributes an independent branch, so the
    path space is the cross-product (thousands of feasible paths) and an
    exploration session saturates any execution budget instead of
    exhausting the frontier — the shape needed to measure worker scaling
    rather than startup overhead.
    """
    network = inputs.network
    masklen = inputs.masklen
    score = 0
    if masklen > 32:
        return "invalid-length"
    for shift in (28, 24, 20, 16, 12, 8, 4, 0):
        nibble = (network >> shift) & 0xF
        if nibble >= 8:
            score += 1
        if nibble == 0xF:
            score += 2
    if masklen >= 24:
        score += 4
    if masklen < 8:
        return "too-coarse"
    if score >= 20:
        return "suspicious"
    if score >= 10:
        return "review"
    if score > 0:
        return "tagged"
    return "clean"


def wide_filter_spec() -> InputSpec:
    return InputSpec([
        VarSpec("network", bits=32, initial=0x0A0A0100),
        VarSpec("masklen", bits=6, initial=24),
    ])
