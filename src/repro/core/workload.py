"""Fault, churn & pathology workloads over federated scenarios.

DiCE's exploration asks "what could a peer *say* to this node?".  This
module asks the complementary operational question: "what happens to the
whole federation when the environment misbehaves?" — links fail silently,
prefixes flap, sessions reset mid-convergence, a primary path dies, a
mis-filtered customer leaks, two domains originate the same space, a
policy fix rolls out without route-refresh.

Each :class:`Workload` is a *planner*: given a built scenario it emits a
:class:`WorkloadPlan` — timed :class:`~repro.core.federation.InjectionEvent`\\ s
that the :class:`~repro.core.federation.IsolatedFabric` interleaves with
organic propagation — plus the names of the wave-level invariant
checkers (:mod:`repro.core.checkers`) that judge the aftermath.  A
workload whose pathology cannot exist on a topology (a wedged
withdrawal needs a customer edge to wedge behind) raises
:class:`~repro.util.errors.WorkloadNotApplicable` at planning time; the
scenario matrix reports such cells as *skipped*.

The :class:`ScenarioMatrix` composes the three orthogonal axes —
topology × workload × checker — into runnable cells, each a full
build → converge → explore → inject → check pipeline, runnable serial
or streamed with identical finding sets (the workload wave is always
serial and deterministic).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bgp.attributes import ORIGIN_IGP, AsPath, PathAttributes
from repro.bgp.messages import UpdateMessage
from repro.bgp.nlri import NlriEntry
from repro.concolic.engine import ExplorationBudget
from repro.core.checkers import WAVE_CHECKERS
from repro.core.federation import FabricStats, InjectionEvent, IsolatedFabric
from repro.core.report import Finding
from repro.core.scenario import (
    DEFAULT_SCENARIO_SEED,
    BuiltScenario,
    get_scenario,
)
from repro.topology.graph import LOCAL_PREF, AsGraph, render_config
from repro.util.errors import WorkloadError, WorkloadNotApplicable
from repro.util.ip import Prefix

#: A prefix no scenario originates (generated federations use 10/8,
#: Figure 2 adds 203.0.113/24) — safe for flap storms to churn.
FLAP_PREFIX = Prefix.parse("11.11.0.0/16")


@dataclass
class WorkloadPlan:
    """A concrete, scenario-bound injection schedule plus its verdict rules."""

    name: str
    events: List[InjectionEvent] = field(default_factory=list)
    #: Simulated-seconds convergence deadline the wave is held to.
    deadline: float = 5.0
    #: Wave-checker names (keys of :data:`~repro.core.checkers.WAVE_CHECKERS`)
    #: that judge the post-wave ensemble.
    checkers: Tuple[str, ...] = ()
    #: Human-readable description of what was planned (CLI output).
    notes: str = ""


@dataclass(frozen=True)
class Workload:
    """A named, topology-generic fault/churn pathology.

    ``planner(built)`` binds it to a concrete scenario;
    ``paired_checkers`` are the invariants its pathology violates (the
    default ``--checker`` axis value); ``build_overrides`` are scenario
    build kwargs the workload needs (the route-leak workload forces the
    Gao–Rexford ``filter_mode="erroneous"`` knob).
    """

    name: str
    description: str
    planner: Callable[[BuiltScenario], WorkloadPlan]
    paired_checkers: Tuple[str, ...] = ()
    build_overrides: Mapping[str, object] = field(default_factory=dict)

    def plan(self, built: BuiltScenario) -> WorkloadPlan:
        plan = self.planner(built)
        if not plan.checkers:
            plan.checkers = self.paired_checkers
        for checker in plan.checkers:
            if checker not in WAVE_CHECKERS:
                raise WorkloadError(
                    f"workload {self.name!r} names unknown checker {checker!r}"
                )
        return plan


WORKLOADS: Dict[str, Workload] = {}


def register_workload(workload: Workload, replace_existing: bool = False) -> Workload:
    if workload.name in WORKLOADS and not replace_existing:
        raise WorkloadError(f"workload {workload.name!r} already registered")
    WORKLOADS[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    workload = WORKLOADS.get(name)
    if workload is None:
        raise WorkloadError(
            f"unknown workload {name!r}; registered: {', '.join(sorted(WORKLOADS))}"
        )
    return workload


def list_workloads() -> List[Workload]:
    return [WORKLOADS[name] for name in sorted(WORKLOADS)]


# ---------------------------------------------------------------------------
# Planner helpers.
# ---------------------------------------------------------------------------


def _graph_of(built: BuiltScenario, workload: str) -> AsGraph:
    if built.graph is None:
        raise WorkloadNotApplicable(
            f"workload {workload!r} needs an AS graph; scenario "
            f"{built.name!r} has none"
        )
    return built.graph


def _fabric_nodes(built: BuiltScenario) -> List[str]:
    """Graph nodes that are real routers (fig2's replayer is not)."""
    return sorted(n for n in built.graph.nodes if n in built.routers)


def _at_clone(node: str, action: Callable) -> Callable[[IsolatedFabric], None]:
    """An injection action running ``action(clone_of(node))``."""

    def run(fabric: IsolatedFabric) -> None:
        action(fabric.clone_of(node))

    return run


def _fabricated_withdrawal(
    node: str, peer: str, prefix: Prefix
) -> Callable[[IsolatedFabric], None]:
    """Deliver a withdrawal of ``prefix`` at ``node`` as if from ``peer``."""

    def run(fabric: IsolatedFabric) -> None:
        fabric.inject(
            node, peer, UpdateMessage(withdrawn=[NlriEntry.from_prefix(prefix)])
        )

    return run


def _leak_announcement(
    built: BuiltScenario, graph: AsGraph, target: str, injector: str
) -> Tuple[Prefix, UpdateMessage]:
    """An exact-prefix hijack announcement ``injector`` -> ``target``.

    Picks a victim prefix originated by a third party outside the
    injector's customer cone, 16–24 bits long — inside the sloppy
    disjunct of the ``erroneous`` Gao–Rexford customer filter, so a
    mis-filtered import accepts it — and *preferred over the target's
    current route* (higher local-pref by relation, or shorter AS path
    at equal pref): a leak that loses the decision process perturbs
    nothing.
    """
    relation = next(
        (rel for peer, rel, _ in graph.neighbors(target) if peer == injector),
        None,
    )
    if relation is None:
        raise WorkloadNotApplicable(
            f"{injector!r} is not a neighbor of {target!r}"
        )
    leak_pref = LOCAL_PREF[relation]
    router = built.routers[target]
    # Cone exclusion only means something for customer injectors: a
    # correct customer filter admits exactly the cone, so a leak must sit
    # outside it.  Peer/provider imports are not cone-filtered under
    # Gao–Rexford; any third party's space is a hijack from them.
    cone = (
        set(graph.customer_cone(injector)) if relation == "customer" else set()
    )
    for name in sorted(graph.nodes):
        if name in (target, injector):
            continue
        node = graph.nodes[name]
        for prefix in node.networks:
            if prefix in cone or not 16 <= prefix.length <= 24:
                continue
            current = router.loc_rib.get(prefix)
            if current is not None:
                current_pref = current.attributes.local_pref
                current_pref = 100 if current_pref is None else current_pref
                current_len = len(current.attributes.as_path)
                # Mirror the decision ladder: local-pref, AS-path length,
                # then (several always-tied steps later) lowest peer id.
                leak_rank = (leak_pref, -1, injector)
                current_rank = (
                    current_pref, -current_len, current.peer or ""
                )
                wins = (
                    leak_rank[:2] > current_rank[:2]
                    or (leak_rank[:2] == current_rank[:2]
                        and injector < (current.peer or ""))
                )
                if not wins:
                    continue  # the leak would lose the decision process
            update = UpdateMessage(
                attributes=PathAttributes(
                    # ORIGIN_IGP keeps the decision ladder's origin step a
                    # tie against legitimately originated routes, so the
                    # pref/length/peer-id ranking above actually decides.
                    origin=ORIGIN_IGP,
                    as_path=AsPath.sequence([graph.nodes[injector].asn]),
                    next_hop=graph.nodes[injector].router_id,
                ),
                nlri=[NlriEntry.from_prefix(prefix)],
            )
            return prefix, update
    raise WorkloadNotApplicable(
        f"no winnable victim prefix outside {injector!r}'s cone at {target!r}"
    )


# ---------------------------------------------------------------------------
# The workload library.
# ---------------------------------------------------------------------------


def _plan_baseline(built: BuiltScenario) -> WorkloadPlan:
    """No injections: every paired checker must stay silent."""
    return WorkloadPlan(
        name="baseline",
        events=[],
        notes="clean wave — all checkers must stay silent",
    )


def _plan_link_failure(built: BuiltScenario) -> WorkloadPlan:
    """A silent link cut wedges a withdrawal behind it.

    Shape: relay ``b`` has a customer ``a`` (so ``b`` exports everything
    down to it) and another neighbor ``c`` that originates address
    space.  The ``a``–``b`` link fails *silently* (no session teardown),
    then ``c`` withdraws its origination: the withdrawal reaches ``b``
    but dies on the cut link, leaving ``a`` with a stale route its
    neighbor no longer carries — the no-stuck-routes pathology.
    """
    graph = _graph_of(built, "link-failure")
    nodes = _fabric_nodes(built)
    for b in nodes:
        customers = [a for a in graph.customers_of(b) if a in built.routers]
        if not customers:
            continue
        a = customers[0]
        others = [
            peer for peer, _, _ in graph.neighbors(b)
            if peer != a and peer in built.routers and graph.nodes[peer].networks
        ]
        if not others:
            continue
        c = others[0]
        victim = graph.nodes[c].networks[0]
        return WorkloadPlan(
            name="link-failure",
            events=[
                InjectionEvent(
                    at=0.01,
                    label=f"silently cut link {a}<->{b}",
                    action=lambda fabric, a=a, b=b: fabric.fail_link(a, b),
                ),
                InjectionEvent(
                    at=0.02,
                    label=f"{c} withdraws origination of {victim}",
                    action=_at_clone(
                        c, lambda clone, p=victim: clone.withdraw_origination(p)
                    ),
                ),
            ],
            notes=(
                f"cut {a}<->{b}, then {c} withdraws {victim}; the withdrawal "
                f"wedges behind the dead link, sticking the route at {a}"
            ),
        )
    raise WorkloadNotApplicable(
        "link-failure needs a relay with a customer below and a "
        "networks-bearing neighbor beside (no transit edges here)"
    )


def _plan_flap_storm(built: BuiltScenario) -> WorkloadPlan:
    """Rapid announce/withdraw churn that blows the convergence deadline.

    Eight alternating originations/withdrawals of a fresh prefix at
    80 ms intervals — each round re-floods the federation, so quiescence
    arrives long after the 200 ms deadline the plan sets.  The storm
    ends on a withdrawal, leaving no residue for other checkers.
    """
    graph = _graph_of(built, "flap-storm")
    candidates = [n for n in _fabric_nodes(built) if graph.neighbors(n)]
    if not candidates:
        raise WorkloadNotApplicable("flap-storm needs a connected node")
    origin = candidates[0]
    events = []
    for i in range(8):
        if i % 2 == 0:
            action = _at_clone(
                origin, lambda clone: clone.originate(FLAP_PREFIX)
            )
            label = f"flap {i}: {origin} originates {FLAP_PREFIX}"
        else:
            action = _at_clone(
                origin, lambda clone: clone.withdraw_origination(FLAP_PREFIX)
            )
            label = f"flap {i}: {origin} withdraws {FLAP_PREFIX}"
        events.append(InjectionEvent(at=0.01 + 0.08 * i, label=label, action=action))
    return WorkloadPlan(
        name="flap-storm",
        events=events,
        deadline=0.2,
        notes=(
            f"{origin} flaps {FLAP_PREFIX} 8 times at 80ms intervals; "
            "the storm outlasts the 200ms convergence deadline"
        ),
    )


def _plan_session_reset(built: BuiltScenario) -> WorkloadPlan:
    """Both ends of a session reset mid-convergence.

    NOTIFICATIONs land at the two endpoints of one edge 5 ms apart (the
    second arrives while the first teardown's withdrawals are still
    propagating).  Both sides flush the session's routes and the
    session stays down; prefixes whose only path crossed the edge
    vanish while their origins still advertise them — blackholes.
    """
    graph = _graph_of(built, "session-reset")
    edges = [
        edge for edge in graph.edges
        if edge.a in built.routers and edge.b in built.routers
    ]
    transit = [e for e in edges if e.kind == "transit"]
    if not edges:
        raise WorkloadNotApplicable("session-reset needs an in-fabric edge")
    edge = (transit or edges)[0]
    return WorkloadPlan(
        name="session-reset",
        events=[
            InjectionEvent(
                at=0.01,
                label=f"NOTIFICATION at {edge.a} from {edge.b}",
                action=lambda fabric, a=edge.a, b=edge.b: fabric.reset_session(a, b),
            ),
            InjectionEvent(
                at=0.015,
                label=f"NOTIFICATION at {edge.b} from {edge.a}",
                action=lambda fabric, a=edge.a, b=edge.b: fabric.reset_session(b, a),
            ),
        ],
        notes=(
            f"session {edge.a}<->{edge.b} torn down from both ends "
            "mid-convergence; routes through it are flushed with no recovery"
        ),
    )


def _plan_failover(built: BuiltScenario) -> WorkloadPlan:
    """The primary path to a prefix dies; does a backup take over?

    A fabricated withdrawal of a node's own prefix lands at its primary
    provider (as if the origin withdrew it there) while the origin keeps
    originating.  Multihomed origins survive — the provider falls back
    to the path via its peer and nothing blackholes; single-homed
    origins leave every upstream node holding no route to
    still-advertised space.
    """
    graph = _graph_of(built, "failover")
    for m in _fabric_nodes(built):
        node = graph.nodes[m]
        if not node.networks:
            continue
        uplinks = [
            p for p in graph.providers_of(m) + graph.peers_of(m)
            if p in built.routers
        ]
        if not uplinks:
            continue
        primary = uplinks[0]
        prefix = node.networks[0]
        degree = len(uplinks)
        return WorkloadPlan(
            name="failover",
            events=[
                InjectionEvent(
                    at=0.01,
                    label=f"primary path {primary}<-{m} loses {prefix}",
                    action=_fabricated_withdrawal(primary, m, prefix),
                ),
            ],
            notes=(
                f"{prefix} withdrawn from primary uplink {primary!r}; origin "
                f"{m!r} has {degree} uplink(s) — "
                + ("backup should absorb it" if degree > 1
                   else "no backup exists, upstream tables blackhole")
            ),
        )
    raise WorkloadNotApplicable(
        "failover needs a networks-bearing node with an uplink"
    )


def _plan_route_leak(built: BuiltScenario) -> WorkloadPlan:
    """A mis-filtered import accepts an exact-prefix hijack mid-wave.

    Built with ``filter_mode="erroneous"`` (the Gao–Rexford knob): the
    customer filter's sloppy length disjunct accepts a third party's
    /16.  The victim's own static route keeps claiming the space, so
    the federation ends in standing origin disagreement.
    """
    graph = _graph_of(built, "route-leak")
    for target in _fabric_nodes(built):
        injectors = [
            k for k in graph.customers_of(target) if k in built.routers
        ] + [
            peer for peer, rel, _ in graph.neighbors(target)
            if rel != "customer" and peer in built.routers
        ]
        for injector in injectors:
            try:
                victim, update = _leak_announcement(
                    built, graph, target, injector
                )
            except WorkloadNotApplicable:
                continue
            break
        else:
            continue
        return WorkloadPlan(
            name="route-leak",
            events=[
                InjectionEvent(
                    at=0.01,
                    label=f"{injector} leaks {victim} to {target}",
                    action=lambda fabric, t=target, i=injector, u=update:
                        fabric.inject(t, i, u),
                ),
            ],
            notes=(
                f"{injector} announces {victim} (someone else's space) to "
                f"{target}; the erroneous filter accepts it"
            ),
        )
    raise WorkloadNotApplicable(
        "route-leak needs an injector neighbor and a third-party victim prefix"
    )


def _plan_moas_conflict(built: BuiltScenario) -> WorkloadPlan:
    """Two domains originate the same prefix (a MOAS conflict)."""
    graph = _graph_of(built, "moas-conflict")
    owners = [
        n for n in _fabric_nodes(built) if graph.nodes[n].networks
    ]
    if len(owners) < 2:
        raise WorkloadNotApplicable(
            "moas-conflict needs two networks-bearing nodes"
        )
    x, y = owners[0], owners[-1]
    prefix = graph.nodes[x].networks[0]
    return WorkloadPlan(
        name="moas-conflict",
        events=[
            InjectionEvent(
                at=0.01,
                label=f"{y} also originates {prefix} (owned by {x})",
                action=_at_clone(y, lambda clone, p=prefix: clone.originate(p)),
            ),
        ],
        notes=(
            f"{y} starts originating {x}'s {prefix}; both static routes win "
            "locally, so the two domains' origin views permanently disagree"
        ),
    )


def _plan_policy_rollout(built: BuiltScenario) -> WorkloadPlan:
    """A filter fix rolls out node by node — without route-refresh.

    A leak is accepted under the erroneous filter, then every
    customer-filtering node hot-swaps to the *corrected* configuration,
    staggered 50 ms apart.  :meth:`~repro.bgp.router.BgpRouter.apply_config`
    deliberately does not revalidate Adj-RIB-In, so the already-accepted
    leaked route lingers after the fix — the classic "config is correct
    but the table is not" pathology, visible as standing origin
    disagreement.
    """
    graph = _graph_of(built, "policy-rollout")
    providers = [
        n for n in _fabric_nodes(built)
        if any(c in built.routers for c in graph.customers_of(n))
    ]
    if not providers:
        raise WorkloadNotApplicable(
            "policy-rollout needs customer-filtering nodes (transit edges)"
        )
    target = injector = None
    victim = update = None
    for candidate in providers:
        for customer in graph.customers_of(candidate):
            if customer not in built.routers:
                continue
            try:
                victim, update = _leak_announcement(
                    built, graph, candidate, customer
                )
            except WorkloadNotApplicable:
                continue
            target, injector = candidate, customer
            break
        if target is not None:
            break
    if target is None:
        raise WorkloadNotApplicable(
            "policy-rollout found no customer leak that wins the decision "
            "process anywhere"
        )
    events = [
        InjectionEvent(
            at=0.01,
            label=f"{injector} leaks {victim} to {target} (pre-rollout)",
            action=lambda fabric, t=target, i=injector, u=update:
                fabric.inject(t, i, u),
        ),
    ]
    # Render each corrected config at *plan* time: flip the graph node's
    # filter knob, render, restore — the plan carries finished config
    # text, so injection actions stay cheap and deterministic.
    for index, name in enumerate(providers):
        node = graph.nodes[name]
        previous = node.filter_mode
        node.filter_mode = "correct"
        try:
            corrected = render_config(graph, name)
        finally:
            node.filter_mode = previous
        events.append(
            InjectionEvent(
                at=0.05 + 0.05 * index,
                label=f"rollout: {name} applies corrected filter",
                action=_at_clone(
                    name, lambda clone, cfg=corrected: clone.apply_config(cfg)
                ),
            )
        )
    return WorkloadPlan(
        name="policy-rollout",
        events=events,
        notes=(
            f"leak accepted at {target}, then {len(providers)} node(s) "
            "hot-swap to corrected filters; without route-refresh the "
            "stale leaked route survives the fix"
        ),
    )


register_workload(Workload(
    "baseline",
    "no injections — every checker must stay silent on a healthy wave",
    _plan_baseline,
    paired_checkers=(
        "convergence-deadline", "no-stuck-routes", "no-blackhole",
        "origin-agreement",
    ),
))
register_workload(Workload(
    "link-failure",
    "silent link cut wedges a withdrawal, sticking a stale route",
    _plan_link_failure,
    paired_checkers=("no-stuck-routes",),
))
register_workload(Workload(
    "flap-storm",
    "rapid announce/withdraw churn that blows the convergence deadline",
    _plan_flap_storm,
    paired_checkers=("convergence-deadline",),
))
register_workload(Workload(
    "session-reset",
    "both ends of a session reset mid-convergence, blackholing prefixes",
    _plan_session_reset,
    paired_checkers=("no-blackhole",),
))
register_workload(Workload(
    "failover",
    "primary path to a prefix dies; multihomed origins survive, "
    "single-homed ones blackhole",
    _plan_failover,
    paired_checkers=("no-blackhole",),
))
register_workload(Workload(
    "route-leak",
    "erroneous customer filter accepts an exact-prefix hijack mid-wave",
    _plan_route_leak,
    paired_checkers=("origin-agreement",),
    build_overrides={"filter_mode": "erroneous"},
))
register_workload(Workload(
    "moas-conflict",
    "two domains originate the same prefix; origin views never reconcile",
    _plan_moas_conflict,
    paired_checkers=("origin-agreement",),
))
register_workload(Workload(
    "policy-rollout",
    "rolling filter fix without route-refresh leaves a stale leaked route",
    _plan_policy_rollout,
    paired_checkers=("origin-agreement",),
    build_overrides={"filter_mode": "erroneous"},
))


# ---------------------------------------------------------------------------
# The scenario matrix: topology x workload x checker.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MatrixCell:
    """One (topology, workload, checkers) combination to run."""

    topology: str
    workload: str
    checkers: Tuple[str, ...]
    seed: int = DEFAULT_SCENARIO_SEED

    def key(self) -> str:
        return f"{self.topology}/{self.workload}"


@dataclass
class CellResult:
    """Outcome of one matrix cell."""

    cell: MatrixCell
    status: str                              # "ok" | "skipped" | "error"
    findings: List[Finding] = field(default_factory=list)
    stats: Optional[FabricStats] = None
    notes: str = ""
    skip_reason: str = ""
    error: str = ""
    wall_seconds: float = 0.0
    #: Exploration-side finding keys (for serial/stream parity checks).
    finding_keys: List[tuple] = field(default_factory=list)

    @property
    def fired(self) -> bool:
        return bool(self.findings)

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "cell": self.cell.key(),
            "status": self.status,
            "findings": len(self.findings),
            "wall_seconds": round(self.wall_seconds, 4),
        }
        if self.stats is not None:
            out["injected"] = self.stats.injected_events
            out["delivered"] = self.stats.delivered
            out["events"] = self.stats.events
            out["sim_seconds"] = round(self.stats.sim_seconds, 4)
        if self.skip_reason:
            out["skip_reason"] = self.skip_reason
        if self.error:
            out["error"] = self.error
        return out


class ScenarioMatrix:
    """Enumerate and run (topology × workload × checker) combinations.

    ``checkers=None`` pairs each workload with its declared checkers
    (the curated matrix); an explicit checker list overrides the pairing
    for every cell — the orthogonal-axes mode.

    Each cell is independent: build the topology (with the workload's
    build overrides), converge it live, explore the scenario's seed
    corpus through the federated engines (serial or streamed —
    ``stream``/``workers`` pass straight through, and finding parity is
    preserved because the workload wave itself is always serial), then
    run the workload wave on a fresh fabric and judge it.
    """

    def __init__(
        self,
        topologies: Sequence[str],
        workloads: Sequence[str],
        checkers: Optional[Sequence[str]] = None,
        seed: int = DEFAULT_SCENARIO_SEED,
        budget: Optional[ExplorationBudget] = None,
        workers: int = 1,
        stream: bool = False,
        max_seeds: Optional[int] = None,
    ):
        self.topologies = list(topologies)
        self.workloads = list(workloads)
        self.checkers = tuple(checkers) if checkers is not None else None
        self.seed = seed
        self.budget = budget
        self.workers = workers
        self.stream = stream
        self.max_seeds = max_seeds
        # Fail fast on unknown axis values, before any cell builds.
        for name in self.topologies:
            get_scenario(name)
        for name in self.workloads:
            get_workload(name)
        for name in self.checkers or ():
            if name not in WAVE_CHECKERS:
                raise WorkloadError(
                    f"unknown checker {name!r}; registered: "
                    f"{', '.join(sorted(WAVE_CHECKERS))}"
                )

    def cells(self) -> List[MatrixCell]:
        return [
            MatrixCell(
                topology=topology,
                workload=workload,
                checkers=(
                    self.checkers
                    if self.checkers is not None
                    else get_workload(workload).paired_checkers
                ),
                seed=self.seed,
            )
            for topology in self.topologies
            for workload in self.workloads
        ]

    def run_cell(self, cell: MatrixCell) -> CellResult:
        started = time.perf_counter()
        workload = get_workload(cell.workload)
        try:
            built = get_scenario(cell.topology).build(
                cell.seed, **workload.build_overrides
            )
            built.converge()
            try:
                plan = workload.plan(built)
            except WorkloadNotApplicable as exc:
                return CellResult(
                    cell=cell,
                    status="skipped",
                    skip_reason=str(exc),
                    wall_seconds=time.perf_counter() - started,
                )
            plan = replace(plan, checkers=cell.checkers)
            federation = built.federation()
            seeds = built.seed_corpus()
            if self.max_seeds is not None:
                seeds = seeds[: self.max_seeds]
            if seeds:
                report = federation.explore(
                    seeds,
                    budget=self.budget,
                    workers=self.workers,
                    stream=self.stream,
                    workload=plan,
                )
                findings = report.workload_findings
                stats = report.workload_stats
                finding_keys = report.finding_keys()
            else:
                findings, stats = federation.run_workload(plan)
                finding_keys = sorted(
                    ((f.node, f.dedup_key()) for f in findings), key=repr
                )
            return CellResult(
                cell=cell,
                status="ok",
                findings=findings,
                stats=stats,
                notes=plan.notes,
                wall_seconds=time.perf_counter() - started,
                finding_keys=finding_keys,
            )
        except Exception as exc:  # a crashed cell must not sink the matrix
            return CellResult(
                cell=cell,
                status="error",
                error=f"{type(exc).__name__}: {exc}",
                wall_seconds=time.perf_counter() - started,
            )

    def run(
        self,
        progress: Optional[Callable[[CellResult], None]] = None,
    ) -> List[CellResult]:
        results = []
        for cell in self.cells():
            result = self.run_cell(cell)
            results.append(result)
            if progress is not None:
                progress(result)
        return results
