"""A simplified MRT-like trace record format.

The paper replays "a full dump plus 15-min updates trace" from
RouteViews (route-views.eqix, 2010-04-01).  Real MRT is a container
format with many subtypes; our traces need exactly two record kinds —
announce and withdraw — each carrying a timestamp, a prefix, and (for
announcements) the path attributes.  Records serialize to a compact
binary form so traces are real on-disk artifacts that can be written,
shipped, and re-read, not just in-memory lists.

Layout::

    file   := magic "DMRT" | version u16 | count u32 | record*
    record := timestamp f64 | kind u8 | masklen u8 | network u32
              | attr_len u16 | attributes bytes
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.bgp.attributes import PathAttributes, decode_attributes, encode_attributes
from repro.util.errors import WireFormatError
from repro.util.ip import Prefix

MAGIC = b"DMRT"
VERSION = 1

KIND_ANNOUNCE = 1
KIND_WITHDRAW = 2

_HEADER = struct.Struct(">4sHI")
_RECORD_FIXED = struct.Struct(">dBBIH")


@dataclass
class TraceRecord:
    """One routing event: an announcement or a withdrawal."""

    timestamp: float
    kind: int
    prefix: Prefix
    attributes: Optional[PathAttributes] = None

    def __post_init__(self) -> None:
        if self.kind not in (KIND_ANNOUNCE, KIND_WITHDRAW):
            raise WireFormatError(f"unknown trace record kind {self.kind}")
        if self.kind == KIND_ANNOUNCE and self.attributes is None:
            raise WireFormatError("announce records require attributes")

    @property
    def is_announce(self) -> bool:
        return self.kind == KIND_ANNOUNCE

    @classmethod
    def announce(
        cls, timestamp: float, prefix: Prefix, attributes: PathAttributes
    ) -> "TraceRecord":
        return cls(timestamp, KIND_ANNOUNCE, prefix, attributes)

    @classmethod
    def withdraw(cls, timestamp: float, prefix: Prefix) -> "TraceRecord":
        return cls(timestamp, KIND_WITHDRAW, prefix)

    def origin_as(self) -> Optional[int]:
        if self.attributes is None:
            return None
        origin = self.attributes.as_path.origin_as()
        return None if origin is None else int(origin)


def write_trace(records: List[TraceRecord]) -> bytes:
    """Serialize records to the binary trace format."""
    out = bytearray(_HEADER.pack(MAGIC, VERSION, len(records)))
    for record in records:
        attr_bytes = (
            encode_attributes(record.attributes) if record.attributes is not None else b""
        )
        out.extend(
            _RECORD_FIXED.pack(
                record.timestamp,
                record.kind,
                record.prefix.length,
                record.prefix.network,
                len(attr_bytes),
            )
        )
        out.extend(attr_bytes)
    return bytes(out)


def iter_trace(data: bytes) -> Iterator[TraceRecord]:
    """Stream records from serialized trace bytes."""
    if len(data) < _HEADER.size:
        raise WireFormatError("trace shorter than header")
    magic, version, count = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise WireFormatError(f"bad trace magic {magic!r}")
    if version != VERSION:
        raise WireFormatError(f"unsupported trace version {version}")
    offset = _HEADER.size
    for _ in range(count):
        if offset + _RECORD_FIXED.size > len(data):
            raise WireFormatError("truncated trace record")
        timestamp, kind, masklen, network, attr_len = _RECORD_FIXED.unpack_from(
            data, offset
        )
        offset += _RECORD_FIXED.size
        attributes: Optional[PathAttributes] = None
        if attr_len:
            if offset + attr_len > len(data):
                raise WireFormatError("truncated trace attributes")
            attributes = decode_attributes(data[offset:offset + attr_len])
            offset += attr_len
        yield TraceRecord(timestamp, kind, Prefix(network, masklen), attributes)


def read_trace(data: bytes) -> List[TraceRecord]:
    """All records of a serialized trace."""
    return list(iter_trace(data))


@dataclass
class Trace:
    """A full trace: the table dump plus the timed update stream."""

    dump: List[TraceRecord] = field(default_factory=list)
    updates: List[TraceRecord] = field(default_factory=list)

    @property
    def duration(self) -> float:
        if not self.updates:
            return 0.0
        return self.updates[-1].timestamp - self.updates[0].timestamp

    def prefixes(self) -> set:
        return {record.prefix for record in self.dump}

    def serialize(self) -> bytes:
        """One byte blob: dump records (t=0) then updates, concatenated."""
        return write_trace(self.dump + self.updates)

    @classmethod
    def deserialize(cls, data: bytes) -> "Trace":
        """Split on timestamp: t == 0 records form the dump."""
        dump: List[TraceRecord] = []
        updates: List[TraceRecord] = []
        for record in iter_trace(data):
            (dump if record.timestamp == 0.0 else updates).append(record)
        return cls(dump, updates)
