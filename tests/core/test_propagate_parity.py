"""Finding-set parity across execution modes with all cache layers hot.

The propagate-stage overhaul (domain-box memoization, semantic
subsumption lookups, batched sibling negations) must not change *what*
exploration finds — only how fast.  This pins ``finding_keys()``
equality across serial, batch-parallel, and streamed runs of the same
corpus with the default configuration, i.e. with the node memos and the
semantic cache enabled (memoization is process-global and always on
outside ``propagate_memo_disabled`` blocks).
"""

import pytest

from repro.concolic import ExplorationBudget
from repro.core import get_scenario

BUDGET = ExplorationBudget(max_executions=4)


@pytest.fixture(scope="module")
def tiered_built():
    built = get_scenario("tiered-8").build(seed=42)
    built.converge()
    return built


@pytest.fixture(scope="module")
def serial_report(tiered_built):
    return tiered_built.federation().explore(
        tiered_built.seed_corpus(), budget=BUDGET, workers=1, force_serial=True
    )


class TestModeParity:
    def test_batch_matches_serial(self, tiered_built, serial_report):
        report = tiered_built.federation().explore(
            tiered_built.seed_corpus(), budget=BUDGET, workers=2
        )
        assert report.finding_keys() == serial_report.finding_keys()

    def test_stream_matches_serial(self, tiered_built, serial_report):
        report = tiered_built.federation().explore(
            tiered_built.seed_corpus(),
            budget=BUDGET,
            workers=2,
            stream=True,
            force_serial=True,
        )
        assert report.finding_keys() == serial_report.finding_keys()
        # The overhaul's counters surface in the streamed summary.
        summary = report.stream_summary
        for key in (
            "semantic_lookups",
            "semantic_hits",
            "propagate_memo_hits",
            "propagate_memo_misses",
        ):
            assert key in summary
        assert summary["propagate_memo_hits"] > 0

    def test_serial_rerun_is_stable(self, tiered_built, serial_report):
        """Memo/semantic state warmed by earlier runs must not leak into
        results: a fresh serial run still produces the same findings."""
        report = tiered_built.federation().explore(
            tiered_built.seed_corpus(), budget=BUDGET, workers=1, force_serial=True
        )
        assert report.finding_keys() == serial_report.finding_keys()
