"""Tests for findings and session reports."""

from repro.concolic.engine import ExplorationReport
from repro.core.report import Finding, FindingKind, SessionReport, Severity
from repro.util.ip import Prefix

P = Prefix.parse


def hijack(prefix="10.0.0.0/8", expected=100, observed=200, summary="leak"):
    return Finding(
        kind=FindingKind.PREFIX_HIJACK,
        severity=Severity.CRITICAL,
        summary=summary,
        prefix=P(prefix),
        peer="customer",
        expected_origin=expected,
        observed_origin=observed,
        assignment=(("nlri_network", 1), ("nlri_masklen", 8)),
    )


class TestFinding:
    def test_describe_contains_essentials(self):
        text = hijack().describe()
        assert "CRITICAL" in text
        assert "prefix-hijack" in text
        assert "10.0.0.0/8" in text
        assert "AS100 -> AS200" in text
        assert "nlri_masklen=8" in text

    def test_dedup_key_ignores_input_assignment(self):
        a = hijack()
        b = Finding(
            kind=FindingKind.PREFIX_HIJACK,
            severity=Severity.CRITICAL,
            summary="leak",
            prefix=P("10.0.0.0/8"),
            peer="customer",
            expected_origin=100,
            observed_origin=200,
            assignment=(("nlri_network", 99),),  # different trigger input
        )
        assert a.dedup_key() == b.dedup_key()

    def test_dedup_key_distinguishes_prefixes_and_origins(self):
        assert hijack().dedup_key() != hijack(prefix="11.0.0.0/8").dedup_key()
        assert hijack().dedup_key() != hijack(observed=300).dedup_key()

    def test_crash_dedup_uses_summary(self):
        a = Finding(FindingKind.HANDLER_CRASH, Severity.CRITICAL, "TypeError: x")
        b = Finding(FindingKind.HANDLER_CRASH, Severity.CRITICAL, "KeyError: y")
        same = Finding(FindingKind.HANDLER_CRASH, Severity.CRITICAL, "TypeError: x")
        assert a.dedup_key() != b.dedup_key()
        assert a.dedup_key() == same.dedup_key()

    def test_severity_ordering(self):
        assert Severity.CRITICAL > Severity.WARNING > Severity.INFO


class TestSessionReport:
    def make_report(self, findings):
        return SessionReport(
            peer="customer",
            model_name="selective",
            exploration=ExplorationReport(executions=5, unique_paths=3),
            findings=findings,
        )

    def test_unique_findings_deduplicate(self):
        report = self.make_report([hijack(), hijack(), hijack("11.0.0.0/8")])
        assert len(report.unique_findings()) == 2

    def test_hijack_findings_filters_kind(self):
        crash = Finding(FindingKind.HANDLER_CRASH, Severity.CRITICAL, "boom")
        report = self.make_report([hijack(), crash])
        assert len(report.hijack_findings()) == 1
        assert len(report.unique_findings()) == 2

    def test_leaked_prefixes_sorted_unique(self):
        report = self.make_report(
            [hijack("11.0.0.0/8"), hijack("10.0.0.0/8"), hijack("10.0.0.0/8")]
        )
        assert [str(p) for p in report.leaked_prefixes()] == [
            "10.0.0.0/8", "11.0.0.0/8"
        ]

    def test_summary_shape(self):
        summary = self.make_report([hijack()]).summary()
        assert summary["peer"] == "customer"
        assert summary["executions"] == 5
        assert summary["findings"] == 1
        assert summary["hijacks"] == 1
