"""Privacy-preserving cross-domain state checking (paper section 2.4).

Federated systems will not share raw state: "competitive concerns are
likely to induce individual providers to keep private much of their
current state and configuration ... we would want to control the
information shared across domains and ensure that nodes only communicate
state information through a narrow interface yet capable to allow us to
detect faults."

The narrow interface implemented here is the **origin digest**: for each
Loc-RIB entry a node publishes ``H(salt || prefix) -> H(salt || prefix ||
origin_as)``.  Two domains using the same per-check salt can find the
prefixes on which their origin views *disagree* (same prefix digest,
different origin digest) while learning nothing about prefixes the other
side doesn't also carry, and nothing about each other's policies.  Only
the domain that owns a prefix can map a digest back to it (it can just
re-hash its own table), which is exactly who needs to act on a finding.

:class:`PrivacyGuard` is the enforcement half: it wraps a router and
refuses any attempt to export raw configuration or RIB contents across a
domain boundary.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.bgp.router import BgpRouter
from repro.bgp.wire import as_concrete_int
from repro.util.errors import PrivacyViolation
from repro.util.ip import Prefix

DIGEST_SIZE = 16

# Digest memo: a federation-wide compare hashes the same few hundred
# (prefix, origin) pairs once per *node* per wave stage — at 200 domains
# that is ~160k blake2b calls for ~800 distinct values.  Both functions
# are pure in (salt, prefix[, origin]), so the memo is transparent; it
# is cleared wholesale if it ever fills (salts rotate rarely in
# practice, so eviction pressure is negligible).
_DIGEST_MEMO_MAX = 1 << 16
_PREFIX_MEMO: Dict[Tuple[bytes, int, int], bytes] = {}
_ORIGIN_MEMO: Dict[Tuple[bytes, int, int, int], bytes] = {}


def _hash(salt: bytes, *parts: bytes) -> bytes:
    digest = hashlib.blake2b(digest_size=DIGEST_SIZE)
    digest.update(salt)
    for part in parts:
        digest.update(b"\x00")
        digest.update(part)
    return digest.digest()


def prefix_digest(salt: bytes, prefix: Prefix) -> bytes:
    key = (salt, prefix.network, prefix.length)
    digest = _PREFIX_MEMO.get(key)
    if digest is None:
        if len(_PREFIX_MEMO) >= _DIGEST_MEMO_MAX:
            _PREFIX_MEMO.clear()
        digest = _PREFIX_MEMO[key] = _hash(
            salt, prefix.network.to_bytes(4, "big"), bytes((prefix.length,))
        )
    return digest


def origin_digest(salt: bytes, prefix: Prefix, origin_asn: int) -> bytes:
    key = (salt, prefix.network, prefix.length, origin_asn)
    digest = _ORIGIN_MEMO.get(key)
    if digest is None:
        if len(_ORIGIN_MEMO) >= _DIGEST_MEMO_MAX:
            _ORIGIN_MEMO.clear()
        digest = _ORIGIN_MEMO[key] = _hash(
            salt,
            prefix.network.to_bytes(4, "big"),
            bytes((prefix.length,)),
            origin_asn.to_bytes(4, "big"),
        )
    return digest


@dataclass
class OriginDigest:
    """One domain's publishable view: prefix digest -> origin digest."""

    salt: bytes
    entries: Dict[bytes, bytes] = field(default_factory=dict)

    @classmethod
    def from_router(cls, router: BgpRouter, salt: bytes) -> "OriginDigest":
        digest = cls(salt)
        local_asn = router.config.asn
        for prefix, route in router.loc_rib.items():
            origin = route.origin_as()
            origin_asn = local_asn if origin is None else as_concrete_int(origin)
            digest.entries[prefix_digest(salt, prefix)] = origin_digest(
                salt, prefix, origin_asn
            )
        return digest

    def __len__(self) -> int:
        return len(self.entries)


def digest_conflicts(a: OriginDigest, b: OriginDigest) -> Iterator[bytes]:
    """Prefix digests on which the two domains disagree about the origin."""
    if a.salt != b.salt:
        raise PrivacyViolation("digest comparison requires a shared per-check salt")
    for key, value in a.entries.items():
        other = b.entries.get(key)
        if other is not None and other != value:
            yield key


def conflict_pairs(
    digests: Dict[str, OriginDigest]
) -> Dict[Tuple[str, str], List[bytes]]:
    """All pairwise origin disagreements across many domains, via one index.

    Equivalent to running :func:`digest_conflicts` over every pair of
    domains — the same ``(a, b) -> conflicting prefix digests`` result,
    with ``a < b`` lexicographically — but built from a single inverted
    ``prefix digest -> origin digest -> carriers`` index, so the cost is
    O(total table entries + conflicts) instead of O(domains² · table).
    At federation scale the pairwise walk is what turned a 1000-AS check
    into a timeout: ~500k pair comparisons, each iterating a full table,
    for the common case of *zero* disagreement.

    Deterministic: pairs come back sorted, and each pair's digest list
    follows the first carrier's table order.
    """
    salts = {digest.salt for digest in digests.values()}
    if len(salts) > 1:
        raise PrivacyViolation("digest comparison requires a shared per-check salt")
    index: Dict[bytes, Dict[bytes, List[str]]] = {}
    for node in sorted(digests):
        for key, value in digests[node].entries.items():
            index.setdefault(key, {}).setdefault(value, []).append(node)
    per_pair: Dict[Tuple[str, str], List[bytes]] = {}
    for key, groups in index.items():
        if len(groups) < 2:
            continue
        carriers = list(groups.values())
        for i, group in enumerate(carriers):
            for other in carriers[i + 1:]:
                for a in group:
                    for b in other:
                        pair = (a, b) if a < b else (b, a)
                        per_pair.setdefault(pair, []).append(key)
    return dict(sorted(per_pair.items()))


def resolve_digest(
    router: BgpRouter, salt: bytes, target: bytes
) -> Optional[Prefix]:
    """Map a prefix digest back to a prefix — only over one's *own* table.

    This is the owning domain's decode step for acting on a finding; it
    cannot reveal anything about another domain's table.
    """
    for prefix, _ in router.loc_rib.items():
        if prefix_digest(salt, prefix) == target:
            return prefix
    return None


class PrivacyGuard:
    """Enforces that only digests leave an administrative domain.

    The guard exposes the narrow interface (:meth:`publish_digest`) and
    hard-fails on anything that would export raw private state, making
    the boundary auditable in tests.
    """

    #: Attribute names that constitute raw private state.
    _FORBIDDEN = ("config", "loc_rib", "adj_rib_in", "adj_rib_out", "sessions")

    def __init__(self, router: BgpRouter, domain: str):
        self._router = router
        self.domain = domain

    def publish_digest(self, salt: bytes) -> OriginDigest:
        """The only cross-domain export: the salted origin digest."""
        return OriginDigest.from_router(self._router, salt)

    def export(self, what: str):
        """Any raw-state export attempt is a privacy violation."""
        if what in self._FORBIDDEN:
            raise PrivacyViolation(
                f"domain {self.domain!r} refuses to export raw {what!r}; "
                f"use publish_digest() instead"
            )
        raise PrivacyViolation(f"unknown export {what!r} refused by default")

    def local_router(self) -> BgpRouter:
        """Full access for the domain's own tooling (not cross-domain)."""
        return self._router
