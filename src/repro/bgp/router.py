"""The BGP router node: BIRD's role in the paper's testbed.

A :class:`BgpRouter` speaks the wire protocol over the simulated network,
maintains the three RIBs, runs import/export policy and the decision
process, and originates configured networks.  Two properties matter for
DiCE integration (paper section 3.2):

* **the message handler is an explicit entry point** —
  :meth:`handle_update` takes a peer id and a parsed
  :class:`UpdateMessage` whose fields may be symbolic.  DiCE invokes it
  directly on checkpoint clones ("we rely on the programmer to identify
  message handlers");
* **all environment interaction goes through ``self.env``** — on a clone
  wired to an :class:`ExplorationEnvironment`, every message the handler
  generates is captured instead of transmitted, and the live system never
  observes the exploration.

The router is :class:`Checkpointable`: logical state (config, RIBs,
sessions, counters) pickles into segment-paged checkpoints; runtime state
(the environment) is reinjected on restore.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple, Union

from repro.bgp.config import NeighborConfig, RouterConfig, parse_config_cached
from repro.bgp.decision import best_route, routes_equal
from repro.bgp.fsm import Session, SessionFsm, SessionState
from repro.bgp.messages import (
    ERR_UPDATE_MESSAGE,
    KeepaliveMessage,
    Message,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
    decode_message,
)
from repro.bgp.nlri import NlriEntry
from repro.bgp.policy import FilterInterpreter, RouteView
from repro.bgp.rib import AdjRibIn, AdjRibOut, ChangeKind, LocRib, RibChange, Route, RouteSource
from repro.bgp.wire import as_concrete_int
from repro.concolic.env import Environment
from repro.net.node import SimNode
from repro.util.errors import ConfigError, WireFormatError
from repro.util.ip import Prefix
from repro.util.stats import CounterRegistry

import pickle

#: LOCAL_PREF given to locally originated (static) routes so they win the
#: decision process against learned paths, like BIRD's static preference.
STATIC_LOCAL_PREF = 200

#: NLRI entries packed into one outgoing UPDATE (wire-size conservative).
MAX_NLRI_PER_UPDATE = 200

#: Target RIB entries per snapshot bucket; ~1 page of pickled routes.
SNAPSHOT_BUCKET_ENTRIES = 4


def _bucketized(label: str, items: list) -> list:
    """Split (key, value) items into hash-stable, separately pickled buckets.

    The bucket index depends only on the entry's key, so an insert or
    update relocates nothing: exactly the touched bucket re-serializes
    differently, which is what makes the page-sharing numbers meaningful.
    """
    if not items:
        return [(f"{label}/empty", b"")]
    # Power-of-two bucket count: small size drift (a clone adding a few
    # routes) must not reshuffle every bucket assignment.
    target = max(32, len(items) // SNAPSHOT_BUCKET_ENTRIES)
    bucket_count = 1 << (target - 1).bit_length()
    buckets: Dict[int, list] = {}
    for key, value in items:
        index = hash(key) % bucket_count
        buckets.setdefault(index, []).append((key, value))
    protocol = pickle.HIGHEST_PROTOCOL
    segments = []
    for index, bucket in sorted(buckets.items()):
        bucket.sort(key=lambda item: repr(item[0]))
        segments.append((f"{label}/{index}", pickle.dumps(bucket, protocol)))
    return segments


class BgpRouter(SimNode):
    """A BGP-4 speaker attached to the simulated network."""

    def __init__(self, node_id: str, env: Environment, config: Union[RouterConfig, str]):
        super().__init__(node_id, env)
        if isinstance(config, str):
            config = parse_config_cached(config)
        self.config = config
        self.interpreter = FilterInterpreter(config.prefix_sets)
        self.sessions: Dict[str, Session] = {
            peer_id: Session(neighbor, hold_time=neighbor.hold_time)
            for peer_id, neighbor in config.neighbors.items()
        }
        self.adj_rib_in = AdjRibIn()
        self.loc_rib = LocRib()
        self.adj_rib_out = AdjRibOut()
        self.counters = CounterRegistry()
        self.static_routes: Dict[Prefix, Route] = {}
        for network in config.networks:
            self._originate(network)

    # -- local origination ------------------------------------------------------

    def _originate(self, prefix: Prefix) -> None:
        from repro.bgp.attributes import ORIGIN_IGP, AsPath, PathAttributes

        route = Route(
            prefix=prefix,
            attributes=PathAttributes(
                origin=ORIGIN_IGP,
                as_path=AsPath(),
                next_hop=self.config.router_id,
                local_pref=STATIC_LOCAL_PREF,
            ),
            peer=None,
            source=RouteSource.STATIC,
        )
        self.static_routes[prefix] = route
        self.loc_rib.install(route)

    # -- lifecycle -----------------------------------------------------------------

    def on_start(self) -> None:
        for peer_id, session in self.sessions.items():
            fsm = self._fsm(session)
            for message in fsm.start(self.now):
                self._transmit(peer_id, message)

    def _fsm(self, session: Session) -> SessionFsm:
        return SessionFsm(session, self.config.asn, self.config.router_id)

    def _transmit(self, peer_id: str, message: Message) -> None:
        session = self.sessions.get(peer_id)
        if session is not None:
            session.messages_out += 1
        self.counters.increment(f"sent_{type(message).__name__}")
        self.env.send(peer_id, message.encode())

    # -- message dispatch -------------------------------------------------------------

    def on_message(self, src: str, payload: bytes) -> None:
        try:
            message = decode_message(payload)
        except WireFormatError as exc:
            self.counters.increment("decode_errors")
            self._transmit(src, NotificationMessage(exc.code or 1, exc.subcode))
            return
        self.handle_message(src, message)

    def handle_message(self, src: str, message: Message) -> None:
        """Dispatch a parsed message to the appropriate handler."""
        session = self.sessions.get(src)
        if session is None:
            self.counters.increment("messages_from_unknown_peer")
            return
        if isinstance(message, OpenMessage):
            self.handle_open(src, message)
        elif isinstance(message, KeepaliveMessage):
            self.handle_keepalive(src)
        elif isinstance(message, UpdateMessage):
            self.handle_update(src, message)
        elif isinstance(message, NotificationMessage):
            self.handle_notification(src, message)

    def handle_open(self, peer_id: str, message: OpenMessage) -> None:
        session = self.sessions[peer_id]
        replies, _ = self._fsm(session).on_open(message, self.now)
        for reply in replies:
            self._transmit(peer_id, reply)

    def handle_keepalive(self, peer_id: str) -> None:
        session = self.sessions[peer_id]
        replies, established = self._fsm(session).on_keepalive(self.now)
        for reply in replies:
            self._transmit(peer_id, reply)
        if established:
            self.counters.increment("sessions_established")
            self._send_full_table(peer_id)

    def handle_notification(self, peer_id: str, message: NotificationMessage) -> None:
        session = self.sessions[peer_id]
        self._fsm(session).on_notification(message)
        self.counters.increment("notifications_received")
        self._drop_peer_routes(peer_id)

    # -- UPDATE processing: the DiCE-explored handler ------------------------------------

    def handle_update(self, peer_id: str, update: UpdateMessage) -> None:
        """Process one UPDATE from ``peer_id``.

        This is the handler DiCE explores: invoked on a clone with
        symbolic NLRI/attribute fields, every branch below — including the
        interpreted import filter — lands in the recorded path condition.
        """
        session = self.sessions.get(peer_id)
        if session is None:
            self.counters.increment("messages_from_unknown_peer")
            return
        if not self._fsm(session).on_update_allowed(self.now):
            self.counters.increment("updates_out_of_establish")
            self._transmit(peer_id, NotificationMessage(5, 0))
            return
        self.counters.increment("updates_received")
        changed: List[Prefix] = []

        for entry in update.withdrawn:
            prefix = entry.to_prefix()
            if self.adj_rib_in.withdraw(peer_id, prefix) is not None:
                self.counters.increment("withdrawals_processed")
                changed.append(prefix)

        if update.nlri:
            try:
                self._validate_update(update)
            except WireFormatError as exc:
                self.counters.increment("update_errors")
                self._transmit(peer_id, NotificationMessage(exc.code, exc.subcode))
                return
            if update.attributes.as_path.contains(self.config.asn):
                # AS-path loop: RFC 4271 says treat as withdrawn.
                self.counters.increment("loop_rejected")
                for entry in update.nlri:
                    prefix = entry.to_prefix()
                    if self.adj_rib_in.withdraw(peer_id, prefix) is not None:
                        changed.append(prefix)
            else:
                for entry in update.nlri:
                    changed.extend(self._import_route(peer_id, entry, update))

        if changed:
            self._reconverge(changed)

    def _validate_update(self, update: UpdateMessage) -> None:
        attrs = update.attributes
        if attrs.next_hop is None:
            raise WireFormatError("missing NEXT_HOP", code=ERR_UPDATE_MESSAGE, subcode=3)
        if not attrs.as_path.segments:
            raise WireFormatError("missing AS_PATH", code=ERR_UPDATE_MESSAGE, subcode=3)

    def _import_route(
        self, peer_id: str, entry: NlriEntry, update: UpdateMessage
    ) -> List[Prefix]:
        """Run import policy on one announced NLRI; returns changed prefixes."""
        view = RouteView.of(entry.network, entry.length, update.attributes, peer_id)
        program = self.config.filter_named(self.sessions[peer_id].peer.import_filter)
        result = self.interpreter.run(program, view)
        prefix = entry.to_prefix()
        if result.accepted:
            self.counters.increment("routes_accepted")
            route = Route(
                prefix=prefix,
                attributes=result.attributes,
                peer=peer_id,
                source=RouteSource.EBGP,
                learned_at=self.now,
            )
            self.adj_rib_in.install(peer_id, route)
            return [prefix]
        self.counters.increment("routes_filtered")
        # A rejected (re)announcement implicitly withdraws the old entry.
        if self.adj_rib_in.withdraw(peer_id, prefix) is not None:
            return [prefix]
        return []

    # -- decision and export --------------------------------------------------------------

    def _reconverge(self, prefixes: List[Prefix]) -> None:
        """Re-run the decision process for ``prefixes`` and export changes."""
        changes: List[RibChange] = []
        for prefix in dict.fromkeys(prefixes):  # dedupe, keep order
            candidates = self.adj_rib_in.candidates(prefix)
            static = self.static_routes.get(prefix)
            if static is not None:
                candidates = candidates + [static]
            best = best_route(candidates)
            current = self.loc_rib.get(prefix)
            if best is None:
                change = self.loc_rib.withdraw(prefix)
                if change is not None:
                    changes.append(change)
            elif not routes_equal(best, current):
                changes.append(self.loc_rib.install(best))
        for change in changes:
            self.counters.increment("locrib_changes")
            self._export_change(change)

    def _export_change(self, change: RibChange) -> None:
        for peer_id, session in self.sessions.items():
            if not session.established:
                continue
            if change.new is not None and change.new.peer != peer_id:
                exported = self._apply_export_policy(peer_id, change.new)
                if exported is not None:
                    previous = self.adj_rib_out.advertised(peer_id, change.prefix)
                    if previous is None or not routes_equal(previous, exported):
                        self.adj_rib_out.record(peer_id, exported)
                        self._transmit(
                            peer_id,
                            UpdateMessage(
                                attributes=exported.attributes,
                                nlri=[NlriEntry.from_prefix(change.prefix)],
                            ),
                        )
                        self.counters.increment("updates_sent")
                    continue
            # Route gone, learned from this peer, or export-rejected:
            # withdraw if it had been advertised.
            if self.adj_rib_out.remove(peer_id, change.prefix) is not None:
                self._transmit(
                    peer_id,
                    UpdateMessage(withdrawn=[NlriEntry.from_prefix(change.prefix)]),
                )
                self.counters.increment("withdrawals_sent")

    def _apply_export_policy(self, peer_id: str, route: Route) -> Optional[Route]:
        """Export filter + eBGP attribute rewriting; None when rejected."""
        from repro.bgp.attributes import NO_ADVERTISE, NO_EXPORT

        # RFC 1997 well-known communities: NO_ADVERTISE blocks every peer,
        # NO_EXPORT blocks eBGP peers (all sessions here are eBGP).  The
        # membership test runs before the filter so a symbolic community
        # value makes this a recorded, negatable branch.
        if route.attributes.has_community(NO_ADVERTISE):
            return None
        if route.attributes.has_community(NO_EXPORT):
            return None
        view = RouteView.of(
            route.prefix.network, route.prefix.length, route.attributes, peer_id
        )
        program = self.config.filter_named(self.sessions[peer_id].peer.export_filter)
        result = self.interpreter.run(program, view)
        if not result.accepted:
            return None
        attrs = result.attributes
        attrs = replace(
            attrs,
            as_path=attrs.as_path.prepend(self.config.asn),
            next_hop=self.config.router_id,
            local_pref=None,  # LOCAL_PREF is not sent on eBGP sessions
        )
        return Route(
            prefix=route.prefix,
            attributes=attrs,
            peer=peer_id,
            source=route.source,
            learned_at=route.learned_at,
        )

    def _send_full_table(self, peer_id: str) -> None:
        """Advertise the whole Loc-RIB to a newly established peer.

        Routes sharing identical exported attributes are batched into
        UPDATEs carrying up to :data:`MAX_NLRI_PER_UPDATE` NLRI entries —
        how real speakers dump tables without one message per prefix.
        """
        batches: Dict[bytes, Tuple[Route, List[NlriEntry]]] = {}
        for prefix, route in self.loc_rib.items():
            if route.peer == peer_id:
                continue
            exported = self._apply_export_policy(peer_id, route)
            if exported is None:
                continue
            self.adj_rib_out.record(peer_id, exported)
            from repro.bgp.attributes import encode_attributes

            key = encode_attributes(exported.attributes)
            if key not in batches:
                batches[key] = (exported, [])
            batches[key][1].append(NlriEntry.from_prefix(prefix))
        for exported, entries in batches.values():
            for start in range(0, len(entries), MAX_NLRI_PER_UPDATE):
                chunk = entries[start:start + MAX_NLRI_PER_UPDATE]
                self._transmit(
                    peer_id,
                    UpdateMessage(attributes=exported.attributes, nlri=chunk),
                )
                self.counters.increment("updates_sent")

    def _drop_peer_routes(self, peer_id: str) -> None:
        """Session died: flush its routes and reconverge."""
        prefixes = self.adj_rib_in.drop_peer(peer_id)
        self.adj_rib_out.drop_peer(peer_id)
        if prefixes:
            self._reconverge(prefixes)

    # -- operator actions (the fault-workload injection surface) ------------------------------

    def originate(self, prefix: Prefix) -> None:
        """Start locally originating ``prefix`` and advertise it.

        Unlike the constructor-time origination this runs the decision
        process immediately, so established peers receive the
        announcement — the MOAS-conflict workload drives this on a clone
        to make two domains claim the same space.
        """
        self._originate(prefix)
        self._reconverge([prefix])

    def withdraw_origination(self, prefix: Prefix) -> bool:
        """Stop originating ``prefix``; withdraws it from peers if it was best.

        Returns False when the prefix was not locally originated.
        """
        if self.static_routes.pop(prefix, None) is None:
            return False
        self._reconverge([prefix])
        return True

    def apply_config(self, config: Union[RouterConfig, str]) -> None:
        """Hot-swap policy configuration without touching session state.

        The neighbor set must be unchanged (this models a policy edit,
        not a re-provisioning).  Sessions keep their FSM state; imports
        and exports from now on run the new filters.  Deliberately *no*
        revalidation of Adj-RIB-In happens — like a router without
        route-refresh, previously accepted routes linger until the peer
        re-announces, which is exactly the transient the rolling
        reconfiguration workload probes.
        """
        if isinstance(config, str):
            config = parse_config_cached(config)
        if set(config.neighbors) != set(self.sessions):
            raise ConfigError(
                f"apply_config on {self.node_id!r} changes the neighbor set "
                f"({sorted(self.sessions)} -> {sorted(config.neighbors)}); "
                "only policy edits are hot-swappable"
            )
        self.config = config
        self.interpreter = FilterInterpreter(config.prefix_sets)
        for peer_id, session in self.sessions.items():
            session.peer = config.neighbors[peer_id]

    # -- timers -----------------------------------------------------------------------------

    def tick(self) -> None:
        """Periodic maintenance: hold timers and keepalives."""
        for peer_id, session in self.sessions.items():
            fsm = self._fsm(session)
            for message in fsm.check_hold_timer(self.now):
                self._transmit(peer_id, message)
                self._drop_peer_routes(peer_id)
            for message in fsm.keepalive_tick(self.now):
                self._transmit(peer_id, message)

    # -- checkpointing (Checkpointable protocol) ----------------------------------------------

    def checkpoint_state(self) -> dict:
        return {
            "node_id": self.node_id,
            "config": self.config,
            "sessions": self.sessions,
            "adj_rib_in": self.adj_rib_in,
            "loc_rib": self.loc_rib,
            "adj_rib_out": self.adj_rib_out,
            "static_routes": self.static_routes,
            "counters": self.counters,
        }

    def snapshot_segments(self) -> Dict[str, bytes]:
        """Serialized state as independently paged memory regions.

        RIB contents are split into hash-stable buckets serialized
        separately, modeling heap objects at stable addresses: a change to
        one route dirties only its bucket's page(s), so copy-on-write page
        accounting (section 4.1) behaves like it would for a forked C
        process, instead of every page changing whenever one pickle byte
        shifts.  A clone's exploration buffers (captured outbound
        messages) are part of its image — they are memory the forked
        explorer process would own.
        """
        protocol = pickle.HIGHEST_PROTOCOL
        segments = {
            "config": pickle.dumps(self.config, protocol),
            "sessions": pickle.dumps(self.sessions, protocol),
            "counters": pickle.dumps(self.counters, protocol),
        }
        loc_items = [
            (prefix.key(), route) for prefix, route in self.loc_rib.items()
        ]
        for name, blob in _bucketized("loc_rib", loc_items):
            segments[name] = blob
        in_items = [
            ((peer, prefix.key()), route)
            for peer in self.adj_rib_in.peers()
            for prefix in self.adj_rib_in.peer_prefixes(peer)
            for route in (self.adj_rib_in.get(peer, prefix),)
        ]
        for name, blob in _bucketized("adj_rib_in", in_items):
            segments[name] = blob
        out_items = []
        for peer in list(self.sessions):
            for prefix in self.adj_rib_out.peer_prefixes(peer):
                out_items.append(((peer, prefix.key()), self.adj_rib_out.advertised(peer, prefix)))
        for name, blob in _bucketized("adj_rib_out", out_items):
            segments[name] = blob
        captured = getattr(self.env, "captured", None)
        if captured:
            segments["exploration_buffers"] = pickle.dumps(captured, protocol)
        return segments

    @classmethod
    def restore_from_state(cls, state: dict, env: Environment) -> "BgpRouter":
        router = cls.__new__(cls)
        SimNode.__init__(router, state["node_id"], env)
        router.config = state["config"]
        router.interpreter = FilterInterpreter(router.config.prefix_sets)
        router.sessions = state["sessions"]
        router.adj_rib_in = state["adj_rib_in"]
        router.loc_rib = state["loc_rib"]
        router.adj_rib_out = state["adj_rib_out"]
        router.static_routes = state["static_routes"]
        router.counters = state["counters"]
        return router

    # -- introspection ---------------------------------------------------------------------------

    def established_peers(self) -> List[str]:
        return [pid for pid, s in self.sessions.items() if s.established]

    def table_size(self) -> int:
        return len(self.loc_rib)

    def describe(self) -> str:
        return (
            f"BgpRouter({self.node_id}, AS{self.config.asn}, "
            f"{len(self.loc_rib)} routes, peers={self.established_peers()})"
        )
