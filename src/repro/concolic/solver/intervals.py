"""Interval (bounds) reasoning over symbolic expressions.

All symbolic inputs are bounded wire-format fields, so every expression
has a computable finite value interval.  The solver uses intervals in two
ways:

* **pruning** — if the interval of a constraint evaluates to definitely
  false, the query is unsatisfiable and no search is attempted;
* **narrowing** — asserting a comparison between a variable and an
  expression shrinks the variable's candidate range, which makes the
  downstream enumeration and randomized search dramatically cheaper.

The arithmetic is deliberately conservative: when an operator's precise
bounds are awkward (bitwise ops on possibly-negative ranges, division by
an interval containing zero), we fall back to a wide-but-finite interval.

**Memoization.**  ``eval_interval`` and ``narrow`` are pure functions of
(node, projected domain box): a node's interval depends only on the
intervals of the variables it references, and a ``narrow`` call both
reads and writes only ``vars(constraint)``.  Hash consing makes nodes
immutable and shared, so results are cached *on the node itself*
(``Expr._ivmemo`` / ``Expr._nmemo``), keyed by the tuple of referenced
variables' intervals — no invalidation is ever needed.  Fixpoint
propagation re-walks the same constraints against near-identical boxes
round after round (and, with batched sibling negations, sibling after
sibling), which is exactly the reuse pattern these tables capture.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from repro.concolic.expr import BinOp, Const, Expr, UnaryOp, Var

Interval = Tuple[int, int]

#: A per-node memo table is cleared once it holds this many boxes; the
#: pathological case is a node queried under endless distinct boxes
#: (local search mutating domains), which must not leak memory.
MEMO_LIMIT = 512

_MISSING = object()


class _MemoState:
    """Process-wide switch and hit/miss counters for the node memos."""

    __slots__ = ("enabled", "eval_hits", "eval_misses", "narrow_hits", "narrow_misses")

    def __init__(self) -> None:
        self.enabled = True
        self.eval_hits = 0
        self.eval_misses = 0
        self.narrow_hits = 0
        self.narrow_misses = 0


_MEMO = _MemoState()


def propagate_memo_info() -> Dict[str, int]:
    """Hit/miss counters of the per-node interval memos (for stats)."""
    return {
        "eval_hits": _MEMO.eval_hits,
        "eval_misses": _MEMO.eval_misses,
        "narrow_hits": _MEMO.narrow_hits,
        "narrow_misses": _MEMO.narrow_misses,
    }


def memo_counters() -> Tuple[int, int]:
    """(total hits, total misses) across the eval and narrow memos.

    Cheap enough to snapshot around every solver query; the solver
    attributes the deltas to its per-query stats.  Counters are
    process-wide, which is exact here because solver queries never
    interleave within a process.
    """
    return (
        _MEMO.eval_hits + _MEMO.narrow_hits,
        _MEMO.eval_misses + _MEMO.narrow_misses,
    )


def reset_propagate_memo_counters() -> None:
    """Zero the memo counters (node tables are left alone)."""
    _MEMO.eval_hits = 0
    _MEMO.eval_misses = 0
    _MEMO.narrow_hits = 0
    _MEMO.narrow_misses = 0


@contextmanager
def propagate_memo_disabled() -> Iterator[None]:
    """Bypass the node memos inside the block.

    Used by the property tests (memoized vs. plain narrowing identity)
    and by benchmarks measuring the unmemoized baseline.  Existing memo
    entries are kept but not read or written.
    """
    previous = _MEMO.enabled
    _MEMO.enabled = False
    try:
        yield
    finally:
        _MEMO.enabled = previous

#: Fallback bound for operations whose tight interval is not worth computing.
WIDE_BOUND = 1 << 70
WIDE: Interval = (-WIDE_BOUND, WIDE_BOUND)

#: The boolean interval.
BOOL: Interval = (0, 1)


def _mul_interval(a: Interval, b: Interval) -> Interval:
    products = (a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1])
    return (min(products), max(products))


def _nonneg(iv: Interval) -> bool:
    return iv[0] >= 0


def _bit_ceiling(iv: Interval) -> int:
    """Smallest ``2**k - 1`` covering the interval's upper bound."""
    if iv[1] <= 0:
        return 0
    return (1 << iv[1].bit_length()) - 1


def eval_interval(expr: Expr, domains: Dict[str, Interval]) -> Interval:
    """A sound over-approximation of the values ``expr`` can take.

    Results for compound nodes are memoized on the node per projected
    domain box (see the module docstring); constants and variables are
    cheaper to answer directly than to look up.
    """
    if isinstance(expr, Const):
        return (expr.value, expr.value)
    if isinstance(expr, Var):
        if expr.name in domains:
            return domains[expr.name]
        return expr.domain
    if _MEMO.enabled:
        memo = expr._ivmemo
        if memo is None:
            memo = expr._ivmemo = (tuple(sorted(expr.variables())), {})
        names, table = memo
        box = tuple(map(domains.get, names))
        result = table.get(box)
        if result is not None:
            _MEMO.eval_hits += 1
            return result
        _MEMO.eval_misses += 1
        result = _eval_interval(expr, domains)
        if len(table) >= MEMO_LIMIT:
            table.clear()
        table[box] = result
        return result
    return _eval_interval(expr, domains)


def _eval_interval(expr: Expr, domains: Dict[str, Interval]) -> Interval:
    """The uncached interval evaluation (children go back through the memo)."""
    if isinstance(expr, UnaryOp):
        inner = eval_interval(expr.operand, domains)
        if expr.op == "neg":
            return (-inner[1], -inner[0])
        if expr.op == "inv":
            return (~inner[1], ~inner[0])
        if expr.op == "lnot":
            if inner == (0, 0):
                return (1, 1)
            if inner[0] > 0 or inner[1] < 0:
                return (0, 0)
            return BOOL
        if expr.op == "bool":
            if inner == (0, 0):
                return (0, 0)
            if inner[0] > 0 or inner[1] < 0:
                return (1, 1)
            return BOOL
        return WIDE
    if isinstance(expr, BinOp):
        left = eval_interval(expr.left, domains)
        right = eval_interval(expr.right, domains)
        return _binop_interval(expr.op, left, right)
    return WIDE


def _binop_interval(op: str, left: Interval, right: Interval) -> Interval:
    if op == "add":
        return (left[0] + right[0], left[1] + right[1])
    if op == "sub":
        return (left[0] - right[1], left[1] - right[0])
    if op == "mul":
        return _mul_interval(left, right)
    if op == "floordiv":
        if right[0] > 0 or right[1] < 0:
            candidates = (
                left[0] // right[0], left[0] // right[1],
                left[1] // right[0], left[1] // right[1],
            )
            return (min(candidates), max(candidates))
        return WIDE
    if op == "mod":
        if right[0] > 0:
            return (0, right[1] - 1) if _nonneg(left) or True else WIDE
        return WIDE
    if op == "and":
        if _nonneg(left) and _nonneg(right):
            return (0, min(left[1], right[1]))
        return WIDE
    if op == "or":
        if _nonneg(left) and _nonneg(right):
            return (max(left[0], right[0]), max(_bit_ceiling(left), _bit_ceiling(right)))
        return WIDE
    if op == "xor":
        if _nonneg(left) and _nonneg(right):
            return (0, max(_bit_ceiling(left), _bit_ceiling(right)))
        return WIDE
    if op == "shl":
        if _nonneg(left) and _nonneg(right) and right[1] <= 64:
            return (left[0] << right[0], left[1] << right[1])
        return WIDE
    if op == "shr":
        if _nonneg(left) and _nonneg(right):
            high_shift = min(right[1], 80)
            return (left[0] >> high_shift, left[1] >> right[0])
        return WIDE
    if op in ("eq", "ne", "lt", "le", "gt", "ge"):
        return _comparison_interval(op, left, right)
    if op == "land":
        if left == (0, 0) or right == (0, 0):
            return (0, 0)
        if (left[0] > 0 or left[1] < 0) and (right[0] > 0 or right[1] < 0):
            return (1, 1)
        return BOOL
    if op == "lor":
        if left[0] > 0 or left[1] < 0 or right[0] > 0 or right[1] < 0:
            return (1, 1)
        if left == (0, 0) and right == (0, 0):
            return (0, 0)
        return BOOL
    return WIDE


def _comparison_interval(op: str, left: Interval, right: Interval) -> Interval:
    disjoint_lt = left[1] < right[0]   # every left < every right
    disjoint_gt = left[0] > right[1]   # every left > every right
    if op == "eq":
        if disjoint_lt or disjoint_gt:
            return (0, 0)
        if left[0] == left[1] == right[0] == right[1]:
            return (1, 1)
        return BOOL
    if op == "ne":
        if disjoint_lt or disjoint_gt:
            return (1, 1)
        if left[0] == left[1] == right[0] == right[1]:
            return (0, 0)
        return BOOL
    if op == "lt":
        if disjoint_lt:
            return (1, 1)
        if left[0] >= right[1]:
            return (0, 0)
        return BOOL
    if op == "le":
        if left[1] <= right[0]:
            return (1, 1)
        if disjoint_gt:
            return (0, 0)
        return BOOL
    if op == "gt":
        if disjoint_gt:
            return (1, 1)
        if left[1] <= right[0]:
            return (0, 0)
        return BOOL
    if op == "ge":
        if left[0] >= right[1]:
            return (1, 1)
        if disjoint_lt:
            return (0, 0)
        return BOOL
    return BOOL


def _intersect(a: Interval, b: Interval) -> Optional[Interval]:
    lo, hi = max(a[0], b[0]), min(a[1], b[1])
    if lo > hi:
        return None
    return (lo, hi)


def _narrow_var_against(
    op: str, var: Var, other: Interval, domains: Dict[str, Interval]
) -> Optional[bool]:
    """Narrow ``var``'s domain assuming ``var OP other`` holds.

    Returns True if the domain changed, False if not, None on contradiction.
    """
    current = domains.get(var.name, var.domain)
    if op == "eq":
        target = other
    elif op == "lt":
        target = (current[0], other[1] - 1)
    elif op == "le":
        target = (current[0], other[1])
    elif op == "gt":
        target = (other[0] + 1, current[1])
    elif op == "ge":
        target = (other[0], current[1])
    elif op == "ne":
        # Only narrows when the excluded value sits at a domain endpoint.
        if other[0] == other[1]:
            value = other[0]
            if current[0] == current[1] == value:
                return None
            if value == current[0]:
                target = (current[0] + 1, current[1])
            elif value == current[1]:
                target = (current[0], current[1] - 1)
            else:
                return False
        else:
            return False
    else:
        return False
    narrowed = _intersect(current, target)
    if narrowed is None:
        return None
    if narrowed != current:
        domains[var.name] = narrowed
        return True
    return False


_FLIP = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le", "eq": "eq", "ne": "ne"}


def _scaled_var(expr: Expr, domains: Dict[str, Interval]) -> Optional[tuple]:
    """Recognize ``var >> k`` / ``var // k`` / ``var << k`` / ``var * k``.

    Returns ``(var, numerator, denominator)`` meaning the expression
    equals ``var * numerator // denominator`` — enough to map a bound on
    the expression back to a bound on the variable.  These shapes are what
    prefix-set matching compiles to (``network >> (32 - len)``), so
    narrowing them is what makes leak-region analysis precise.
    """
    if not isinstance(expr, BinOp) or not isinstance(expr.left, Var):
        return None
    right = eval_interval(expr.right, domains)
    if right[0] != right[1]:
        return None
    amount = right[0]
    if expr.op == "shr" and 0 <= amount <= 64:
        return (expr.left, 1, 1 << amount)
    if expr.op == "floordiv" and amount > 0:
        return (expr.left, 1, amount)
    if expr.op == "shl" and 0 <= amount <= 64:
        return (expr.left, 1 << amount, 1)
    if expr.op == "mul" and amount > 0:
        return (expr.left, amount, 1)
    return None


def _narrow_scaled(
    op: str, var: Var, numerator: int, denominator: int,
    other: Interval, domains: Dict[str, Interval],
) -> Optional[bool]:
    """Narrow ``var`` assuming ``var * numerator // denominator  OP  other``.

    Only the non-negative case is handled (wire fields are unsigned).
    """
    current = domains.get(var.name, var.domain)
    if current[0] < 0:
        return False
    # Value v of the scaled expression corresponds to var in
    # [ceil(v * denominator / numerator), ((v+1) * denominator - 1) // numerator].
    def var_lo(value: int) -> int:
        return -((-value * denominator) // numerator)

    def var_hi(value: int) -> int:
        return ((value + 1) * denominator - 1) // numerator

    if op == "eq":
        target = (var_lo(other[0]), var_hi(other[1]))
    elif op in ("le", "lt"):
        hi = other[1] - (1 if op == "lt" else 0)
        target = (current[0], var_hi(hi))
    elif op in ("ge", "gt"):
        lo = other[0] + (1 if op == "gt" else 0)
        target = (var_lo(lo), current[1])
    else:
        return False
    narrowed = _intersect(current, target)
    if narrowed is None:
        return None
    if narrowed != current:
        domains[var.name] = narrowed
        return True
    return False


def narrow(constraint: Expr, domains: Dict[str, Interval]) -> Optional[bool]:
    """Narrow ``domains`` in place assuming ``constraint`` holds.

    Returns True if any domain changed, False if nothing changed, and None
    if the constraint is unsatisfiable under the current domains.

    Memoized per (node, projected input box): a narrowing call reads and
    writes only ``vars(constraint)``, every individual narrowing step is
    a monotone shrink of the current box, and the changed flag is True
    exactly when the projected output differs from the input — so a hit
    replays the cached output box into ``domains`` with identical
    semantics (None is cached as-is for UNSAT proofs).
    """
    if not _MEMO.enabled:
        return _narrow(constraint, domains)
    memo = constraint._nmemo
    if memo is None:
        memo = constraint._nmemo = (tuple(sorted(constraint.variables())), {})
    names, table = memo
    box = tuple(map(domains.get, names))
    cached = table.get(box, _MISSING)
    if cached is not _MISSING:
        _MEMO.narrow_hits += 1
        if cached is None:
            return None
        changed = False
        for name, interval in zip(names, cached):
            if interval is not None and interval != domains.get(name):
                domains[name] = interval
                changed = True
        return changed
    _MEMO.narrow_misses += 1
    result = _narrow(constraint, domains)
    if len(table) >= MEMO_LIMIT:
        table.clear()
    if result is None:
        table[box] = None
        return None
    table[box] = tuple(map(domains.get, names))
    return result


def _narrow(constraint: Expr, domains: Dict[str, Interval]) -> Optional[bool]:
    """The uncached narrowing (sub-constraints go back through the memo)."""
    interval = eval_interval(constraint, domains)
    if interval == (0, 0):
        return None
    if isinstance(constraint, BinOp):
        if constraint.op == "land":
            left = narrow(constraint.left, domains)
            if left is None:
                return None
            right = narrow(constraint.right, domains)
            if right is None:
                return None
            return left or right
        if constraint.op == "lor":
            # If one side is definitely false, the other must hold.
            left_iv = eval_interval(constraint.left, domains)
            right_iv = eval_interval(constraint.right, domains)
            if left_iv == (0, 0) and right_iv == (0, 0):
                return None
            if left_iv == (0, 0):
                return narrow(constraint.right, domains)
            if right_iv == (0, 0):
                return narrow(constraint.left, domains)
            return False
        if constraint.op in _FLIP:
            changed = False
            if isinstance(constraint.left, Var):
                other = eval_interval(constraint.right, domains)
                result = _narrow_var_against(constraint.op, constraint.left, other, domains)
                if result is None:
                    return None
                changed = changed or result
            if isinstance(constraint.right, Var):
                other = eval_interval(constraint.left, domains)
                result = _narrow_var_against(
                    _FLIP[constraint.op], constraint.right, other, domains
                )
                if result is None:
                    return None
                changed = changed or result
            scaled = _scaled_var(constraint.left, domains)
            if scaled is not None:
                var, numerator, denominator = scaled
                other = eval_interval(constraint.right, domains)
                result = _narrow_scaled(
                    constraint.op, var, numerator, denominator, other, domains
                )
                if result is None:
                    return None
                changed = changed or result
            scaled = _scaled_var(constraint.right, domains)
            if scaled is not None:
                var, numerator, denominator = scaled
                other = eval_interval(constraint.left, domains)
                result = _narrow_scaled(
                    _FLIP[constraint.op], var, numerator, denominator, other, domains
                )
                if result is None:
                    return None
                changed = changed or result
            return changed
    if isinstance(constraint, UnaryOp) and constraint.op == "lnot":
        from repro.concolic.expr import negate

        return narrow(negate(constraint.operand), domains)
    return False


def propagate(
    constraints: list[Expr], domains: Dict[str, Interval], max_rounds: int = 16
) -> Optional[Dict[str, Interval]]:
    """Fixpoint domain narrowing over a conjunction of constraints.

    Returns the narrowed copy of ``domains``, or None if any constraint is
    definitely unsatisfiable (an UNSAT proof).
    """
    narrowed = dict(domains)
    for _ in range(max_rounds):
        changed = False
        for constraint in constraints:
            result = narrow(constraint, narrowed)
            if result is None:
                return None
            changed = changed or result
        if not changed:
            break
    return narrowed
