"""Edge-case tests for online scheduling and throughput measurement."""

import pytest

from repro.concolic.engine import ExplorationBudget
from repro.core.dice import DiCE
from repro.core.schedule import (
    OnlineScheduler,
    ScheduleConfig,
    ThroughputProbe,
    measure_throughput,
)
from repro.net.node import NodeHost


class _StubDice:
    """A DiCE stand-in that counts rounds and optionally returns None."""

    def __init__(self, has_seed=True):
        self.calls = 0
        self.has_seed = has_seed

    def run_round(self, peer=None, budget=None):
        self.calls += 1
        if not self.has_seed:
            return None
        return object()


class _FlakyDice:
    """Raises on chosen rounds — the failure mode that used to kill the
    scheduler permanently (no re-armed timer, silent stop)."""

    def __init__(self, failing_calls=(1,), error=None):
        from repro.util.errors import ExplorationError

        self.calls = 0
        self.failing_calls = set(failing_calls)
        self.error = error or ExplorationError("round blew up")

    def run_round(self, peer=None, budget=None):
        self.calls += 1
        if self.calls in self.failing_calls:
            raise self.error
        return object()


class TestScheduler:
    def test_start_after_delays_first_round(self):
        host = NodeHost()
        dice = _StubDice()
        scheduler = OnlineScheduler(
            host, dice, ScheduleConfig(interval=100.0, start_after=5.0)
        )
        scheduler.start()
        host.run_until(4.0)
        assert dice.calls == 0
        host.run_until(6.0)
        assert dice.calls == 1
        scheduler.stop()

    def test_default_first_round_at_interval(self):
        host = NodeHost()
        dice = _StubDice()
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=30.0))
        scheduler.start()
        host.run_until(29.0)
        assert dice.calls == 0
        host.run_until(31.0)
        assert dice.calls == 1
        scheduler.stop()

    def test_rounds_without_seed_counted_skipped(self):
        host = NodeHost()
        dice = _StubDice(has_seed=False)
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=10.0))
        scheduler.start()
        host.run_until(35.0)
        scheduler.stop()
        assert scheduler.stats.rounds_skipped == 3
        assert scheduler.stats.rounds_fired == 0

    def test_max_rounds_stops(self):
        host = NodeHost()
        dice = _StubDice()
        scheduler = OnlineScheduler(
            host, dice, ScheduleConfig(interval=10.0, max_rounds=3)
        )
        scheduler.start()
        host.run_until(200.0)
        assert scheduler.stats.rounds_fired == 3
        assert not scheduler.running

    def test_restart_after_stop(self):
        host = NodeHost()
        dice = _StubDice()
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=10.0))
        scheduler.start()
        host.run_until(15.0)
        scheduler.stop()
        fired = scheduler.stats.rounds_fired
        scheduler.start()
        host.run_until(40.0)
        scheduler.stop()
        assert scheduler.stats.rounds_fired > fired

    def test_last_fired_at_tracks_sim_time(self):
        host = NodeHost()
        dice = _StubDice()
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=7.0))
        scheduler.start()
        host.run_until(8.0)
        scheduler.stop()
        assert scheduler.stats.last_fired_at == pytest.approx(7.0)


class TestSchedulerFailureContainment:
    def test_failed_round_rearms_the_timer(self):
        host = NodeHost()
        dice = _FlakyDice(failing_calls=(1,))
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=10.0))
        scheduler.start()
        host.run_until(35.0)
        scheduler.stop()
        # Round 1 raised; rounds 2 and 3 still fired on schedule.
        assert dice.calls == 3
        assert scheduler.stats.rounds_failed == 1
        assert scheduler.stats.rounds_fired == 2
        assert "round blew up" in scheduler.stats.last_error

    def test_failures_not_counted_as_fired_or_skipped(self):
        host = NodeHost()
        dice = _FlakyDice(failing_calls=(1, 2, 3))
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=10.0))
        scheduler.start()
        host.run_until(35.0)
        scheduler.stop()
        assert scheduler.stats.rounds_failed == 3
        assert scheduler.stats.rounds_fired == 0
        assert scheduler.stats.rounds_skipped == 0

    def test_max_rounds_counts_only_successes(self):
        host = NodeHost()
        dice = _FlakyDice(failing_calls=(2,))
        scheduler = OnlineScheduler(
            host, dice, ScheduleConfig(interval=10.0, max_rounds=2)
        )
        scheduler.start()
        host.run_until(100.0)
        # calls: 1 ok, 2 failed, 3 ok -> max_rounds=2 reached at call 3.
        assert dice.calls == 3
        assert scheduler.stats.rounds_fired == 2
        assert not scheduler.running

    def test_checkpoint_errors_contained_too(self):
        from repro.util.errors import CheckpointError

        host = NodeHost()
        dice = _FlakyDice(failing_calls=(1,), error=CheckpointError("no fork"))
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=10.0))
        scheduler.start()
        host.run_until(25.0)
        scheduler.stop()
        assert scheduler.stats.rounds_failed == 1
        assert scheduler.stats.rounds_fired == 1

    def test_non_library_errors_contained_too(self):
        # A worker-pool PicklingError (or any other stdlib exception) is
        # just as fatal to an un-guarded timer as a ReproError.
        import pickle

        host = NodeHost()
        dice = _FlakyDice(
            failing_calls=(1,), error=pickle.PicklingError("bad payload")
        )
        scheduler = OnlineScheduler(host, dice, ScheduleConfig(interval=10.0))
        scheduler.start()
        host.run_until(25.0)
        scheduler.stop()
        assert scheduler.stats.rounds_failed == 1
        assert scheduler.stats.rounds_fired == 1
        assert "PicklingError" in scheduler.stats.last_error


class TestThroughputProbe:
    def test_probe_measures(self):
        with ThroughputProbe() as probe:
            total = sum(range(10_000))
        probe.updates_processed = 100
        assert probe.wall_seconds > 0
        assert probe.updates_per_second > 0

    def test_zero_wall_time(self):
        probe = ThroughputProbe()
        assert probe.updates_per_second == 0.0

    def test_measure_throughput_counts_router_updates(self):
        from repro.core import get_scenario

        scenario = get_scenario("fig2").build(
            filter_mode="correct", prefix_count=200, update_count=20
        )
        probe = measure_throughput(scenario.host, scenario.provider.counters)
        assert probe.updates_processed > 0
        assert probe.updates_per_second > 0
