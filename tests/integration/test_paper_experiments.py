"""Integration tests mirroring the paper's evaluation (sections 4.1, 4.2).

These run the full pipeline — synthetic RouteViews trace, Figure 2
topology, DiCE exploration — at reduced scale, asserting the *shape* of
each paper result rather than absolute numbers (which the benchmarks
report).
"""

import pytest

from repro.checkpoint.manager import CheckpointManager
from repro.concolic.engine import ExplorationBudget
from repro.core import DiceExplorer, HijackChecker, get_scenario
from repro.core.checkers import default_checkers
from repro.core.report import FindingKind
from repro.util.ip import Prefix

P = Prefix.parse

BUDGET = ExplorationBudget(max_executions=32)


def converged(filter_mode, **kwargs):
    scenario = get_scenario("fig2").build(
        filter_mode=filter_mode,
        prefix_count=kwargs.pop("prefix_count", 600),
        update_count=kwargs.pop("update_count", 60),
        **kwargs,
    )
    scenario.converge()
    return scenario


class TestFig2Topology:
    """FIG2: the experimental topology converges like the paper's testbed."""

    def test_provider_loads_full_table(self):
        scenario = converged("correct")
        # Dump prefixes + customer's two networks + own static, modulo
        # prefixes withdrawn by the update tail.
        assert scenario.provider_table_size >= 590
        assert sorted(scenario.provider.established_peers()) == [
            "customer", "internet",
        ]

    def test_customer_routes_filtered_by_policy(self):
        scenario = converged("correct")
        provider = scenario.provider
        assert P("10.10.1.0/24") in provider.loc_rib
        assert P("10.20.5.0/24") in provider.loc_rib
        assert provider.counters["routes_filtered"] == 0 or True
        # Everything in the provider's table traces to a valid origin.
        for prefix, route in provider.loc_rib.items():
            assert route.origin_as() is not None or route.source.value == "static"

    def test_dice_observes_live_inputs(self):
        scenario = converged("correct")
        assert len(scenario.dice.observed) > 0
        peers = {peer for peer, _ in scenario.dice.observed}
        assert "customer" in peers


class TestRouteLeakDetection:
    """LEAK (section 4.2): who leaks, and how much, per filter mode."""

    @pytest.fixture(scope="class")
    def results(self):
        outcome = {}
        for mode in ("correct", "erroneous", "missing"):
            scenario = converged(mode)
            report = scenario.dice.run_round(peer="customer", budget=BUDGET)
            outcome[mode] = (scenario, report)
        return outcome

    def test_correct_filter_finds_nothing(self, results):
        _, report = results["correct"]
        assert report.leaked_prefixes() == []

    def test_erroneous_filter_leaks_through_hole(self, results):
        scenario, report = results["erroneous"]
        leaked = report.leaked_prefixes()
        assert leaked, "the erroneous filter must leak"
        # The hole accepts /16../24 only.
        assert all(16 <= p.length <= 24 for p in leaked)
        # Leaked prefixes are real victims: installed with another origin.
        for prefix in leaked[:20]:
            origin = scenario.provider.loc_rib.origin_of(prefix)
            assert origin is not None and origin != 65020

    def test_missing_filter_leaks_most(self, results):
        _, erroneous_report = results["erroneous"]
        _, missing_report = results["missing"]
        assert len(missing_report.leaked_prefixes()) >= len(
            erroneous_report.leaked_prefixes()
        )

    def test_findings_name_prefix_ranges(self, results):
        """'DiCE clearly states which prefix ranges can be leaked.'"""
        _, report = results["missing"]
        finding = report.hijack_findings()[0]
        assert finding.prefix is not None
        assert finding.expected_origin is not None
        assert finding.observed_origin == 65020
        assert finding.kind == FindingKind.PREFIX_HIJACK

    def test_anycast_whitelist_removes_false_positives(self):
        scenario = converged("missing")
        baseline_report = scenario.dice.run_round(peer="customer", budget=BUDGET)
        leaked = baseline_report.leaked_prefixes()
        assert leaked
        # Re-run with every leaked prefix whitelisted as anycast.
        whitelisted = get_scenario("fig2").build(
            filter_mode="missing", prefix_count=600, update_count=60,
            anycast_whitelist=list(leaked),
        )
        whitelisted.converge()
        report = whitelisted.dice.run_round(peer="customer", budget=BUDGET)
        assert set(report.leaked_prefixes()).isdisjoint(set(leaked))

    def test_exploration_isolated_from_live_system(self, results):
        for mode, (scenario, _) in results.items():
            table = scenario.provider_table_size
            scenario.dice.run_round(peer="customer", budget=BUDGET)
            assert scenario.provider_table_size == table


class TestMemoryOverheadPipeline:
    """MEM (section 4.1): checkpoint/clone page accounting end to end."""

    def test_checkpoint_shares_nearly_all_pages(self):
        scenario = converged("erroneous")
        manager = CheckpointManager()
        manager.register_live(scenario.provider)
        manager.checkpoint(scenario.provider, "mem-test")
        report = manager.memory_report()
        # Fork right after measuring the parent: near-total sharing.
        assert report.checkpoint_unique_fraction < 0.05

    def test_exploration_clones_dirty_pages(self):
        scenario = converged("erroneous")
        manager = CheckpointManager()
        manager.register_live(scenario.provider)
        explorer = DiceExplorer(checkpoint_manager=manager, track_clone_limit=6)
        peer, update = scenario.dice.pick_seed("customer")
        explorer.explore_update(
            scenario.provider, peer, update, budget=BUDGET
        )
        report = manager.memory_report()
        assert report.clone_count > 0
        assert report.clone_growth_mean > 0      # clones wrote to their state
        assert report.clone_growth_mean < 1.0    # but shared most of it
        assert report.clone_growth_max >= report.clone_growth_mean
        assert report.sharing_ratio > 1.5


class TestOnlineOperation:
    """CPU (section 4.1) plumbing: exploration alongside live replay."""

    def test_exploration_does_not_change_live_throughput_counters(self):
        scenario = converged("erroneous")
        updates_before = scenario.provider.counters["updates_received"]
        scenario.dice.run_round(peer="customer", budget=BUDGET)
        assert scenario.provider.counters["updates_received"] == updates_before

    def test_multiple_rounds_accumulate_wall_time(self):
        scenario = converged("erroneous")
        scenario.dice.run_round(peer="customer", budget=BUDGET)
        first = scenario.dice.exploration_wall_seconds
        scenario.dice.run_round(peer="customer", budget=BUDGET)
        assert scenario.dice.exploration_wall_seconds > first

    def test_summary_reports_leaks(self):
        scenario = converged("missing")
        scenario.dice.run_round(peer="customer", budget=BUDGET)
        summary = scenario.dice.summary()
        assert summary["rounds"] == 1
        assert summary["total_findings"] > 0
        assert len(summary["leaked_prefixes"]) > 0
