"""Constraint-query result caching for the exploration loop.

Negating branch *i* of a path condition asks the solver for a model of
the conjunction ``held(0..i-1) ∧ ¬branch(i)``.  When exploration fans a
batch of observed seeds out to workers (``repro.parallel``), many of
those conjunctions are *identical* across sessions — duplicate seeds in
the observed ring buffers reproduce the same path conditions branch for
branch — so solving each query once and sharing the result is pure
profit.

The cache key canonicalizes the whole query: the constraint conjunction
(structural, via the expressions' canonical renderings), the variable
domains, and the solver hint.  Including the hint makes a cache hit
*bit-identical* to what the session would have computed locally (the
hint seeds stages 3-6 of the solver pipeline), which is what keeps
multi-worker exploration deterministic: a session cannot observe a
different model merely because another worker solved the query first.

Cached entries record the outcome category, so stats stay faithful:

* ``("sat", ((name, value), ...))`` — a model, as sorted items;
* ``("unsat",)`` — proved unsatisfiable;
* ``("unknown",)`` — every pipeline stage gave up.

This module defines the *hook* (key function, protocol, and an
in-process implementation).  The cross-process shared implementation
lives in :mod:`repro.parallel.cache`, keeping the solver layer free of
multiprocessing concerns.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.concolic.expr import Expr
from repro.concolic.solver.intervals import Interval

Assignment = Dict[str, int]

#: ("sat", sorted model items) | ("unsat",) | ("unknown",)
CacheEntry = Tuple


def query_key_tail(
    domains: Dict[str, Interval], hint: Optional[Assignment] = None
) -> bytes:
    """The domains+hint suffix of a query key, as one reusable blob.

    Within one execution's negation sweep the domains and the hint (the
    run's concrete assignment) are fixed while the constraint prefix
    grows branch by branch; folding them once into a byte string lets
    :meth:`repro.concolic.path.PathCondition.negation_key` finish each
    per-branch key with a single ``update`` instead of re-walking both
    dicts per branch.
    """
    parts = [b"\x01"]
    for name, (lo, hi) in sorted(domains.items()):
        parts.append(name.encode())
        parts.append(b"\x00")
        parts.append(str(lo).encode())
        parts.append(b"\x00")
        parts.append(str(hi).encode())
        parts.append(b"\x00")
    parts.append(b"\x02")
    for name, value in sorted((hint or {}).items()):
        parts.append(name.encode())
        parts.append(b"\x00")
        parts.append(str(value).encode())
        parts.append(b"\x00")
    return b"".join(parts)


def canonical_query_key(
    constraints: Sequence[Expr],
    domains: Dict[str, Interval],
    hint: Optional[Assignment] = None,
) -> bytes:
    """A digest identifying a solver query up to structural equality.

    Expression rendering is deterministic (every node type defines a
    canonical rendering, cached on the hash-consed node), and
    domains/hint are folded in sorted order, so the key is stable across
    processes and sessions.

    Compatibility: the byte layout is unchanged from the original
    whole-conjunction implementation, so keys computed incrementally by
    the engine (rolling per-prefix digests in
    :meth:`~repro.concolic.path.PathCondition.negation_key`), keys
    computed from scratch here, and keys recorded by older runs all
    address the same cache entries — no shim or cache flush is needed
    across the incremental-digest migration.
    """
    digest = hashlib.blake2b(digest_size=16)
    for constraint in constraints:
        digest.update(constraint.canonical_bytes())
        digest.update(b"\x00")
    digest.update(query_key_tail(domains, hint))
    return digest.digest()


def entry_for_model(model: Optional[Assignment], proved_unsat: bool) -> CacheEntry:
    """Encode a solver outcome as a cache entry."""
    if model is not None:
        return ("sat", tuple(sorted(model.items())))
    return ("unsat",) if proved_unsat else ("unknown",)


def model_from_entry(entry: CacheEntry) -> Optional[Assignment]:
    """Decode a cache entry back into a solver result."""
    if entry[0] == "sat":
        return dict(entry[1])
    return None


@runtime_checkable
class ConstraintCache(Protocol):
    """What the solver needs from a constraint-result cache."""

    def get(self, key: bytes) -> Optional[CacheEntry]:
        """The cached entry for ``key``, or None on a miss."""

    def put(self, key: bytes, entry: CacheEntry) -> None:
        """Record the solved entry for ``key``."""


class DictConstraintCache:
    """A plain in-process cache (single worker / serial fallback)."""

    def __init__(self) -> None:
        self._entries: Dict[bytes, CacheEntry] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: bytes) -> Optional[CacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key: bytes, entry: CacheEntry) -> None:
        self._entries[key] = entry

    def info(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits, "misses": self.misses}
