"""A from-scratch concolic execution engine (the paper's "Oasis" role).

Public surface:

* :class:`SymInt` / :class:`SymBool` / :class:`SymBytes` — concolic values,
* :class:`InputSpec` / :class:`VarSpec` — symbolic input declarations,
* :class:`ConcolicEngine` — single runs and systematic path exploration,
* :class:`ConstraintSolver` — the composite constraint solver,
* search strategies (:func:`make_strategy`) and coverage accounting,
* :class:`Environment` implementations for exploration isolation.
"""

from repro.concolic.coverage import BranchCoverage
from repro.concolic.engine import (
    ConcolicEngine,
    ExplorationBudget,
    ExplorationReport,
    ExplorationSession,
    InputSpec,
    PathBudgetExceeded,
    SymbolicInputs,
    TraceRecorder,
    VarSpec,
    trace,
)
from repro.concolic.env import (
    CapturedMessage,
    Environment,
    ExplorationEnvironment,
    RecordingEnvironment,
    SealedEnvironment,
)
from repro.concolic.expr import (
    BinOp,
    Const,
    EvalError,
    Expr,
    UnaryOp,
    Var,
    as_boolean,
    make_binary,
    make_unary,
    negate,
)
from repro.concolic.path import Branch, ExecutionResult, PathCondition
from repro.concolic.solver import Assignment, ConstraintSolver, SolverStats
from repro.concolic.strategies import (
    BreadthFirstStrategy,
    Candidate,
    DepthFirstStrategy,
    GenerationalStrategy,
    RandomStrategy,
    SearchStrategy,
    STRATEGIES,
    make_strategy,
)
from repro.concolic.symbolic import SymBool, SymBytes, SymInt, concrete_of, lift_int
from repro.concolic.tracer import BranchSite, active_recorder

__all__ = [
    "Assignment",
    "BinOp",
    "Branch",
    "BranchCoverage",
    "BranchSite",
    "BreadthFirstStrategy",
    "Candidate",
    "CapturedMessage",
    "ConcolicEngine",
    "Const",
    "ConstraintSolver",
    "DepthFirstStrategy",
    "Environment",
    "EvalError",
    "ExecutionResult",
    "ExplorationBudget",
    "ExplorationEnvironment",
    "ExplorationReport",
    "ExplorationSession",
    "Expr",
    "GenerationalStrategy",
    "InputSpec",
    "PathBudgetExceeded",
    "PathCondition",
    "RandomStrategy",
    "RecordingEnvironment",
    "STRATEGIES",
    "SealedEnvironment",
    "SearchStrategy",
    "SolverStats",
    "SymBool",
    "SymBytes",
    "SymInt",
    "SymbolicInputs",
    "TraceRecorder",
    "UnaryOp",
    "Var",
    "VarSpec",
    "active_recorder",
    "as_boolean",
    "concrete_of",
    "lift_int",
    "make_binary",
    "make_strategy",
    "make_unary",
    "negate",
    "trace",
]
