"""WKL — fault/churn workload injection throughput and matrix sweep cost.

The workload subsystem replays pathologies (link cuts, flap storms,
session resets, route leaks) as timed :class:`InjectionEvent`s through
the isolated fabric's event queue, so two costs gate its use at scale:

* **injection throughput** — simulator events (organic deliveries plus
  injected actions) retired per wall second while a workload wave runs
  on a fresh clone ensemble; this is the events/s figure that bounds how
  much churn a scenario can model per exploration round;
* **matrix sweep** — wall seconds per (topology × workload) cell for the
  full build/converge/inject/judge cycle, which bounds how wide a
  ``repro matrix`` sweep can go in CI.

Both tests double as correctness gates: the baseline workload must keep
every wave checker silent, and each pathology must fire its paired
checker on a topology where it is applicable.  Injection throughput is
additionally gated against ``baseline_hotpath.json`` (per workload, per
topology — smoke and full runs measure different topologies); missing
keys pass until ``REPRO_BENCH_WRITE_BASELINE=1`` records them.

Set ``REPRO_BENCH_SMOKE=1`` for a tiny smoke run (used by CI to keep
this script from rotting without paying the full measurement).
"""

import os
import time

import pytest

from baseline_gate import WRITE_BASELINE, gate_floor, load_baseline, write_baseline
from repro.core import get_scenario
from repro.core.workload import ScenarioMatrix, get_workload
from repro.util.errors import WorkloadNotApplicable

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

SEED = 42
TOPOLOGY = "star-6" if SMOKE else "tiered-8"
WAVE_REPEATS = 2 if SMOKE else 10
# The churn-heavy workloads: each run re-clones the converged ensemble,
# so repeated waves measure steady-state injection cost, not warm state.
THROUGHPUT_WORKLOADS = ("flap-storm", "session-reset", "link-failure")


@pytest.fixture(scope="module")
def converged_built():
    built = get_scenario(TOPOLOGY).build(seed=SEED)
    built.converge()
    return built


@pytest.mark.benchmark(group="workloads")
@pytest.mark.parametrize("name", THROUGHPUT_WORKLOADS)
def test_workload_injection_throughput(benchmark, paper_rows, name, converged_built):
    """Events per wall second through a workload wave on a fresh fabric."""
    workload = get_workload(name)
    federation = converged_built.federation()
    try:
        plan = workload.plan(converged_built)
    except WorkloadNotApplicable as exc:
        pytest.skip(f"{name} not applicable on {TOPOLOGY}: {exc}")

    def wave():
        return federation.run_workload(plan)

    findings, stats = benchmark.pedantic(
        wave, rounds=WAVE_REPEATS, iterations=1
    )
    assert stats.injected_events == len(plan.events)
    started = time.perf_counter()
    for _ in range(WAVE_REPEATS):
        _, stats = federation.run_workload(plan)
    wall = time.perf_counter() - started
    events_per_second = stats.events * WAVE_REPEATS / wall if wall else 0.0
    paper_rows.add(
        "WKL", f"{name} wave on {TOPOLOGY}",
        "n/a (paper injected faults by hand)",
        f"{events_per_second:,.0f} events/s "
        f"({stats.events} events, {stats.injected_events} injected, "
        f"{len(findings)} findings)",
        note="smoke budget" if SMOKE else "",
    )
    figure = (
        f"workload_{name}_events_per_sec_{TOPOLOGY}".replace("-", "_")
    )
    if WRITE_BASELINE:
        write_baseline(**{figure: events_per_second})
        pytest.skip(f"baseline rewritten: {events_per_second:,.0f} events/s")
    floor = gate_floor(figure)
    assert events_per_second >= floor, (
        f"{name} injection throughput {events_per_second:,.0f} events/s "
        f"regressed below floor {floor:,.0f}/s "
        f"(baseline {load_baseline().get(figure, 0.0):,.0f}/s)"
    )


@pytest.mark.benchmark(group="workloads")
def test_baseline_wave_stays_silent(paper_rows, converged_built):
    """Every wave checker must hold on an uninjected, healthy wave."""
    plan = get_workload("baseline").plan(converged_built)
    findings, stats = converged_built.federation().run_workload(plan)
    assert findings == [], [f.describe() for f in findings]
    assert stats.converged
    paper_rows.add(
        "WKL", f"baseline wave on {TOPOLOGY}",
        "0 false positives",
        f"0 findings across {len(plan.checkers)} checkers",
    )


@pytest.mark.benchmark(group="workloads")
def test_matrix_sweep_cost(paper_rows):
    """Wall seconds per (topology × workload) cell, full cycle."""
    topologies = ("line-3", "star-6") if SMOKE else ("line-3", "star-6", "tiered-8")
    workloads = ("baseline",) + THROUGHPUT_WORKLOADS
    matrix = ScenarioMatrix(topologies, workloads, seed=SEED, max_seeds=0)
    started = time.perf_counter()
    results = matrix.run()
    wall = time.perf_counter() - started
    ran = [result for result in results if result.status == "ok"]
    assert not [result for result in results if result.status == "error"]
    # The gate half: pathologies fire where applicable, baselines don't.
    for result in ran:
        if result.cell.workload == "baseline":
            assert not result.fired, result.cell.key()
    fired = sum(1 for result in ran if result.fired)
    assert fired > 0, "no pathology fired anywhere in the sweep"
    paper_rows.add(
        "WKL", "matrix sweep (workload wave only)",
        "n/a",
        f"{wall / len(results):.3f}s/cell over {len(results)} cells "
        f"({fired} fired, {len(results) - len(ran)} skipped)",
        note="smoke slice" if SMOKE else "",
    )
