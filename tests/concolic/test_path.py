"""Tests for path conditions and branch records."""

import pytest

from repro.concolic.expr import BinOp, Const, Var
from repro.concolic.path import Branch, ExecutionResult, PathCondition
from repro.concolic.tracer import BranchSite


def make_path(outcomes):
    """A path with one branch per (line, taken) pair on constraint x < line."""
    path = PathCondition()
    for line, taken in outcomes:
        path.append(BranchSite("test.py", line), BinOp("lt", Var("x"), Const(line)), taken)
    return path


class TestBranch:
    def test_held_constraint_matches_direction(self):
        constraint = BinOp("lt", Var("x"), Const(5))
        taken = Branch(0, BranchSite("f", 1), constraint, True)
        not_taken = Branch(0, BranchSite("f", 1), constraint, False)
        assert taken.held_constraint().evaluate({"x": 3}) == 1
        assert not_taken.held_constraint().evaluate({"x": 7}) == 1

    def test_negated_constraint_is_complement(self):
        constraint = BinOp("lt", Var("x"), Const(5))
        branch = Branch(0, BranchSite("f", 1), constraint, True)
        env = {"x": 3}
        assert bool(branch.held_constraint().evaluate(env)) != bool(
            branch.negated_constraint().evaluate(env)
        )

    def test_outcome_key(self):
        branch = Branch(0, BranchSite("f", 9), Const(1), True)
        assert branch.outcome_key == (BranchSite("f", 9), True)


class TestPathCondition:
    def test_append_assigns_indices(self):
        path = make_path([(1, True), (2, False)])
        assert [b.index for b in path] == [0, 1]
        assert len(path) == 2
        assert path[1].taken is False

    def test_signature_distinguishes_directions(self):
        a = make_path([(1, True), (2, True)])
        b = make_path([(1, True), (2, False)])
        assert a.signature() != b.signature()

    def test_signature_stable(self):
        assert make_path([(1, True)]).signature() == make_path([(1, True)]).signature()

    def test_prefix_signature_flip(self):
        path = make_path([(1, True), (2, True)])
        flipped = make_path([(1, True), (2, False)])
        assert path.prefix_signature(2, flip_last=True) == flipped.signature()

    def test_prefix_signature_without_flip(self):
        path = make_path([(1, True), (2, True), (3, False)])
        prefix = make_path([(1, True), (2, True)])
        assert path.prefix_signature(2) == prefix.signature()

    def test_constraints_to_negate(self):
        path = make_path([(10, True), (20, False), (30, True)])
        constraints = path.constraints_to_negate(2)
        env_following = {"x": 25}  # x<10 false? no: need b0 held (x<10 true)...
        # Branch 0 held: x < 10; branch 1 held: not(x < 20) -> x >= 20.
        # Those are contradictory, which is fine — we only check structure.
        assert len(constraints) == 3
        # The last constraint is the negation of branch 2 (x < 30 taken -> x >= 30).
        assert constraints[-1].op == "ge"

    def test_constraints_to_negate_bounds(self):
        path = make_path([(1, True)])
        with pytest.raises(IndexError):
            path.constraints_to_negate(1)

    def test_negation_targets_skip_concretizations(self):
        path = PathCondition()
        path.append(BranchSite("f", 1), BinOp("lt", Var("x"), Const(5)), True)
        path.append(BranchSite("f", 2), BinOp("eq", Var("x"), Const(3)), True,
                    is_concretization=True)
        targets = list(path.negation_targets())
        assert len(targets) == 1
        targets = list(path.negation_targets(include_concretizations=True))
        assert len(targets) == 2

    def test_held_constraints_all_satisfied_by_original_input(self):
        # x = 15: x < 20 (taken), x < 10 is false (not taken).
        path = PathCondition()
        path.append(BranchSite("f", 1), BinOp("lt", Var("x"), Const(20)), True)
        path.append(BranchSite("f", 2), BinOp("lt", Var("x"), Const(10)), False)
        for constraint in path.held_constraints():
            assert constraint.evaluate({"x": 15}) == 1


class TestExecutionResult:
    def test_crashed_flag(self):
        ok = ExecutionResult({}, PathCondition(), value=1)
        bad = ExecutionResult({}, PathCondition(), exception=ValueError("boom"))
        assert not ok.crashed
        assert bad.crashed

    def test_signature_delegates(self):
        path = make_path([(1, True)])
        result = ExecutionResult({"x": 0}, path)
        assert result.signature() == path.signature()
