"""The composite constraint solver used by the exploration loop.

A query is a conjunction of boolean expressions over bounded integer
variables, plus a *hint* assignment (the concrete input of the run whose
branch is being negated).  The pipeline, cheapest first:

1. **constant screening** — a constraint folded to ``false`` proves UNSAT;
2. **interval propagation** — narrows variable domains, may prove UNSAT;
3. **hint check** — the clipped hint may already satisfy the query (the
   negated branch can flip "for free" when domains were narrowed);
4. **linear inversion** — solve the atoms of the negated constraint for
   one variable at a time (exact, handles the vast majority of queries);
5. **bounded enumeration** — exhaustive scan of one small-domain variable;
6. **guided local search** — hill climbing on branch distance.

Failures are reported as *unknown* (not UNSAT) unless step 1/2 proved
unsatisfiability; the explorer counts both, and EXPERIMENTS.md reports the
observed solver success rates.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.concolic.expr import BinOp, Const, Expr, UnaryOp
from repro.concolic.solver import search
from repro.concolic.solver.cache import (
    ConstraintCache,
    canonical_query_key,
    entry_for_model,
    model_from_entry,
)
from repro.concolic.solver.intervals import Interval, propagate
from repro.concolic.solver.linear import solve_atom

Assignment = Dict[str, int]


@dataclass
class SolverStats:
    """Counters describing how queries were dispatched and resolved.

    The ``*_time`` fields break ``total_time`` down by pipeline stage
    (key computation and cache lookups are the remainder), so profiles
    can tell "slow because local search runs" from "slow because every
    query re-keys a long conjunction".
    """

    queries: int = 0
    sat: int = 0
    unsat_proved: int = 0
    unknown: int = 0
    hint_hits: int = 0
    linear_hits: int = 0
    enumeration_hits: int = 0
    search_hits: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    total_time: float = 0.0
    key_time: float = 0.0
    screen_time: float = 0.0
    propagate_time: float = 0.0
    hint_time: float = 0.0
    linear_time: float = 0.0
    enum_time: float = 0.0
    search_time: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "queries": self.queries,
            "sat": self.sat,
            "unsat_proved": self.unsat_proved,
            "unknown": self.unknown,
            "hint_hits": self.hint_hits,
            "linear_hits": self.linear_hits,
            "enumeration_hits": self.enumeration_hits,
            "search_hits": self.search_hits,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "total_time": self.total_time,
            "key_time": self.key_time,
            "screen_time": self.screen_time,
            "propagate_time": self.propagate_time,
            "hint_time": self.hint_time,
            "linear_time": self.linear_time,
            "enum_time": self.enum_time,
            "search_time": self.search_time,
            "cache_hit_rate": self.cache_hit_rate,
        }

    @property
    def sat_rate(self) -> float:
        return self.sat / self.queries if self.queries else 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def stage_times(self) -> Dict[str, float]:
        """The per-stage breakdown alone, for compact progress displays."""
        return {
            "key": self.key_time,
            "screen": self.screen_time,
            "propagate": self.propagate_time,
            "hint": self.hint_time,
            "linear": self.linear_time,
            "enum": self.enum_time,
            "search": self.search_time,
        }


def merge_stats_dict(
    totals: Dict[str, float], other: Dict[str, float]
) -> Dict[str, float]:
    """Fold one :meth:`SolverStats.as_dict` into a running total, in place.

    The single definition of the aggregation rule every cross-session
    view uses (``ExplorationReport.absorb``, ``BatchReport.solver_totals``):
    plain counters sum; derived ratios (``*_rate`` keys) are skipped and
    ``cache_hit_rate`` is recomputed from the summed counters, so adding
    a stage or ratio to ``SolverStats`` cannot silently be summed wrong
    in one consumer.
    """
    for key, value in other.items():
        if key.endswith("_rate") or not isinstance(value, (int, float)):
            continue
        totals[key] = totals.get(key, 0) + value
    lookups = totals.get("cache_hits", 0) + totals.get("cache_misses", 0)
    if lookups:
        totals["cache_hit_rate"] = totals["cache_hits"] / lookups
    return totals


@dataclass
class ConstraintSolver:
    """Facade combining screening, intervals, linear solving and search.

    ``cache`` (optional) short-circuits queries whose canonical form —
    constraints, domains, *and* hint — has been solved before, anywhere
    the cache is shared (see :mod:`repro.concolic.solver.cache`).
    ``deterministic_rng`` makes the local-search stage a pure function of
    the query (its RNG is derived from the canonical key instead of a
    shared stream), so a cached entry is exactly what a fresh solve would
    produce; parallel exploration workers enable both.
    """

    rng: random.Random = field(default_factory=lambda: random.Random(0x51CE))
    max_search_iters: int = 2000
    enum_limit: int = 4096
    stats: SolverStats = field(default_factory=SolverStats)
    cache: Optional[ConstraintCache] = None
    deterministic_rng: bool = False

    @property
    def wants_key(self) -> bool:
        """True when :meth:`solve` would compute a query key anyway.

        Callers that can derive the key incrementally (the engine's
        rolling per-prefix digests) check this before paying for one; a
        solver with neither cache nor deterministic RNG never looks at
        keys at all.
        """
        return self.cache is not None or self.deterministic_rng

    def solve(
        self,
        constraints: Sequence[Expr],
        domains: Dict[str, Interval],
        hint: Optional[Assignment] = None,
        key: Optional[bytes] = None,
    ) -> Optional[Assignment]:
        """Find an assignment satisfying every constraint, or None.

        ``domains`` maps every variable to its inclusive value range; the
        returned assignment covers exactly the domain variables.  ``key``
        (optional) is a precomputed :func:`canonical_query_key` for this
        exact query — the engine passes one derived incrementally from
        the path's rolling prefix digests; when omitted and needed it is
        computed from scratch here, with byte-identical results.
        """
        started = time.perf_counter()
        self.stats.queries += 1
        try:
            if key is None and self.wants_key:
                key = canonical_query_key(constraints, domains, hint)
                self.stats.key_time += time.perf_counter() - started
            if self.cache is not None:
                entry = self.cache.get(key)
                if entry is not None:
                    return self._replay_entry(entry)
                self.stats.cache_misses += 1
            rng = self.rng
            if self.deterministic_rng:
                rng = random.Random(int.from_bytes(key[:8], "big"))
            unsat_before = self.stats.unsat_proved
            model = self._solve(list(constraints), dict(domains), dict(hint or {}), rng)
            if self.cache is not None:
                proved_unsat = self.stats.unsat_proved > unsat_before
                self.cache.put(key, entry_for_model(model, proved_unsat))
            return model
        finally:
            self.stats.total_time += time.perf_counter() - started

    def _replay_entry(self, entry) -> Optional[Assignment]:
        """Account a cache hit with the same counters a fresh solve would."""
        self.stats.cache_hits += 1
        if entry[0] == "sat":
            self.stats.sat += 1
        elif entry[0] == "unsat":
            self.stats.unsat_proved += 1
        else:
            self.stats.unknown += 1
        return model_from_entry(entry)

    def _solve(
        self,
        constraints: List[Expr],
        domains: Dict[str, Interval],
        hint: Assignment,
        rng: Optional[random.Random] = None,
    ) -> Optional[Assignment]:
        stats = self.stats
        mark = time.perf_counter()

        # 1. Constant screening.
        live: List[Expr] = []
        for constraint in constraints:
            if isinstance(constraint, Const):
                if constraint.value:
                    continue
                stats.unsat_proved += 1
                stats.screen_time += time.perf_counter() - mark
                return None
            live.append(constraint)
        if not live:
            stats.sat += 1
            stats.hint_hits += 1
            stats.screen_time += time.perf_counter() - mark
            return self._clip(hint, domains)
        now = time.perf_counter()
        stats.screen_time += now - mark
        mark = now

        # 2. Interval propagation (may prove UNSAT, always narrows).
        narrowed = propagate(live, domains)
        now = time.perf_counter()
        stats.propagate_time += now - mark
        mark = now
        if narrowed is None:
            stats.unsat_proved += 1
            return None

        # 3. The clipped hint may already be a model.
        env = self._clip(hint, narrowed)
        satisfied = search.satisfies(live, env)
        now = time.perf_counter()
        stats.hint_time += now - mark
        mark = now
        if satisfied:
            stats.sat += 1
            stats.hint_hits += 1
            return env

        # 4. Linear inversion, repairing one variable of one failing atom.
        repaired = self._linear_repair(live, narrowed, env)
        now = time.perf_counter()
        stats.linear_time += now - mark
        mark = now
        if repaired is not None:
            stats.sat += 1
            stats.linear_hits += 1
            return repaired

        # 5. Bounded exhaustive enumeration of one small variable.
        enumerated = self._enumerate(live, narrowed, env)
        now = time.perf_counter()
        stats.enum_time += now - mark
        mark = now
        if enumerated is not None:
            stats.sat += 1
            stats.enumeration_hits += 1
            return enumerated

        # 6. Guided local search.
        found = search.local_search(
            live, narrowed, env, rng if rng is not None else self.rng,
            max_iters=self.max_search_iters,
        )
        stats.search_time += time.perf_counter() - mark
        if found is not None:
            stats.sat += 1
            stats.search_hits += 1
            return found

        stats.unknown += 1
        return None

    @staticmethod
    def _clip(hint: Assignment, domains: Dict[str, Interval]) -> Assignment:
        """Project the hint into the domain boxes (missing vars -> lo)."""
        env: Assignment = {}
        for name, (lo, hi) in domains.items():
            value = hint.get(name, lo)
            env[name] = min(max(value, lo), hi)
        return env

    def _linear_repair(
        self,
        constraints: List[Expr],
        domains: Dict[str, Interval],
        env: Assignment,
    ) -> Optional[Assignment]:
        """Fix failing constraints by solving atoms one variable at a time.

        Iterates a few rounds because repairing one constraint can break
        another; each accepted repair strictly reduces total penalty, so
        the loop terminates.
        """
        current = dict(env)
        penalty = search.total_penalty(constraints, current)
        for _ in range(8):
            if penalty == 0:
                return current
            progressed = False
            for constraint in constraints:
                if search.branch_distance(constraint, current) == 0:
                    continue
                for atom in _atoms(constraint):
                    for var in sorted(atom.variables()):
                        if var not in domains:
                            continue
                        value = solve_atom(atom, var, current, domains[var], current[var])
                        if value is None:
                            continue
                        trial = dict(current)
                        trial[var] = value
                        trial_penalty = search.total_penalty(constraints, trial)
                        if trial_penalty < penalty:
                            current, penalty = trial, trial_penalty
                            progressed = True
                            break
                    if progressed:
                        break
                if progressed:
                    break
            if not progressed:
                return current if penalty == 0 else None
        return current if penalty == 0 else None

    def _enumerate(
        self,
        constraints: List[Expr],
        domains: Dict[str, Interval],
        env: Assignment,
    ) -> Optional[Assignment]:
        failing_vars: List[str] = []
        for constraint in constraints:
            if search.branch_distance(constraint, env) > 0:
                failing_vars.extend(sorted(constraint.variables()))
        seen = set()
        for var in failing_vars:
            if var in seen or var not in domains:
                continue
            seen.add(var)
            value = search.enumerate_variable(
                constraints, env, var, domains[var], limit=self.enum_limit
            )
            if value is not None:
                model = dict(env)
                model[var] = value
                return model
        return None


def _atoms(constraint: Expr) -> List[Expr]:
    """Decompose nested conjunctions/disjunctions into comparison atoms.

    For a disjunction, each disjunct is an independent repair opportunity;
    for a conjunction, all conjuncts are (the repair loop re-checks the
    full constraint after every candidate fix, so over-approximating the
    atom list is safe).
    """
    if isinstance(constraint, BinOp) and constraint.op in ("land", "lor"):
        return _atoms(constraint.left) + _atoms(constraint.right)
    if isinstance(constraint, UnaryOp) and constraint.op == "lnot":
        from repro.concolic.expr import negate

        return _atoms(negate(constraint.operand))
    return [constraint]
