"""The propagate-stage overhaul: node memos, semantic reuse, batching.

Three layers, each pinned against its unoptimized twin:

* **domain-box memoization** — ``eval_interval``/``narrow`` results
  cached on the hash-consed nodes must be observationally identical to
  the plain recursive versions (same narrowed boxes, same changed
  flags, same UNSAT proofs), hit path included;
* **semantic (subsumption) cache lookups** — UNSAT proofs transfer to
  any subsumed box; SAT models transfer only where schedule-independent
  results are not required, and only after re-validation;
* **batched sibling negations** — ``solve_batch`` over a shared prefix
  must return exactly what per-branch ``solve`` calls return.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.concolic.expr import Const, Var, make_binary, negate
from repro.concolic.path import PathCondition
from repro.concolic.solver import (
    ConstraintSolver,
    DictConstraintCache,
    SemanticIndex,
    merge_stats_dict,
    narrow,
    propagate,
    propagate_memo_disabled,
    propagate_memo_info,
    semantic_query_key,
)
from repro.concolic.solver.cache import box_items, box_subsumes
from repro.concolic.solver.search import validate_model
from repro.concolic.tracer import BranchSite

X = Var("x", 16)
WIDE = {"a": (0, 65535), "b": (0, 65535)}


@st.composite
def comparison(draw):
    """A comparison between an affine var expression and a constant."""
    variable = Var(draw(st.sampled_from(("a", "b"))), 16)
    scale = draw(st.sampled_from((1, 2, 3)))
    offset = draw(st.integers(-50, 50))
    expr = variable if scale == 1 else make_binary("mul", variable, Const(scale))
    if offset:
        expr = make_binary("add", expr, Const(offset))
    op = draw(st.sampled_from(("lt", "le", "gt", "ge", "eq", "ne")))
    bound = Const(draw(st.integers(-100, 70_000)))
    if draw(st.booleans()):
        return make_binary(op, expr, bound)
    return make_binary(op, bound, expr)


@st.composite
def sub_box(draw):
    """A random sub-box of the 16-bit wide domains."""
    box = {}
    for name in ("a", "b"):
        lo = draw(st.integers(0, 60_000))
        hi = lo + draw(st.integers(0, 5_000))
        box[name] = (lo, hi)
    return box


class TestMemoizationIdentity:
    @settings(deadline=None, max_examples=60)
    @given(st.lists(comparison(), min_size=1, max_size=6), sub_box())
    def test_propagate_identical_with_and_without_memo(self, constraints, box):
        with propagate_memo_disabled():
            plain = propagate(list(constraints), dict(box))
        first = propagate(list(constraints), dict(box))  # mostly miss path
        replay = propagate(list(constraints), dict(box))  # hit path
        assert first == plain
        assert replay == plain

    @settings(deadline=None, max_examples=60)
    @given(comparison(), sub_box())
    def test_narrow_replay_identical_including_changed_flag(
        self, constraint, box
    ):
        plain_box, miss_box, hit_box = dict(box), dict(box), dict(box)
        with propagate_memo_disabled():
            plain = narrow(constraint, plain_box)
        miss = narrow(constraint, miss_box)
        hit = narrow(constraint, hit_box)
        assert miss == plain and miss_box == plain_box
        assert hit == plain and hit_box == plain_box

    def test_memo_counters_surface(self):
        constraint = make_binary("le", make_binary("mul", X, Const(3)), Const(99))
        before = propagate_memo_info()
        box = {"x": (0, 65535)}
        narrow(constraint, dict(box))
        narrow(constraint, dict(box))
        after = propagate_memo_info()
        assert set(after) == {
            "eval_hits", "eval_misses", "narrow_hits", "narrow_misses",
        }
        assert after["narrow_hits"] > before["narrow_hits"]


class TestBatchedNegationIdentity:
    @settings(deadline=None, max_examples=25)
    @given(st.lists(comparison(), min_size=1, max_size=8))
    def test_solve_batch_matches_per_branch_solves(self, prefix):
        negations = [(i, negate(prefix[i])) for i in range(len(prefix))]
        hint = {"a": 0, "b": 0}

        serial = ConstraintSolver(deterministic_rng=True)
        with propagate_memo_disabled():
            expected = [
                serial.solve(list(prefix[:i]) + [neg], WIDE, hint=hint)
                for i, neg in negations
            ]
        batched = ConstraintSolver(deterministic_rng=True)
        assert batched.solve_batch(prefix, negations, WIDE, hint=hint) == expected

    def test_batch_counters_match_per_branch(self):
        prefix = [
            make_binary("le", Var(name, 16), Const(bound))
            for name, bound in (("a", 1000), ("b", 900), ("a", 800))
        ]
        negations = [(i, negate(prefix[i])) for i in range(len(prefix))]
        hint = {"a": 0, "b": 0}

        serial = ConstraintSolver(cache=DictConstraintCache(), deterministic_rng=True)
        expected = [
            serial.solve(list(prefix[:i]) + [neg], WIDE, hint=hint)
            for i, neg in negations
        ]
        batched = ConstraintSolver(cache=DictConstraintCache(), deterministic_rng=True)
        models = batched.solve_batch(prefix, negations, WIDE, hint=hint)
        assert models == expected
        for field in ("queries", "sat", "unsat_proved", "unknown"):
            assert getattr(batched.stats, field) == getattr(serial.stats, field)

    def test_solve_batch_rejects_bad_length(self):
        solver = ConstraintSolver()
        with pytest.raises(ValueError):
            solver.solve_batch([], [(1, negate(make_binary("le", X, Const(5))))], {})


class TestSemanticReuse:
    CONTRADICTION = [
        make_binary("lt", X, Const(5)),
        make_binary("gt", X, Const(10)),
    ]

    def test_unsat_proof_transfers_to_subsumed_box(self):
        solver = ConstraintSolver(cache=DictConstraintCache(), deterministic_rng=True)
        assert solver.solve(self.CONTRADICTION, {"x": (0, 65535)}, hint={"x": 0}) is None
        assert solver.solve(self.CONTRADICTION, {"x": (0, 100)}, hint={"x": 0}) is None
        assert solver.stats.semantic_hits == 1
        assert solver.stats.semantic_model_hits == 0
        assert solver.stats.unsat_proved == 2

    def test_model_reuse_on_by_default_for_solo_engines(self):
        solver = ConstraintSolver(cache=DictConstraintCache())
        constraints = [make_binary("ge", X, Const(10))]
        first = solver.solve(constraints, {"x": (0, 65535)}, hint={"x": 0})
        assert first is not None
        # Different box and hint → exact-key miss, semantic model hit.
        second = solver.solve(constraints, {"x": (0, 1000)}, hint={"x": 3})
        assert second == first
        assert solver.stats.semantic_model_hits == 1

    def test_model_reuse_gated_off_under_deterministic_rng(self):
        solver = ConstraintSolver(cache=DictConstraintCache(), deterministic_rng=True)
        constraints = [make_binary("ge", X, Const(10))]
        assert solver.solve(constraints, {"x": (0, 65535)}, hint={"x": 0}) is not None
        assert solver.solve(constraints, {"x": (0, 1000)}, hint={"x": 3}) is not None
        assert solver.stats.semantic_model_hits == 0
        # ...unless explicitly re-enabled.
        forced = ConstraintSolver(
            cache=DictConstraintCache(),
            deterministic_rng=True,
            semantic_model_reuse=True,
        )
        assert forced.solve(constraints, {"x": (0, 65535)}, hint={"x": 0}) is not None
        assert forced.solve(constraints, {"x": (0, 1000)}, hint={"x": 3}) is not None
        assert forced.stats.semantic_model_hits == 1

    def test_stale_model_outside_query_box_is_not_reused(self):
        solver = ConstraintSolver(cache=DictConstraintCache())
        constraints = [make_binary("ge", X, Const(10))]
        first = solver.solve(constraints, {"x": (0, 65535)}, hint={"x": 0})
        assert first is not None
        # A box that excludes the cached model forces a fresh solve.
        second = solver.solve(
            constraints, {"x": (first["x"] + 1, 65535)}, hint={"x": 65535}
        )
        assert second is not None and second["x"] > first["x"]
        assert solver.stats.semantic_model_hits == 0

    def test_semantic_key_matches_rolling_path_digest(self):
        path = PathCondition()
        for i in range(4):
            constraint = make_binary("lt", make_binary("add", X, Const(i)), Const(50))
            path.append(BranchSite("h.py", 10 + i), constraint, taken=bool(i % 2))
        for i in range(4):
            assert path.semantic_negation_key(i) == semantic_query_key(
                path.constraints_to_negate(i)
            )

    def test_stats_surface_new_counters_and_rates(self):
        solver = ConstraintSolver(cache=DictConstraintCache(), deterministic_rng=True)
        solver.solve(self.CONTRADICTION, {"x": (0, 65535)}, hint={"x": 0})
        solver.solve(self.CONTRADICTION, {"x": (0, 9)}, hint={"x": 0})
        stats = solver.stats.as_dict()
        for key in (
            "semantic_lookups",
            "semantic_hits",
            "semantic_model_hits",
            "semantic_hit_rate",
            "propagate_memo_hits",
            "propagate_memo_misses",
            "propagate_memo_hit_rate",
        ):
            assert key in stats
        merged = {}
        merge_stats_dict(merged, stats)
        merge_stats_dict(merged, stats)
        assert merged["semantic_lookups"] == 2 * stats["semantic_lookups"]
        assert merged["semantic_hit_rate"] == pytest.approx(
            stats["semantic_hit_rate"]
        )


class TestValidateModel:
    CONSTRAINTS = [make_binary("ge", X, Const(10))]
    DOMAINS = {"x": (0, 100)}

    def test_accepts_satisfying_in_box_model(self):
        assert validate_model(self.CONSTRAINTS, {"x": 10}, self.DOMAINS)

    def test_rejects_violating_model(self):
        assert not validate_model(self.CONSTRAINTS, {"x": 5}, self.DOMAINS)

    def test_rejects_out_of_box_model(self):
        assert not validate_model(self.CONSTRAINTS, {"x": 200}, self.DOMAINS)

    def test_rejects_wrong_variable_population(self):
        assert not validate_model(self.CONSTRAINTS, {}, self.DOMAINS)
        assert not validate_model(self.CONSTRAINTS, {"x": 10, "y": 1}, self.DOMAINS)


class TestSemanticIndex:
    def test_box_buckets_are_bounded(self):
        index = SemanticIndex(max_keys=2, max_boxes=2)
        for hi in (10, 20, 30):
            index.put(b"k1", {"x": (0, hi)}, ("unsat",))
        assert len(index.get(b"k1")) == 2
        assert index.evictions == 1
        # Oldest box dropped, newest kept.
        assert {box for box, _ in index.get(b"k1")} == {
            (("x", (0, 20)),),
            (("x", (0, 30)),),
        }

    def test_keys_evict_fifo(self):
        index = SemanticIndex(max_keys=2, max_boxes=2)
        index.put(b"k1", {"x": (0, 10)}, ("unsat",))
        index.put(b"k2", {"x": (0, 10)}, ("unsat",))
        index.put(b"k3", {"x": (0, 10)}, ("unsat",))
        assert index.get(b"k1") == ()
        assert index.get(b"k2") and index.get(b"k3")

    def test_unknown_outcomes_are_not_indexed(self):
        index = SemanticIndex()
        index.put(b"k", {"x": (0, 10)}, ("unknown",))
        assert index.get(b"k") == ()

    def test_box_subsumption(self):
        wider = box_items({"x": (0, 100), "y": (5, 50)})
        assert box_subsumes(wider, {"x": (10, 90), "y": (5, 50)})
        assert not box_subsumes(wider, {"x": (10, 101), "y": (5, 50)})
        assert not box_subsumes(wider, {"x": (10, 90)})
        assert not box_subsumes(wider, {"x": (10, 90), "z": (5, 50)})


class TestBoundedExactCache:
    def test_lru_eviction_order_and_counters(self):
        cache = DictConstraintCache(max_entries=2)
        cache.put(b"a", ("unsat",))
        cache.put(b"b", ("unsat",))
        assert cache.get(b"a") is not None  # refresh a → b is now oldest
        cache.put(b"c", ("unsat",))
        assert cache.get(b"b") is None
        assert cache.get(b"a") is not None
        assert cache.get(b"c") is not None
        assert cache.evictions == 1
        info = cache.info()
        assert info["max_entries"] == 2 and info["entries"] == 2

    def test_unbounded_by_default(self):
        cache = DictConstraintCache()
        for i in range(100):
            cache.put(str(i).encode(), ("unsat",))
        assert len(cache) == 100 and cache.evictions == 0
        assert cache.info()["max_entries"] is None

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            DictConstraintCache(max_entries=0)

    def test_semantic_layer_optional(self):
        cache = DictConstraintCache(semantic=False)
        cache.put_semantic(b"k", {"x": (0, 10)}, ("unsat",))
        assert cache.get_semantic(b"k") == ()
        assert "semantic_keys" not in cache.info()
