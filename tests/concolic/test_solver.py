"""Tests for the composite constraint solver and its sub-solvers."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.concolic.expr import BinOp, Const, UnaryOp, Var, make_binary, negate
from repro.concolic.solver import (
    ConstraintSolver,
    branch_distance,
    enumerate_variable,
    eval_interval,
    linearize,
    local_search,
    propagate,
    satisfies,
    solve_atom,
)
from repro.concolic.solver.linear import NotLinear, solve_linear_comparison


def var(name="x", bits=32):
    return Var(name, bits)


class TestIntervals:
    def test_const_and_var(self):
        assert eval_interval(Const(5), {}) == (5, 5)
        assert eval_interval(var(bits=8), {}) == (0, 255)
        assert eval_interval(var(), {"x": (1, 9)}) == (1, 9)

    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("add", (1, 2), (10, 20), (11, 22)),
            ("sub", (1, 2), (10, 20), (-19, -8)),
            ("mul", (2, 3), (4, 5), (8, 15)),
            ("shr", (0, 255), (4, 4), (0, 15)),
            ("shl", (1, 2), (3, 3), (8, 16)),
            ("mod", (0, 100), (7, 7), (0, 6)),
            ("floordiv", (10, 20), (2, 2), (5, 10)),
        ],
    )
    def test_arithmetic_bounds(self, op, left, right, expected):
        expr = BinOp(op, var("a"), var("b"))
        domains = {"a": left, "b": right}
        assert eval_interval(expr, domains) == expected

    def test_comparison_decided(self):
        lt = BinOp("lt", var("a"), var("b"))
        assert eval_interval(lt, {"a": (0, 4), "b": (5, 9)}) == (1, 1)
        assert eval_interval(lt, {"a": (5, 9), "b": (0, 4)}) == (0, 0)
        assert eval_interval(lt, {"a": (0, 9), "b": (5, 9)}) == (0, 1)

    def test_propagate_narrows(self):
        constraints = [
            BinOp("ge", var(), Const(10)),
            BinOp("lt", var(), Const(20)),
        ]
        narrowed = propagate(constraints, {"x": (0, 255)})
        assert narrowed == {"x": (10, 19)}

    def test_propagate_detects_unsat(self):
        constraints = [
            BinOp("gt", var(), Const(10)),
            BinOp("lt", var(), Const(5)),
        ]
        assert propagate(constraints, {"x": (0, 255)}) is None

    def test_propagate_through_conjunction(self):
        conj = make_binary(
            "land",
            BinOp("ge", var(), Const(3)),
            BinOp("le", var(), Const(7)),
        )
        narrowed = propagate([conj], {"x": (0, 255)})
        assert narrowed == {"x": (3, 7)}

    def test_propagate_eq(self):
        narrowed = propagate([BinOp("eq", var(), Const(42))], {"x": (0, 255)})
        assert narrowed == {"x": (42, 42)}

    def test_propagate_scaled_shift(self):
        # (x >> 16) == 0x0A0A narrows x to [0x0A0A0000, 0x0A0AFFFF].
        constraint = BinOp("eq", BinOp("shr", var(), Const(16)), Const(0x0A0A))
        narrowed = propagate([constraint], {"x": (0, 2**32 - 1)})
        assert narrowed == {"x": (0x0A0A0000, 0x0A0AFFFF)}

    def test_propagate_ne_at_endpoint(self):
        narrowed = propagate([BinOp("ne", var(), Const(0))], {"x": (0, 10)})
        assert narrowed == {"x": (1, 10)}

    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
        st.sampled_from(["add", "sub", "mul", "and", "or", "xor"]),
    )
    def test_interval_soundness(self, a, b, point, op):
        """Concrete evaluation always lands inside the computed interval."""
        lo_a, hi_a = sorted((a, b))
        value = min(max(point, lo_a), hi_a)
        expr = BinOp(op, var("a"), Const(17))
        lo, hi = eval_interval(expr, {"a": (lo_a, hi_a)})
        concrete = expr.evaluate({"a": value})
        assert lo <= concrete <= hi


class TestLinear:
    def test_linearize_basics(self):
        a, b = linearize(make_binary("add", make_binary("mul", var(), Const(3)), Const(7)),
                         "x", {})
        assert (a, b) == (3, 7)

    def test_linearize_shift(self):
        a, b = linearize(make_binary("shl", var(), Const(4)), "x", {})
        assert (a, b) == (16, 0)

    def test_linearize_other_vars_substituted(self):
        expr = make_binary("add", var(), var("y"))
        a, b = linearize(expr, "x", {"y": 100})
        assert (a, b) == (1, 100)

    def test_nonlinear_rejected(self):
        with pytest.raises(NotLinear):
            linearize(make_binary("mul", var(), var()), "x", {})

    @pytest.mark.parametrize(
        "op,a,b,domain,expect_pred",
        [
            ("eq", 2, -10, (0, 100), lambda x: 2 * x - 10 == 0),
            ("ne", 1, -5, (0, 100), lambda x: x != 5),
            ("lt", 1, -5, (0, 100), lambda x: x < 5),
            ("le", 3, -9, (0, 100), lambda x: 3 * x <= 9),
            ("gt", 1, -5, (0, 100), lambda x: x > 5),
            ("ge", -1, 5, (0, 100), lambda x: -x + 5 >= 0),
        ],
    )
    def test_solve_linear_comparison(self, op, a, b, domain, expect_pred):
        value = solve_linear_comparison(op, a, b, domain, prefer=50)
        assert value is not None
        assert domain[0] <= value <= domain[1]
        assert expect_pred(value)

    def test_solve_eq_no_integer_solution(self):
        # 2x == 5 has no integer root.
        assert solve_linear_comparison("eq", 2, -5, (0, 100), prefer=0) is None

    def test_solve_out_of_domain(self):
        assert solve_linear_comparison("eq", 1, -200, (0, 100), prefer=0) is None

    def test_prefer_respected_when_possible(self):
        value = solve_linear_comparison("le", 1, -50, (0, 100), prefer=10)
        assert value == 10  # anything <= 50 works; closest to prefer

    def test_solve_atom_field_extraction(self):
        # (x >> 8) == 0xAB with x 16-bit.
        atom = BinOp("eq", BinOp("shr", var(bits=16), Const(8)), Const(0xAB))
        value = solve_atom(atom, "x", {}, (0, 0xFFFF), prefer=0)
        assert value is not None and (value >> 8) == 0xAB

    def test_solve_atom_negated(self):
        atom = UnaryOp("lnot", BinOp("eq", var(), Const(7)))
        value = solve_atom(atom, "x", {}, (0, 10), prefer=7)
        assert value is not None and value != 7


class TestSearch:
    def test_branch_distance_zero_when_satisfied(self):
        assert branch_distance(BinOp("lt", var(), Const(10)), {"x": 3}) == 0

    def test_branch_distance_gradient(self):
        constraint = BinOp("eq", var(), Const(100))
        assert branch_distance(constraint, {"x": 90}) < branch_distance(
            constraint, {"x": 50}
        )

    def test_distance_handles_eval_errors(self):
        constraint = BinOp("eq", BinOp("floordiv", Const(10), var()), Const(5))
        assert branch_distance(constraint, {"x": 0}) > 0  # div by zero: penalized

    def test_enumerate_small_domain(self):
        constraints = [BinOp("eq", BinOp("mod", var(), Const(7)), Const(3))]
        value = enumerate_variable(constraints, {"x": 0}, "x", (0, 100))
        assert value is not None and value % 7 == 3

    def test_enumerate_gives_up_on_large_domain(self):
        constraints = [BinOp("eq", var(), Const(5))]
        assert enumerate_variable(constraints, {"x": 0}, "x", (0, 10**9), limit=100) is None

    def test_local_search_solves_equality(self):
        constraints = [BinOp("eq", var(), Const(77777))]
        model = local_search(constraints, {"x": (0, 2**20)}, {"x": 77000},
                             random.Random(1))
        assert model is not None and model["x"] == 77777

    def test_local_search_multi_constraint(self):
        constraints = [
            BinOp("ge", var(), Const(50)),
            BinOp("le", var(), Const(60)),
            BinOp("eq", BinOp("mod", var(), Const(10)), Const(5)),
        ]
        model = local_search(constraints, {"x": (0, 255)}, {"x": 0}, random.Random(2))
        assert model is not None and model["x"] == 55


class TestCompositeSolver:
    def make_solver(self):
        return ConstraintSolver(rng=random.Random(0))

    def test_empty_constraints_returns_hint(self):
        solver = self.make_solver()
        model = solver.solve([], {"x": (0, 10)}, {"x": 3})
        assert model == {"x": 3}

    def test_constant_false_is_unsat(self):
        solver = self.make_solver()
        assert solver.solve([Const(0)], {"x": (0, 10)}, {"x": 0}) is None
        assert solver.stats.unsat_proved == 1

    def test_interval_unsat_detected(self):
        solver = self.make_solver()
        constraints = [BinOp("gt", var(), Const(100))]
        assert solver.solve(constraints, {"x": (0, 50)}, {"x": 0}) is None
        assert solver.stats.unsat_proved == 1

    def test_hint_clipped_into_domain(self):
        solver = self.make_solver()
        model = solver.solve([BinOp("ge", var(), Const(5))], {"x": (0, 10)}, {"x": 99})
        assert model == {"x": 10}

    def test_negated_branch_query(self):
        """The canonical concolic query: prefix constraints + one negation."""
        solver = self.make_solver()
        prefix = [BinOp("gt", var(), Const(100))]            # held: x > 100
        negated = negate(BinOp("eq", var("y", 8), Const(7)))  # flip: y != 7
        model = solver.solve(
            prefix + [negated],
            {"x": (0, 2**32 - 1), "y": (0, 255)},
            {"x": 150, "y": 7},
        )
        assert model is not None
        assert model["x"] > 100 and model["y"] != 7

    def test_bitmask_constraint(self):
        solver = self.make_solver()
        constraints = [BinOp("eq", BinOp("and", var(), Const(0xF)), Const(0x3))]
        model = solver.solve(constraints, {"x": (0, 2**16 - 1)}, {"x": 0})
        assert model is not None and (model["x"] & 0xF) == 0x3

    def test_prefix_match_constraint(self):
        """The constraint shape BGP filters produce."""
        solver = self.make_solver()
        constraints = [
            BinOp("eq", BinOp("shr", var("net"), Const(16)), Const(0x0A0A)),
            BinOp("ge", var("len", 6), Const(16)),
            BinOp("le", var("len", 6), Const(24)),
        ]
        model = solver.solve(
            constraints,
            {"net": (0, 2**32 - 1), "len": (0, 63)},
            {"net": 0, "len": 0},
        )
        assert model is not None
        assert model["net"] >> 16 == 0x0A0A
        assert 16 <= model["len"] <= 24

    def test_multi_variable_repair(self):
        solver = self.make_solver()
        constraints = [
            BinOp("eq", make_binary("add", var("a", 8), var("b", 8)), Const(100)),
            BinOp("ge", var("a", 8), Const(60)),
        ]
        model = solver.solve(constraints, {"a": (0, 255), "b": (0, 255)},
                             {"a": 0, "b": 0})
        assert model is not None
        assert model["a"] + model["b"] == 100 and model["a"] >= 60

    def test_stats_accumulate(self):
        solver = self.make_solver()
        solver.solve([BinOp("eq", var(), Const(1))], {"x": (0, 10)}, {"x": 0})
        solver.solve([Const(0)], {"x": (0, 10)}, {"x": 0})
        assert solver.stats.queries == 2
        assert solver.stats.sat == 1
        assert solver.stats.sat_rate == pytest.approx(0.5)

    @settings(deadline=None, max_examples=40)
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.sampled_from(["eq", "ne", "lt", "le", "gt", "ge"]),
    )
    def test_models_always_satisfy(self, bound, hint, op):
        """Whatever the solver returns must satisfy the constraints."""
        solver = ConstraintSolver(rng=random.Random(99))
        constraints = [BinOp(op, var("v", 8), Const(bound))]
        model = solver.solve(constraints, {"v": (0, 255)}, {"v": hint})
        if model is not None:
            assert satisfies(constraints, model)
        else:
            # Only trivially impossible comparisons may fail.
            assert (op, bound) in {("lt", 0), ("gt", 255), ("ne", None)} or not any(
                satisfies(constraints, {"v": value}) for value in range(256)
            )
