"""Shared benchmark infrastructure.

Each benchmark measures its subject with pytest-benchmark and *also*
records the paper-comparison rows (claimed vs. measured) through the
``paper_rows`` fixture; rows are printed in a single table at the end of
the session and appended to ``benchmarks/results.json`` so EXPERIMENTS.md
can be refreshed from a real run.
"""

import json
import os
from dataclasses import asdict, dataclass, field
from typing import List, Optional

import pytest

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.json")


@dataclass
class PaperRow:
    """One claim-vs-measurement comparison."""

    experiment: str
    metric: str
    paper_value: str
    measured_value: str
    note: str = ""


class PaperComparison:
    """Collects rows across the whole benchmark session."""

    def __init__(self):
        self.rows: List[PaperRow] = []

    def add(self, experiment, metric, paper_value, measured_value, note=""):
        self.rows.append(
            PaperRow(experiment, metric, str(paper_value), str(measured_value), note)
        )


_collector = PaperComparison()


@pytest.fixture
def paper_rows():
    """Record claim-vs-measured rows for the final comparison table."""
    return _collector


def pytest_sessionfinish(session, exitstatus):
    if not _collector.rows:
        return
    width = (14, 38, 30, 30)
    header = ("experiment", "metric", "paper", "measured")
    lines = ["", "=" * 120, "PAPER COMPARISON", "=" * 120]
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(header, width))
    )
    lines.append("-" * 120)
    for row in _collector.rows:
        lines.append(
            "  ".join(
                str(v)[:w].ljust(w)
                for v, w in zip(
                    (row.experiment, row.metric, row.paper_value, row.measured_value),
                    width,
                )
            )
            + (f"  # {row.note}" if row.note else "")
        )
    lines.append("=" * 120)
    print("\n".join(lines))
    try:
        with open(RESULTS_PATH, "w") as handle:
            json.dump([asdict(row) for row in _collector.rows], handle, indent=2)
    except OSError:
        pass
