"""Property-based tests for the policy interpreter.

The interpreter is the cornerstone of the paper's code+configuration
coverage claim, so it gets its own robustness properties: randomly
generated filter ASTs never crash, evaluate deterministically, and agree
between concrete and symbolic evaluation (the concolic engine sees the
same accept/reject decisions production does).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.policy import (
    AddCommunity,
    And,
    AsPathContains,
    AttrCompare,
    BoolConst,
    CommunityHas,
    FilterAction,
    FilterInterpreter,
    FilterProgram,
    If,
    Not,
    Or,
    OriginAsCompare,
    PrefixIn,
    PrefixSet,
    PrefixSpec,
    Prepend,
    RouteView,
    SetAttr,
    Terminal,
)
from repro.concolic import trace
from repro.concolic.symbolic import SymInt
from repro.util.ip import Prefix

# ---------------------------------------------------------------------------
# Random AST generation.
# ---------------------------------------------------------------------------

_attr_names = st.sampled_from(
    ["net.len", "local-pref", "med", "origin", "as-path.len"]
)
_ops = st.sampled_from(["==", "!=", "<", "<=", ">", ">="])

_leaf_conditions = st.one_of(
    st.builds(BoolConst, st.booleans()),
    st.builds(AttrCompare, _attr_names, _ops, st.integers(0, 300)),
    st.builds(AsPathContains, st.integers(1, 70000)),
    st.builds(OriginAsCompare, st.integers(1, 70000), st.booleans()),
    st.builds(CommunityHas, st.integers(0, 2**32 - 1)),
    st.builds(
        lambda network, length, span: PrefixIn(
            inline=PrefixSet(
                "<gen>",
                (PrefixSpec(
                    Prefix(network, length),
                    min_len=length,
                    max_len=min(32, length + span),
                ),),
            )
        ),
        st.integers(0, 2**32 - 1),
        st.integers(0, 28),
        st.integers(0, 4),
    ),
)

conditions = st.recursive(
    _leaf_conditions,
    lambda children: st.one_of(
        st.builds(And, children, children),
        st.builds(Or, children, children),
        st.builds(Not, children),
    ),
    max_leaves=6,
)

_actions = st.one_of(
    st.builds(SetAttr, st.sampled_from(["local-pref", "med", "origin"]),
              st.integers(0, 300)),
    st.builds(AddCommunity, st.integers(0, 2**32 - 1)),
    st.builds(Prepend, st.integers(1, 65535), st.integers(1, 3)),
    st.builds(Terminal, st.sampled_from([FilterAction.ACCEPT, FilterAction.REJECT])),
)

statements = st.recursive(
    _actions,
    lambda children: st.builds(
        If,
        conditions,
        st.lists(children, min_size=1, max_size=3).map(tuple),
        st.lists(children, max_size=2).map(tuple),
    ),
    max_leaves=8,
)

programs = st.lists(statements, min_size=1, max_size=5).map(
    lambda body: FilterProgram("<gen>", tuple(body))
)

route_views = st.builds(
    lambda network, length, asns, pref, med, communities: RouteView.of(
        network, length,
        PathAttributes(
            as_path=AsPath.sequence(asns),
            next_hop=1,
            local_pref=pref,
            med=med,
            communities=tuple(communities),
        ),
    ),
    st.integers(0, 2**32 - 1),
    st.integers(0, 32),
    st.lists(st.integers(1, 70000), min_size=1, max_size=4),
    st.one_of(st.none(), st.integers(0, 400)),
    st.one_of(st.none(), st.integers(0, 400)),
    st.lists(st.integers(0, 2**32 - 1), max_size=3),
)


def clone_view(view: RouteView) -> RouteView:
    return RouteView.of(view.network, view.length, view.to_attributes(), view.peer)


class TestInterpreterProperties:
    @settings(max_examples=120, deadline=None)
    @given(programs, route_views)
    def test_never_crashes_and_returns_result(self, program, view):
        result = FilterInterpreter().run(program, clone_view(view))
        assert result.action in (FilterAction.ACCEPT, FilterAction.REJECT)

    @settings(max_examples=80, deadline=None)
    @given(programs, route_views)
    def test_deterministic(self, program, view):
        interpreter = FilterInterpreter()
        first = interpreter.run(program, clone_view(view))
        second = interpreter.run(program, clone_view(view))
        assert first.action == second.action
        assert first.attributes.local_pref == second.attributes.local_pref
        assert first.attributes.communities == second.attributes.communities

    @settings(max_examples=80, deadline=None)
    @given(programs, route_views)
    def test_symbolic_and_concrete_evaluation_agree(self, program, view):
        """The concolic engine must see production's accept/reject decision.

        Evaluating the same filter over a view whose net/len are SymInt
        (inside a trace) must reach the same action as the concrete run —
        the property that makes exploration findings transferable to the
        live system.
        """
        interpreter = FilterInterpreter()
        concrete = interpreter.run(program, clone_view(view))
        symbolic_view = RouteView.of(
            SymInt.variable("net", int(view.network)),
            SymInt.variable("len", int(view.length), bits=6),
            view.to_attributes(),
        )
        with trace() as recorder:
            symbolic = interpreter.run(program, symbolic_view)
        assert symbolic.action == concrete.action
        # And every recorded constraint holds for the concrete inputs.
        env = {"net": int(view.network), "len": int(view.length)}
        for constraint in recorder.path.held_constraints():
            assert bool(constraint.evaluate(env))

    @settings(max_examples=60, deadline=None)
    @given(programs, route_views)
    def test_fallthrough_always_rejects(self, program, view):
        result = FilterInterpreter().run(program, clone_view(view))
        if result.fell_through:
            assert result.action == FilterAction.REJECT

    @settings(max_examples=60, deadline=None)
    @given(route_views, st.integers(1, 65535), st.integers(1, 3))
    def test_prepend_lengthens_path_exactly(self, view, asn, count):
        program = FilterProgram(
            "p", (Prepend(asn, count), Terminal(FilterAction.ACCEPT))
        )
        before = view.as_path.hop_count()
        result = FilterInterpreter().run(program, clone_view(view))
        assert result.attributes.as_path.hop_count() == before + count

    @settings(max_examples=60, deadline=None)
    @given(route_views, st.integers(0, 2**32 - 1))
    def test_add_community_idempotent(self, view, community):
        program = FilterProgram(
            "c",
            (AddCommunity(community), AddCommunity(community),
             Terminal(FilterAction.ACCEPT)),
        )
        result = FilterInterpreter().run(program, clone_view(view))
        added = [
            c for c in result.attributes.communities if int(c) == community
        ]
        original = [c for c in view.communities if int(c) == community]
        assert len(added) - len(original) in (0, 1)
