"""Lightweight measurement primitives used by benchmarks and the monitor.

The evaluation reproduces throughput (updates per second), memory-page
fractions, and exploration counters, so the library carries its own tiny
metrics toolkit rather than depending on an external one:

* :class:`Counter` / :class:`CounterRegistry` — named monotonically
  increasing counters,
* :class:`RunningStats` — Welford mean / variance / min / max,
* :class:`Histogram` — fixed set of recorded samples with percentiles,
* :class:`RateMeter` — events per (simulated or wall-clock) second,
* :class:`Stopwatch` — context-manager wall-clock timer.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Counter:
    """A named monotonically increasing counter."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge for decrements")
        self.value += amount


class CounterRegistry:
    """A namespace of counters, created on first use.

    >>> registry = CounterRegistry()
    >>> registry.increment("paths_explored")
    >>> registry["paths_explored"]
    1
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def increment(self, name: str, amount: int = 1) -> None:
        self.counter(name).increment(amount)

    def __getitem__(self, name: str) -> int:
        return self._counters[name].value if name in self._counters else 0

    def snapshot(self) -> Dict[str, int]:
        """A plain dict copy of all counter values."""
        return {name: counter.value for name, counter in self._counters.items()}

    def reset(self) -> None:
        self._counters.clear()


class RunningStats:
    """Welford online mean/variance with min/max tracking."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.4g}, "
            f"stddev={self.stddev:.4g}, min={self.minimum}, max={self.maximum})"
        )


class Histogram:
    """Recorded samples with percentile queries.

    Keeps raw samples; fine for the sample counts benchmarks produce
    (thousands, not millions).
    """

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted = True

    def add(self, value: float) -> None:
        self._samples.append(value)
        self._sorted = False

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, pct: float) -> float:
        """Linear-interpolated percentile, ``pct`` in [0, 100]."""
        if not self._samples:
            raise ValueError("empty histogram")
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile {pct} out of range")
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        if len(self._samples) == 1:
            return self._samples[0]
        rank = (pct / 100.0) * (len(self._samples) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return self._samples[low]
        weight = rank - low
        low_sample, high_sample = self._samples[low], self._samples[high]
        # lerp as low + w*(high-low), clamped: the textbook two-product
        # form can dip below earlier percentiles when rounding denormal
        # products (e.g. two 5e-324 samples make p50 = 0 < p25).
        value = low_sample + weight * (high_sample - low_sample)
        return min(max(value, low_sample), high_sample)

    @property
    def mean(self) -> float:
        if not self._samples:
            raise ValueError("empty histogram")
        return sum(self._samples) / len(self._samples)

    @property
    def maximum(self) -> float:
        if not self._samples:
            raise ValueError("empty histogram")
        return max(self._samples)

    @property
    def minimum(self) -> float:
        if not self._samples:
            raise ValueError("empty histogram")
        return min(self._samples)


@dataclass
class RateMeter:
    """Events per second over an explicit time axis.

    The time axis is supplied by the caller (simulated seconds from the
    event simulator, or wall-clock seconds), so the same meter works for
    both live and simulated throughput measurements.
    """

    start_time: float = 0.0
    events: int = 0
    last_time: float = field(default=0.0)

    def record(self, now: float, count: int = 1) -> None:
        if now < self.last_time:
            raise ValueError("time went backwards")
        self.events += count
        self.last_time = now

    def rate(self, now: Optional[float] = None) -> float:
        """Events per second from ``start_time`` to ``now``."""
        end = self.last_time if now is None else now
        elapsed = end - self.start_time
        if elapsed <= 0:
            return 0.0
        return self.events / elapsed


class Stopwatch:
    """Context-manager wall-clock timer.

    >>> with Stopwatch() as watch:
    ...     _ = sum(range(100))
    >>> watch.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started = 0.0

    def __enter__(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._started
