"""Coverage-guided seed scheduling: scorer semantics and DiCE wiring.

The scheduler must be a *drop-in* for blind round-robin (identical picks
until exploration history exists — the end-to-end tests pin that), and
once history exists it must steer budget toward peers and seeds still
producing new branch coverage.
"""

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.messages import UpdateMessage
from repro.bgp.nlri import NlriEntry
from repro.concolic.coverage import BranchCoverage, CoverageScheduler
from repro.concolic.path import PathCondition
from repro.concolic.tracer import BranchSite
from repro.core.inputs import seed_signature
from repro.util.ip import Prefix, ip_to_int


def coverage_over(*sites):
    """A BranchCoverage having observed one taken branch per site name."""
    path = PathCondition()
    from repro.concolic.expr import Const, Var, make_binary

    for i, site in enumerate(sites):
        path.append(
            BranchSite(site, i), make_binary("lt", Var("x", 8), Const(i + 1)), True
        )
    coverage = BranchCoverage()
    coverage.observe(path)
    return coverage


def update_for(prefix):
    return UpdateMessage(
        attributes=PathAttributes(
            as_path=AsPath.sequence([65010]), next_hop=ip_to_int("10.0.0.9")
        ),
        nlri=[NlriEntry.from_prefix(Prefix.parse(prefix))],
    )


class TestCoverageScheduler:
    def test_no_history_ties_resolve_by_rotation(self):
        scheduler = CoverageScheduler()
        candidates = [("a", b"s1"), ("b", b"s2"), ("c", b"s3")]
        assert scheduler.pick(candidates, after=None) == 0
        assert scheduler.pick(candidates, after="a") == 1
        assert scheduler.pick(candidates, after="b") == 2
        assert scheduler.pick(candidates, after="c") == 0

    def test_productive_peer_outranks_dry_peer(self):
        scheduler = CoverageScheduler()
        # "hot" found 4 new outcomes; "dry" only retreads f1.py, which
        # the merged coverage already contains -> 0 new outcomes.
        scheduler.note_session("hot", coverage_over("f1.py", "f2.py", "f3.py", "f4.py"))
        scheduler.note_session("dry", coverage_over("f1.py"))
        assert scheduler.score("hot", None) > scheduler.score("dry", None)

    def test_new_outcomes_counted_against_merged_coverage(self):
        scheduler = CoverageScheduler()
        first = scheduler.note_session("p", coverage_over("a.py", "b.py"))
        assert first == 2
        repeat = scheduler.note_session("p", coverage_over("a.py", "b.py"))
        assert repeat == 0  # same sites/lines: nothing new the second time

    def test_novel_seed_outranks_scheduled_seed(self):
        scheduler = CoverageScheduler()
        scheduler.mark_scheduled(b"seen")
        assert scheduler.score("p", b"fresh") > scheduler.score("p", b"seen")

    def test_unexplored_peer_scored_optimistically(self):
        scheduler = CoverageScheduler()
        scheduler.note_session("veteran", coverage_over("a.py", "b.py", "c.py"))
        # A brand-new peer must not be starved by the veteran's record.
        assert scheduler.score("newcomer", b"x") >= scheduler.score("veteran", b"x")

    def test_ewma_decays_stale_productivity(self):
        scheduler = CoverageScheduler(decay=0.5)
        scheduler.note_session("p", coverage_over("a.py", "b.py", "c.py", "d.py"))
        high = scheduler._peer_gain["p"]
        for _ in range(4):  # dry sessions: same coverage again
            scheduler.note_session("p", coverage_over("a.py"))
        assert scheduler._peer_gain["p"] < high / 2


class TestSeedSignature:
    def test_equal_updates_share_a_signature(self):
        assert seed_signature(update_for("10.1.0.0/16")) == seed_signature(
            update_for("10.1.0.0/16")
        )

    def test_different_updates_differ(self):
        assert seed_signature(update_for("10.1.0.0/16")) != seed_signature(
            update_for("10.2.0.0/16")
        )


class TestDiceIntegration:
    def test_pick_seed_prefers_productive_peer_after_history(self):
        from repro.core.dice import DiCE

        dice = DiCE(object())  # the facade only stores the router here
        dice.clear_observed()
        dice.observe("hot", update_for("10.1.0.0/16"))
        dice.observe("dry", update_for("10.2.0.0/16"))
        # Fake history: "hot" keeps finding new outcomes, "dry" does not.
        dice.scheduler.note_session("hot", coverage_over("h1.py", "h2.py", "h3.py"))
        dice.scheduler.note_session("dry", BranchCoverage())
        # Both buffered seeds were already scheduled once (novelty equal)...
        dice.scheduler.mark_scheduled(seed_signature(update_for("10.1.0.0/16")))
        dice.scheduler.mark_scheduled(seed_signature(update_for("10.2.0.0/16")))
        # ...so the productive peer wins even when rotation points at "dry".
        dice._last_served_peer = "hot"
        peer, _ = dice.pick_seed()
        assert peer == "hot"

    def test_batch_seeds_orders_by_score_with_history(self):
        from repro.core.dice import DiCE

        dice = DiCE(object())  # the facade only stores the router here
        dice.clear_observed()
        dice.observe("dry", update_for("10.2.0.0/16"))
        dice.observe("hot", update_for("10.1.0.0/16"))
        dice.scheduler.note_session("hot", coverage_over("h1.py", "h2.py"))
        dice.scheduler.note_session("dry", BranchCoverage())
        dice.scheduler.mark_scheduled(seed_signature(update_for("10.1.0.0/16")))
        dice.scheduler.mark_scheduled(seed_signature(update_for("10.2.0.0/16")))
        batch = dice.batch_seeds(all_seeds=True)
        assert [peer for peer, _ in batch] == ["hot", "dry"]

    def test_batch_seeds_neutral_without_history(self):
        from repro.core.dice import DiCE

        dice = DiCE(object())  # the facade only stores the router here
        dice.clear_observed()
        dice.observe("b", update_for("10.2.0.0/16"))
        dice.observe("a", update_for("10.1.0.0/16"))
        # Observation order preserved when no coverage history exists.
        assert [peer for peer, _ in dice.batch_seeds(all_seeds=True)] == ["b", "a"]


class TestFederationScheduler:
    """Cross-AS dispatch rotation: yield-weighted, starvation-free."""

    def test_no_history_is_plain_round_robin(self):
        from repro.concolic.coverage import FederationScheduler

        scheduler = FederationScheduler()
        candidates = [("as0", None), ("as1", None), ("as2", None)]
        order = []
        last = None
        for _ in range(6):
            choice = scheduler.pick(candidates, after=last)
            last = candidates[choice][0]
            order.append(last)
        assert order == ["as0", "as1", "as2", "as0", "as1", "as2"]

    def test_high_yield_as_wins_proportionally_more_slots(self):
        from repro.concolic.coverage import FederationScheduler

        scheduler = FederationScheduler()
        scheduler.note_findings("loud", 10)
        scheduler.note_findings("quiet", 0)
        candidates = [("loud", None), ("quiet", None)]
        served = {"loud": 0, "quiet": 0}
        last = None
        for _ in range(24):
            choice = scheduler.pick(candidates, after=last)
            last = candidates[choice][0]
            served[last] += 1
        assert served["loud"] > served["quiet"]
        assert served["quiet"] > 0

    def test_zero_yield_as_is_delayed_never_starved(self):
        """The credit floor guarantees bounded waiting: with bounded
        pending queues a never-dispatched AS would have its seeds
        silently coalesced away, so this is a correctness bound, not
        just fairness."""
        from repro.concolic.coverage import FederationScheduler

        scheduler = FederationScheduler()
        scheduler.note_findings("quiet", 0)
        candidates = [("loud", None), ("quiet", None)]
        last = None
        for round_index in range(200):
            # "loud" keeps producing findings on every harvested session.
            scheduler.note_findings("loud", 5)
            choice = scheduler.pick(candidates, after=last)
            last = candidates[choice][0]
            if last == "quiet":
                break
        else:
            raise AssertionError("zero-yield AS starved for 200 rounds")
        # Served within the score-ratio bound (~1 + EWMA of the loud AS).
        assert round_index <= 12

    def test_yields_snapshot_for_reports(self):
        from repro.concolic.coverage import FederationScheduler

        scheduler = FederationScheduler()
        scheduler.note_findings("as0", 4)
        scheduler.note_findings("as0", 2)
        snapshot = scheduler.yields()
        assert set(snapshot) == {"as0"}
        assert snapshot["as0"] == pytest.approx(3.0)  # 4 then EWMA with 2
