"""Focused coverage for privacy digests and federated digest comparison.

The end-to-end privacy behavior rides inside the DiCE tests; this module
pins down the narrow interface itself — salt isolation, mismatch
detection over arbitrary generated topologies, and the
:meth:`FederatedExploration._compare_digests` pair-walk — so a privacy
regression fails here with a precise message, not as a distant
federated-wave assertion.
"""

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.messages import UpdateMessage
from repro.bgp.nlri import NlriEntry
from repro.core.federation import FederatedExploration, IsolatedFabric
from repro.core.privacy import (
    OriginDigest,
    PrivacyGuard,
    digest_conflicts,
    origin_digest,
    prefix_digest,
    resolve_digest,
)
from repro.topology import AsGraph, build_routers
from repro.topology.generators import clique
from repro.util.errors import PrivacyViolation
from repro.util.ip import Prefix

P = Prefix.parse


@pytest.fixture(scope="module")
def clique_routers():
    graph = clique(3, seed=4)
    host, routers = build_routers(graph)
    host.run()
    return graph, routers


def hijack_update(prefix, origin_asn, next_hop=0x0A000002):
    return UpdateMessage(
        attributes=PathAttributes(
            as_path=AsPath.sequence([origin_asn]), next_hop=next_hop
        ),
        nlri=[NlriEntry.from_prefix(prefix)],
    )


class TestDigestPrimitives:
    def test_prefix_digest_is_salt_isolated(self):
        prefix = P("10.1.0.0/16")
        assert prefix_digest(b"round-1", prefix) != prefix_digest(b"round-2", prefix)
        assert origin_digest(b"s", prefix, 65001) != origin_digest(b"s", prefix, 65002)

    def test_digests_from_distinct_salts_share_no_keys(self, clique_routers):
        _, routers = clique_routers
        router = routers["as0"]
        a = OriginDigest.from_router(router, b"salt-a")
        b = OriginDigest.from_router(router, b"salt-b")
        assert len(a) == len(b) == router.table_size()
        assert not (set(a.entries) & set(b.entries))

    def test_comparison_requires_shared_salt(self, clique_routers):
        _, routers = clique_routers
        a = OriginDigest.from_router(routers["as0"], b"salt-a")
        b = OriginDigest.from_router(routers["as1"], b"salt-b")
        with pytest.raises(PrivacyViolation):
            list(digest_conflicts(a, b))

    def test_agreeing_views_have_no_conflicts(self, clique_routers):
        _, routers = clique_routers
        a = OriginDigest.from_router(routers["as0"], b"s")
        b = OriginDigest.from_router(routers["as1"], b"s")
        assert list(digest_conflicts(a, b)) == []

    def test_resolution_only_over_own_table(self, clique_routers):
        graph, routers = clique_routers
        own = graph.nodes["as0"].networks[0]
        target = prefix_digest(b"s", own)
        assert resolve_digest(routers["as0"], b"s", target) == own
        # A digest for a prefix the router does not carry resolves to None.
        assert resolve_digest(routers["as0"], b"s", b"\x00" * 16) is None

    def test_guard_blocks_all_raw_exports(self, clique_routers):
        _, routers = clique_routers
        guard = PrivacyGuard(routers["as2"], "as2-domain")
        for what in ("config", "loc_rib", "adj_rib_in", "adj_rib_out",
                     "sessions", "anything"):
            with pytest.raises(PrivacyViolation):
                guard.export(what)
        assert len(guard.publish_digest(b"round")) > 0
        assert guard.local_router() is routers["as2"]


class TestCompareDigests:
    def test_cross_as_mismatch_detected_with_correct_pair(self):
        # A transit chain: the middle AS accepts a customer-claimed
        # hijack of the top AS's space (customer local-pref wins), so its
        # clone's origin view diverges from both neighbors'.
        from repro.topology.generators import line

        graph = line(3, seed=4)
        host, routers = build_routers(graph)
        host.run()
        federation = FederatedExploration(dict(routers), graph=graph)
        fabric = IsolatedFabric(dict(routers), graph=graph)
        victim = graph.nodes["as0"].networks[0]
        rogue_asn = graph.nodes["as2"].asn
        fabric.inject("as1", "as2", hijack_update(victim, rogue_asn))

        findings = federation._compare_digests(fabric, stage="pre-propagation")
        assert findings
        # Only pairs that include the poisoned domain can disagree.
        assert all("as1" in finding.nodes for finding in findings)
        assert all(finding.stage == "pre-propagation" for finding in findings)
        # The poisoned domain can decode the finding over its own table.
        digest = findings[0].prefix_digest
        assert resolve_digest(
            fabric.clone_of("as1"), federation.salt, digest
        ) == victim

    def test_per_check_salt_changes_published_digests(self, clique_routers):
        graph, routers = clique_routers
        fabric = IsolatedFabric(dict(routers), graph=graph)
        round_one = FederatedExploration(dict(routers), salt=b"round-1")
        round_two = FederatedExploration(dict(routers), salt=b"round-2")
        victim = graph.nodes["as1"].networks[0]
        fabric.inject("as0", "as2", hijack_update(victim, graph.nodes["as2"].asn))
        first = round_one._compare_digests(fabric, stage="pre-propagation")
        second = round_two._compare_digests(fabric, stage="pre-propagation")
        # Same disagreement, unlinkable digests across check rounds.
        assert {f.nodes for f in first} == {f.nodes for f in second}
        assert {f.prefix_digest for f in first}.isdisjoint(
            {f.prefix_digest for f in second}
        )

    def test_digest_tables_cache_tracks_clone_mutations(self, clique_routers):
        """Cached digests are reused only for untouched clones."""
        graph, routers = clique_routers
        fabric = IsolatedFabric(dict(routers), graph=graph)
        first = fabric.digest_tables(b"s")
        again = fabric.digest_tables(b"s")
        assert all(again[n] is first[n] for n in first), (
            "untouched clones must reuse the cached digest object"
        )
        victim = graph.nodes["as1"].networks[0]
        fabric.inject("as0", "as2", hijack_update(victim, graph.nodes["as2"].asn))
        third = fabric.digest_tables(b"s")
        assert third["as0"] is not first["as0"]
        assert third["as1"] is first["as1"] and third["as2"] is first["as2"]
        # The recomputed entry matches a from-scratch digest build, and
        # clone_of (the workload mutation surface) also invalidates.
        fresh = OriginDigest.from_router(fabric.clones["as0"], b"s")
        assert third["as0"].entries == fresh.entries
        fabric.clone_of("as1")
        assert fabric.digest_tables(b"s")["as1"] is not first["as1"]

    def test_vectorized_and_legacy_waves_agree_exactly(self):
        """The batched delivery path is a pure optimization.

        Same injections through a vectorized and a legacy (per-closure)
        fabric over a transit hierarchy must produce identical wave
        stats and an identical post-propagation digest-conflict set.
        """
        from repro.core.scenario import synthesize_hijack_corpus
        from repro.topology.generators import tiered

        graph = tiered(1, 2, 3, seed=9)
        host, routers = build_routers(graph)
        host.run()
        corpus = synthesize_hijack_corpus(graph, seed=9)
        federation = FederatedExploration(dict(routers), graph=graph)

        def wave(vectorized):
            fabric = IsolatedFabric(
                dict(routers), graph=graph, vectorized=vectorized
            )
            for node, peer, update in corpus:
                fabric.inject(node, peer, update)
            stats = fabric.propagate()
            findings = federation._compare_digests(fabric, stage="post-propagation")
            return stats, findings

        fast_stats, fast_findings = wave(vectorized=True)
        slow_stats, slow_findings = wave(vectorized=False)
        assert (fast_stats.delivered, fast_stats.rounds, fast_stats.converged) == (
            slow_stats.delivered, slow_stats.rounds, slow_stats.converged
        )
        assert fast_stats.delivered > 0, "a transit hierarchy must relay the wave"
        assert [
            (f.nodes, f.prefix_digest, f.stage) for f in fast_findings
        ] == [
            (f.nodes, f.prefix_digest, f.stage) for f in slow_findings
        ]

    def test_moas_conflict_surfaces_on_any_topology(self):
        """Two domains originating the same prefix disagree symmetrically."""
        graph = AsGraph("moas")
        graph.add_as("a", networks=(P("50.0.0.0/8"),))
        graph.add_as("b", networks=(P("50.0.0.0/8"),))
        graph.peer("a", "b")
        host, routers = build_routers(graph, validate=False)  # MOAS on purpose
        host.run()
        federation = FederatedExploration(dict(routers), graph=graph)
        report = federation.run(
            "a", "b", hijack_update(P("50.1.0.0/16"), graph.nodes["b"].asn)
        )
        assert any(
            finding.nodes == ("a", "b") for finding in report.global_findings
        )
        assert "disagree on the origin" in report.global_findings[0].summary
