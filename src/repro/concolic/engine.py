"""The concolic execution engine: trace recording and path exploration.

This module ties the pieces together into the loop of Figure 1:

1. run the program on a concrete input, recording the branch constraints
   encountered (:class:`TraceRecorder` + the symbolic values),
2. pick a recorded branch, assert the path prefix plus the branch's
   negation, and ask the solver for an input that flips it,
3. run that input, merge the newly observed constraints into the
   aggregate set, and repeat until the frontier or budget is exhausted.

The program under test is any callable taking a :class:`SymbolicInputs`
(DiCE wraps a cloned node's message handler in one; the unit tests use
plain functions).
"""

from __future__ import annotations

import pickle
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.concolic import tracer
from repro.concolic.coverage import BranchCoverage
from repro.concolic.expr import Expr, Const, make_binary
from repro.concolic.path import ExecutionResult, PathCondition
from repro.concolic.solver import ConstraintSolver, Interval, merge_stats_dict
from repro.concolic.solver.cache import query_key_tail
from repro.concolic.strategies import (
    Candidate,
    CandidateQueue,
    GenerationalStrategy,
    SearchStrategy,
)
from repro.concolic.symbolic import SymInt
from repro.concolic.tracer import BranchSite
from repro.util.errors import ExplorationError, SymbolicError, TransportedError


def transportable_exception(
    exception: Optional[BaseException],
) -> Optional[BaseException]:
    """``exception`` if it survives pickling, else a :class:`TransportedError`.

    Exploration results cross process boundaries in parallel mode; an
    exception object holding references to clones or environments would
    either fail to pickle or drag megabytes of state along.  The wrapper
    keeps the type name and message — what checkers and reports use.
    """
    if exception is None:
        return None
    try:
        pickle.loads(pickle.dumps(exception, protocol=pickle.HIGHEST_PROTOCOL))
        return exception
    except Exception:
        return TransportedError(type(exception).__name__, str(exception))


class PathBudgetExceeded(SymbolicError):
    """Raised inside the program under test when the trace grows too long.

    Aborting the run (rather than silently dropping constraints) keeps the
    recorded path condition sound; the execution is reported as truncated.
    """


@dataclass(frozen=True)
class VarSpec:
    """Declaration of one symbolic input variable."""

    name: str
    bits: int = 32
    initial: int = 0

    def __post_init__(self) -> None:
        lo, hi = self.domain
        if not lo <= self.initial <= hi:
            raise SymbolicError(
                f"initial value {self.initial} outside {self.name}'s "
                f"{self.bits}-bit domain"
            )

    @property
    def domain(self) -> Interval:
        return (0, (1 << self.bits) - 1)


class InputSpec:
    """An ordered set of symbolic input declarations."""

    def __init__(self, specs: Optional[Sequence[VarSpec]] = None):
        self._specs: Dict[str, VarSpec] = {}
        for spec in specs or ():
            self.add(spec)

    def add(self, spec: VarSpec) -> "InputSpec":
        if spec.name in self._specs:
            raise SymbolicError(f"duplicate symbolic variable {spec.name!r}")
        self._specs[spec.name] = spec
        return self

    def declare(self, name: str, initial: int, bits: int = 32) -> "InputSpec":
        return self.add(VarSpec(name, bits, initial))

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[VarSpec]:
        return iter(self._specs.values())

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    @property
    def names(self) -> List[str]:
        return list(self._specs)

    def domains(self) -> Dict[str, Interval]:
        return {spec.name: spec.domain for spec in self}

    def initial_assignment(self) -> Dict[str, int]:
        return {spec.name: spec.initial for spec in self}

    def symbolize(self, assignment: Dict[str, int]) -> "SymbolicInputs":
        """Build the symbolic view of ``assignment`` for one execution."""
        values = {}
        for spec in self:
            concrete = assignment.get(spec.name, spec.initial)
            values[spec.name] = SymInt.variable(spec.name, concrete, spec.bits)
        return SymbolicInputs(values)


class SymbolicInputs:
    """The argument handed to the program under test.

    Provides mapping access (``inputs["masklen"]``) and attribute access
    (``inputs.masklen``) to the per-variable :class:`SymInt` values.
    """

    def __init__(self, values: Dict[str, SymInt]):
        self._values = values

    def __getitem__(self, name: str) -> SymInt:
        return self._values[name]

    def __getattr__(self, name: str) -> SymInt:
        try:
            return self._values[name]
        except KeyError:
            raise AttributeError(name) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def concrete(self) -> Dict[str, int]:
        return {name: value.concrete for name, value in self._values.items()}


class TraceRecorder:
    """Collects the path condition of one execution."""

    def __init__(self, max_branches: int = 50_000, record_concretizations: bool = True):
        self.path = PathCondition()
        self.max_branches = max_branches
        self.record_concretizations = record_concretizations
        self.truncated = False

    def record_branch(self, expr: Expr, outcome: bool, site: BranchSite) -> None:
        if len(self.path) >= self.max_branches:
            self.truncated = True
            raise PathBudgetExceeded(
                f"path exceeded {self.max_branches} branches at {site}"
            )
        self.path.append(site, expr, outcome)

    def record_concretization(self, expr: Expr, value: int) -> None:
        if not self.record_concretizations:
            return
        if len(self.path) >= self.max_branches:
            self.truncated = True
            raise PathBudgetExceeded("path budget exhausted in concretization")
        constraint = make_binary("eq", expr, Const(value))
        self.path.append(tracer.caller_site(), constraint, True, is_concretization=True)


@contextmanager
def trace(
    max_branches: int = 50_000, record_concretizations: bool = True
) -> Iterator[TraceRecorder]:
    """Context manager installing a fresh recorder as the active trace."""
    recorder = TraceRecorder(max_branches, record_concretizations)
    token = tracer.install(recorder)
    try:
        yield recorder
    finally:
        tracer.restore(token)


@dataclass
class ExplorationBudget:
    """Resource limits for one exploration session."""

    max_executions: int = 256
    max_solver_queries: int = 4096
    max_seconds: Optional[float] = None
    stop_on_crash: bool = False

    def timer(self) -> Callable[[], bool]:
        """Returns a callable that is True while wall-clock budget remains."""
        if self.max_seconds is None:
            return lambda: True
        deadline = time.perf_counter() + self.max_seconds
        return lambda: time.perf_counter() < deadline


@dataclass
class ExplorationReport:
    """Aggregate outcome of an exploration session."""

    executions: int = 0
    unique_paths: int = 0
    duplicate_paths: int = 0
    truncated_paths: int = 0
    crashes: List[ExecutionResult] = field(default_factory=list)
    results: List[ExecutionResult] = field(default_factory=list)
    coverage: BranchCoverage = field(default_factory=BranchCoverage)
    solver_queries: int = 0
    candidates_generated: int = 0
    negations_skipped: int = 0
    stop_reason: str = "frontier-exhausted"
    wall_seconds: float = 0.0
    #: Filled by parallel workers before shipping the report back (each
    #: worker owns a private solver whose counters would otherwise be
    #: lost with the process); empty for in-process explorations, where
    #: the caller can read ``engine.solver.stats`` directly.
    solver_stats: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> Dict[str, object]:
        return {
            "executions": self.executions,
            "unique_paths": self.unique_paths,
            "duplicate_paths": self.duplicate_paths,
            "truncated_paths": self.truncated_paths,
            "crashes": len(self.crashes),
            "covered_outcomes": self.coverage.covered_outcomes,
            "covered_sites": self.coverage.covered_sites,
            "solver_queries": self.solver_queries,
            "candidates_generated": self.candidates_generated,
            "negations_skipped": self.negations_skipped,
            "stop_reason": self.stop_reason,
            "wall_seconds": round(self.wall_seconds, 4),
        }

    def compact(self) -> "ExplorationReport":
        """A transport-safe copy: no retained results, picklable crashes.

        Parallel workers return their reports over a process boundary;
        ``results`` can pin arbitrary program-under-test values and the
        crash records may hold unpicklable exceptions, so both are
        stripped down to what the coordinator aggregates.
        """
        compacted = replace(self, results=[], crashes=[
            replace(
                crash,
                value=None,
                exception=transportable_exception(crash.exception),
            )
            for crash in self.crashes
        ])
        return compacted

    def absorb(self, other: "ExplorationReport") -> "ExplorationReport":
        """Incremental aggregation: fold another session's totals in.

        The streaming pipeline harvests session reports one at a time
        and keeps a running cross-session total (executions, solver
        work, merged coverage) instead of re-scanning the full report
        list at each progress tick.  Per-session fields that do not sum
        (``stop_reason``) keep this report's value; ``unique_paths``
        becomes the merged-coverage path count, so duplicated paths
        across sessions are not double-counted.
        """
        self.executions += other.executions
        self.duplicate_paths += other.duplicate_paths
        self.truncated_paths += other.truncated_paths
        self.crashes.extend(other.crashes)
        self.solver_queries += other.solver_queries
        self.candidates_generated += other.candidates_generated
        self.negations_skipped += other.negations_skipped
        self.wall_seconds += other.wall_seconds
        self.coverage.merge(other.coverage)
        self.unique_paths = self.coverage.path_count
        merge_stats_dict(self.solver_stats, other.solver_stats)
        return self


Program = Callable[[SymbolicInputs], object]
ResultCallback = Callable[[ExecutionResult, Candidate], None]


class ConcolicEngine:
    """Runs programs concolically and explores their path space."""

    def __init__(
        self,
        solver: Optional[ConstraintSolver] = None,
        max_branches: int = 50_000,
        record_concretizations: bool = True,
        keep_results: bool = True,
    ):
        self.solver = solver or ConstraintSolver()
        self.max_branches = max_branches
        self.record_concretizations = record_concretizations
        self.keep_results = keep_results

    # -- single execution ----------------------------------------------------

    def run(
        self, program: Program, spec: InputSpec, assignment: Optional[Dict[str, int]] = None
    ) -> ExecutionResult:
        """One concolic execution of ``program`` under ``assignment``."""
        env = dict(spec.initial_assignment())
        if assignment:
            env.update(assignment)
        inputs = spec.symbolize(env)
        started = time.perf_counter()
        value: object = None
        exception: Optional[BaseException] = None
        with trace(self.max_branches, self.record_concretizations) as recorder:
            try:
                value = program(inputs)
            except PathBudgetExceeded as exc:
                exception = exc
            except Exception as exc:  # noqa: BLE001 - faults are findings
                exception = exc
        duration = time.perf_counter() - started
        return ExecutionResult(env, recorder.path, value, exception, duration)

    # -- exploration ----------------------------------------------------------

    def explore(
        self,
        program: Program,
        spec: InputSpec,
        strategy: Optional[SearchStrategy] = None,
        budget: Optional[ExplorationBudget] = None,
        on_result: Optional[ResultCallback] = None,
        initial_assignments: Optional[Sequence[Dict[str, int]]] = None,
        negate_concretizations: bool = False,
    ) -> ExplorationReport:
        """Systematically explore the program's paths from concrete seeds.

        ``initial_assignments`` defaults to the spec's initial values; DiCE
        passes the fields of an actually observed message (section 2.3).
        ``on_result`` is invoked after every execution — fault checkers
        hook in there.
        """
        session = ExplorationSession(
            self, program, spec, strategy, budget, on_result,
            initial_assignments, negate_concretizations,
        )
        while session.step():
            pass
        return session.finish()

    def explore_many(
        self,
        jobs: Sequence[Tuple[Program, InputSpec]],
        strategy: Optional[SearchStrategy] = None,
        budget: Optional[ExplorationBudget] = None,
        on_result: Optional[ResultCallback] = None,
    ) -> List[ExplorationReport]:
        """Run several explorations in parallel (cooperative round-robin).

        The paper notes Oasis "can execute multiple explorations in
        parallel"; Python's GIL makes threads pointless for CPU-bound
        exploration, so parallelism here is deterministic interleaving:
        each live session advances one execution per turn, sharing the
        solver (and its statistics).  Budgets apply per session.
        """
        sessions = [
            ExplorationSession(self, program, spec, strategy, budget, on_result)
            for program, spec in jobs
        ]
        live = list(sessions)
        while live:
            still_running = []
            for session in live:
                if session.step():
                    still_running.append(session)
            live = still_running
        return [session.finish() for session in sessions]


class ExplorationSession:
    """One in-progress exploration, advanced one execution per ``step``.

    Extracting the loop body lets ``explore_many`` interleave sessions
    and lets long-running callers (the online scheduler) yield between
    executions without threads.
    """

    def __init__(
        self,
        engine: "ConcolicEngine",
        program: Program,
        spec: InputSpec,
        strategy: Optional[SearchStrategy] = None,
        budget: Optional[ExplorationBudget] = None,
        on_result: Optional[ResultCallback] = None,
        initial_assignments: Optional[Sequence[Dict[str, int]]] = None,
        negate_concretizations: bool = False,
    ):
        if len(spec) == 0:
            raise ExplorationError("input spec declares no symbolic variables")
        self.engine = engine
        self.program = program
        self.spec = spec
        self.strategy = strategy or GenerationalStrategy()
        self.budget = budget or ExplorationBudget()
        self.on_result = on_result
        self.negate_concretizations = negate_concretizations
        self.report = ExplorationReport()
        self._queue = CandidateQueue()
        self._seen_paths: set = set()
        self._attempted: set = set()
        self._domains = spec.domains()
        self._time_left = self.budget.timer()
        self._started = time.perf_counter()
        self._stopped = False
        for seed in initial_assignments or [spec.initial_assignment()]:
            self._queue.push(-1e9, Candidate(dict(seed)))

    @property
    def done(self) -> bool:
        return self._stopped or not self._queue

    def step(self) -> bool:
        """Execute one candidate; False when the session is finished."""
        if self._stopped:
            return False
        report = self.report
        if not self._queue:
            return False
        if report.executions >= self.budget.max_executions:
            report.stop_reason = "execution-budget"
            self._stopped = True
            return False
        if not self._time_left():
            report.stop_reason = "time-budget"
            self._stopped = True
            return False

        candidate = self._queue.pop()
        result = self.engine.run(self.program, self.spec, candidate.assignment)
        report.executions += 1
        if self.engine.keep_results:
            report.results.append(result)
        if isinstance(result.exception, PathBudgetExceeded):
            report.truncated_paths += 1
        elif result.crashed:
            report.crashes.append(result)
            if self.budget.stop_on_crash:
                report.stop_reason = "crash"
                self._stopped = True
                if self.on_result:
                    self.on_result(result, candidate)
                return False
        signature = result.signature()
        duplicate = signature in self._seen_paths
        if duplicate:
            report.duplicate_paths += 1
        else:
            self._seen_paths.add(signature)
            report.unique_paths += 1
        new_outcomes = report.coverage.observe(result.path)
        if self.on_result:
            self.on_result(result, candidate)
        if duplicate:
            return True

        # Expand: negate every eligible branch not already attempted.
        # This run's constraints join the aggregate set (section 2.3)
        # because the attempted set persists across runs.  The sweep is
        # batched: eligible branches are collected first, then solved in
        # one ConstraintSolver.solve_batch call so the shared path
        # prefix is propagated once instead of once per sibling.
        solver = self.engine.solver
        eligible: List = []
        for branch in result.path.negation_targets(self.negate_concretizations):
            key = result.path.prefix_signature(branch.index + 1, flip_last=True)
            if key in self._attempted or key in self._seen_paths:
                report.negations_skipped += 1
                continue
            if report.solver_queries >= self.budget.max_solver_queries:
                # The branches collected so far are still solved below —
                # exactly the set the incremental loop would have solved
                # before hitting the budget.
                report.stop_reason = "solver-budget"
                self._stopped = True
                break
            self._attempted.add(key)
            report.solver_queries += 1
            eligible.append(branch)
        if eligible:
            keys = None
            if solver.wants_key:
                # Rolling per-prefix digests: the key for negating branch
                # i is O(|branch i|) given the cached prefix state, not
                # O(whole conjunction) — the domains+hint tail is fixed
                # for this execution and folded once.
                key_started = time.perf_counter()
                key_tail = query_key_tail(self._domains, result.assignment)
                keys = [
                    result.path.negation_key(branch.index, key_tail)
                    for branch in eligible
                ]
                solver.stats.key_time += time.perf_counter() - key_started
            semantic_keys = None
            if solver.wants_semantic:
                semantic_keys = [
                    result.path.semantic_negation_key(branch.index)
                    for branch in eligible
                ]
            models = solver.solve_batch(
                result.path.held_constraints(),
                [(branch.index, branch.negated_constraint()) for branch in eligible],
                self._domains,
                hint=result.assignment,
                keys=keys,
                semantic_keys=semantic_keys,
            )
            for branch, model in zip(eligible, models):
                if model is None:
                    continue
                report.candidates_generated += 1
                priority = self.strategy.priority(
                    result, branch, report.coverage, new_outcomes, candidate.generation
                )
                self._queue.push(
                    priority,
                    Candidate(
                        model,
                        generation=candidate.generation + 1,
                        negated_index=branch.index,
                        parent_signature=signature,
                    ),
                )
        if self._stopped:
            return False
        return True

    def finish(self) -> ExplorationReport:
        """Seal and return the report (idempotent)."""
        if self.report.executions >= self.budget.max_executions:
            self.report.stop_reason = "execution-budget"
        self.report.wall_seconds = time.perf_counter() - self._started
        return self.report
